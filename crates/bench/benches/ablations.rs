//! Ablation benches for the design choices DESIGN.md calls out:
//! crossing-count algorithm (Fenwick vs naive), LAM hash count `k`,
//! LAM localization threshold, cache granularity, and exact vs
//! approximate dimension ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plasma_core::apss::{apss, build_sketches, ApssConfig};
use plasma_core::cache::KnowledgeCache;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::datasets::transactions::QuestSpec;
use plasma_lam::localize::{localize, LocalizeConfig};
use plasma_parcoords::crossings::{count_crossings, count_crossings_naive, crossing_matrix};
use plasma_parcoords::order::{order_dimensions, OrderMethod};

fn ablate_crossings(c: &mut Criterion) {
    use rand::Rng;
    let mut rng = plasma_data::rng::seeded(3);
    let mut g = c.benchmark_group("ablation_crossings");
    for &n in &[500usize, 2_000] {
        let x: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        g.bench_with_input(BenchmarkId::new("fenwick", n), &(&x, &y), |b, (x, y)| {
            b.iter(|| count_crossings(x, y))
        });
        g.bench_with_input(BenchmarkId::new("naive_n2", n), &(&x, &y), |b, (x, y)| {
            b.iter(|| count_crossings_naive(x, y))
        });
    }
    g.finish();
}

fn ablate_lam_hashes(c: &mut Criterion) {
    let txs = QuestSpec::new("bench", 2_000, 500).generate(5);
    let mut g = c.benchmark_group("ablation_lam_hash_count");
    g.sample_size(20);
    for &k in &[4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = LocalizeConfig {
                k,
                ..LocalizeConfig::default()
            };
            b.iter(|| localize(&txs, &cfg))
        });
    }
    g.finish();
}

fn ablate_cache_granularity(c: &mut Criterion) {
    let ds = GaussianSpec::new("bench", 150, 8, 3).generate(7);
    let cfg = ApssConfig::default();
    let mut g = c.benchmark_group("ablation_cache");
    g.sample_size(15);
    g.bench_function("no_cache_reprobe", |b| {
        b.iter(|| {
            // Two independent probes, everything rebuilt.
            let _ = apss(&ds.records, ds.measure, 0.9, &cfg);
            apss(&ds.records, ds.measure, 0.6, &cfg).pairs.len()
        })
    });
    g.bench_function("sketch_cache_only", |b| {
        b.iter(|| {
            let (sk, _) = build_sketches(&ds.records, ds.measure, &cfg);
            let _ = plasma_core::apss::apss_with_sketches(&ds.records, ds.measure, &sk, 0.9, &cfg);
            plasma_core::apss::apss_with_sketches(&ds.records, ds.measure, &sk, 0.6, &cfg)
                .pairs
                .len()
        })
    });
    g.bench_function("full_knowledge_cache", |b| {
        b.iter(|| {
            let (sk, _) = build_sketches(&ds.records, ds.measure, &cfg);
            let mut cache = KnowledgeCache::new(sk);
            let _ = cache.probe(&ds.records, ds.measure, 0.9, &cfg);
            cache.probe(&ds.records, ds.measure, 0.6, &cfg).pairs.len()
        })
    });
    g.finish();
}

fn ablate_ordering(c: &mut Criterion) {
    use rand::Rng;
    let mut rng = plasma_data::rng::seeded(9);
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..12).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let matrix = crossing_matrix(&rows);
    let mut g = c.benchmark_group("ablation_dimension_ordering");
    g.bench_function("mst_approx_d12", |b| {
        b.iter(|| order_dimensions(&matrix, OrderMethod::MstApprox))
    });
    g.bench_function("held_karp_exact_d12", |b| {
        b.iter(|| order_dimensions(&matrix, OrderMethod::Exact))
    });
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ablate_crossings, ablate_lam_hashes, ablate_cache_granularity, ablate_ordering
}
criterion_main!(ablations);
