//! Criterion benchmarks for the hot kernels every figure's wall-clock
//! claims rest on: sketching, BayesLSH pair evaluation, triangle counting,
//! LAM localization + mining, crossing counting, and the energy iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use plasma_data::datasets::corpus::CorpusSpec;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::datasets::transactions::QuestSpec;
use plasma_data::similarity::Similarity;
use plasma_graph::builders::DensifyingSeries;
use plasma_graph::measures::triangles;
use plasma_lam::localize::{localize, LocalizeConfig};
use plasma_lam::miner::{Lam, LamConfig};
use plasma_lam::TransactionDb;
use plasma_lsh::bayes::{BayesLsh, BayesParams};
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::Sketcher;
use plasma_parcoords::crossings::count_crossings;
use plasma_parcoords::energy::{EnergyConfig, EnergyModel};

fn bench_sketching(c: &mut Criterion) {
    let corpus = CorpusSpec::new("bench", 200, 4000, 6).generate(1);
    let mut g = c.benchmark_group("sketching");
    g.throughput(Throughput::Elements(corpus.records.len() as u64));
    for &n_hashes in &[64usize, 256] {
        g.bench_with_input(BenchmarkId::new("simhash", n_hashes), &n_hashes, |b, &n| {
            let sk = Sketcher::new(LshFamily::SimHash, n, 7);
            b.iter(|| sk.sketch_all(&corpus.records));
        });
        g.bench_with_input(BenchmarkId::new("minhash", n_hashes), &n_hashes, |b, &n| {
            let sk = Sketcher::new(LshFamily::MinHash, n, 7);
            b.iter(|| sk.sketch_all(&corpus.records));
        });
    }
    g.finish();
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parallel-vs-sequential sketching on the 200-record corpus: the ≥3×
/// scaling target of the parallel APSS engine rides on this group.
fn bench_parallel_sketching(c: &mut Criterion) {
    let corpus = CorpusSpec::new("bench", 200, 4000, 6).generate(1);
    let cores = available_cores();
    let mut g = c.benchmark_group("parallel_sketching");
    g.throughput(Throughput::Elements(corpus.records.len() as u64));
    for (label, threads) in [("seq", 1usize), ("par", cores)] {
        for family in [LshFamily::MinHash, LshFamily::SimHash] {
            let name = match family {
                LshFamily::MinHash => "minhash256",
                LshFamily::SimHash => "simhash256",
            };
            g.bench_with_input(
                BenchmarkId::new(name, format!("{label}{threads}")),
                &threads,
                |b, &threads| {
                    let sk = Sketcher::new(family, 256, 7).with_parallelism(Some(threads));
                    b.iter(|| sk.sketch_all(&corpus.records));
                },
            );
        }
    }
    g.finish();
}

/// Parallel-vs-sequential exhaustive pair evaluation (the full
/// `apss_with_sketches` processing path) on a 200-record corpus.
fn bench_parallel_pair_evaluation(c: &mut Criterion) {
    use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig};
    let ds = GaussianSpec::new("bench", 200, 10, 4).generate(3);
    let cores = available_cores();
    let n = ds.records.len();
    let mut g = c.benchmark_group("parallel_pair_evaluation");
    g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    for (label, threads) in [("seq", 1usize), ("par", cores)] {
        let cfg = ApssConfig {
            parallelism: Some(threads),
            ..ApssConfig::default()
        };
        let (sketches, _) = build_sketches(&ds.records, ds.measure, &cfg);
        g.bench_with_input(
            BenchmarkId::new("exhaustive", format!("{label}{threads}")),
            &threads,
            |b, _| {
                b.iter(|| {
                    apss_with_sketches(&ds.records, ds.measure, &sketches, 0.7, &cfg)
                        .pairs
                        .len()
                })
            },
        );
    }
    g.finish();
}

fn bench_bayeslsh(c: &mut Criterion) {
    let ds = GaussianSpec::new("bench", 200, 10, 4).generate(3);
    let sketches = Sketcher::new(LshFamily::SimHash, 256, 5).sketch_all(&ds.records);
    let engine = BayesLsh::new(LshFamily::SimHash, BayesParams::default());
    let n = ds.records.len();

    let mut g = c.benchmark_group("bayeslsh_pair_evaluation");
    g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    g.bench_function("direct_posteriors", |b| {
        b.iter(|| {
            let mut alive = 0u32;
            for i in 0..n {
                for j in (i + 1)..n {
                    let e = engine.evaluate_pair(&sketches, i, j, 0.7);
                    if e.decision != plasma_lsh::bayes::PairDecision::Pruned {
                        alive += 1;
                    }
                }
            }
            alive
        })
    });
    g.bench_function("probe_table", |b| {
        b.iter(|| {
            let mut table = engine.probe_table(0.7);
            let mut alive = 0u32;
            for i in 0..n {
                for j in (i + 1)..n {
                    let e = table.evaluate_pair(&sketches, i, j);
                    if e.decision != plasma_lsh::bayes::PairDecision::Pruned {
                        alive += 1;
                    }
                }
            }
            alive
        })
    });
    g.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let ds = GaussianSpec::new("bench", 300, 8, 4).generate(9);
    let series = DensifyingSeries::new(&ds.records, Similarity::Cosine);
    let mut g = c.benchmark_group("triangle_count");
    for &edges in &[1_000usize, 8_000, 30_000] {
        let graph = series.graph_with_edges(edges);
        g.throughput(Throughput::Elements(graph.m() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(edges), &graph, |b, graph| {
            b.iter(|| triangles::count_triangles(graph))
        });
    }
    g.finish();
}

fn bench_lam(c: &mut Criterion) {
    let txs = QuestSpec::new("bench", 2_000, 500).generate(11);
    let mut g = c.benchmark_group("lam");
    g.sample_size(20);
    g.throughput(Throughput::Elements(txs.len() as u64));
    g.bench_function("localize_k16", |b| {
        b.iter(|| localize(&txs, &LocalizeConfig::default()))
    });
    g.bench_function("full_pass", |b| {
        b.iter(|| {
            let mut db = TransactionDb::new(txs.clone());
            Lam::with_passes(1).run(&mut db);
            db.compression_ratio()
        })
    });
    g.bench_function("five_passes", |b| {
        b.iter(|| {
            let mut db = TransactionDb::new(txs.clone());
            Lam::new(LamConfig::default()).run(&mut db);
            db.compression_ratio()
        })
    });
    g.finish();
}

fn bench_crossings(c: &mut Criterion) {
    let mut rng = plasma_data::rng::seeded(13);
    use rand::Rng;
    let mut g = c.benchmark_group("crossing_count");
    for &n in &[1_000usize, 10_000] {
        let x: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("fenwick_nlogn", n),
            &(&x, &y),
            |b, (x, y)| b.iter(|| count_crossings(x, y)),
        );
    }
    g.finish();
}

fn bench_energy(c: &mut Criterion) {
    let ds = GaussianSpec::new("bench", 800, 2, 5).generate(21);
    let labels = ds.labels.clone().expect("labeled");
    let x: Vec<f64> = ds.records.iter().map(|r| r.get(0)).collect();
    let y: Vec<f64> = ds.records.iter().map(|r| r.get(1)).collect();
    let model = EnergyModel::new(EnergyConfig::default());
    let mut g = c.benchmark_group("energy_reduction");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("optimize_800_lines", |b| {
        b.iter(|| model.optimize(&x, &y, &labels))
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sketching, bench_parallel_sketching, bench_bayeslsh, bench_parallel_pair_evaluation, bench_triangles, bench_lam, bench_crossings, bench_energy
}
criterion_main!(kernels);
