//! Chapter 2 experiments: PLASMA-HD itself.

use std::time::Instant;

use plasma_core::apss::{apss, ApssConfig, CandidateStrategy};
use plasma_core::cues;
use plasma_core::incremental::incremental_apss;
use plasma_core::plot;
use plasma_core::session::Session;
use plasma_data::datasets::catalog;
use plasma_data::datasets::Dataset;
use plasma_data::similarity::pair_counts_at_thresholds;
use plasma_graph::builders::similarity_graph;
use plasma_graph::measures::components;

use crate::report::{f, secs, Table};
use crate::Opts;

/// Table 2.1: dataset characteristics (paper sizes vs generated).
pub fn table2_1(opts: &Opts) {
    let sets: Vec<(Dataset, &str)> = vec![
        (catalog::wine_like(opts.seed), "178 x 13, nnz 2,314"),
        (catalog::credit_like(opts.seed), "690 x 39, nnz 16,319"),
        (
            catalog::twitter_like(opts.scale, opts.seed),
            "146,170 x 146,170, nnz 200e6",
        ),
        (
            catalog::rcv1_like(opts.scale, opts.seed),
            "804,414 x 47,326, nnz 61e6",
        ),
    ];
    let mut t = Table::new(&[
        "Dataset",
        "Vectors",
        "Dim",
        "Avg. len",
        "Nnz",
        "Paper shape",
    ]);
    for (ds, paper) in &sets {
        t.row(vec![
            ds.name.clone(),
            ds.len().to_string(),
            ds.dim.to_string(),
            f(ds.avg_len()),
            ds.nnz().to_string(),
            paper.to_string(),
        ]);
    }
    t.print();
}

/// Fig 2.2: the 50-record toy dataset at t ∈ {0.8, 0.5, 0.2}.
pub fn fig2_2(opts: &Opts) {
    let ds = catalog::toy_d1(opts.seed);
    let labels = ds.labels.as_ref().expect("toy is labeled");
    let mut t = Table::new(&[
        "t1",
        "edges",
        "components",
        "intra-cluster edge %",
        "verdict",
    ]);
    for &t1 in &[0.8, 0.5, 0.2] {
        let g = similarity_graph(&ds.records, ds.measure, t1);
        let comps = components::count_components(&g);
        let (mut intra, mut total) = (0u64, 0u64);
        for (u, v) in g.edges() {
            total += 1;
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            }
        }
        let frac = if total == 0 {
            0.0
        } else {
            100.0 * intra as f64 / total as f64
        };
        let verdict = if comps > 2 * ds.num_classes().unwrap_or(5) {
            "too sparse (fragmented)"
        } else if frac > 80.0 {
            "well-connected (community structure clear)"
        } else {
            "overly connected"
        };
        t.row(vec![
            f(t1),
            g.m().to_string(),
            comps.to_string(),
            f(frac),
            verdict.to_string(),
        ]);
    }
    t.print();
    println!("(paper: community structure is clear only at t1 = 0.5)");
}

/// Figs 2.3/2.4: two-probe cumulative APSS estimate vs ground truth on d1.
pub fn fig2_3(opts: &Opts) {
    let ds = catalog::toy_d1(opts.seed);
    let grid: Vec<f64> = (1..=19).map(|k| k as f64 * 0.05).collect();
    let truth = pair_counts_at_thresholds(&ds.records, ds.measure, &grid);

    let mut session = Session::new(&ds, ApssConfig::default()).with_grid(grid.clone());
    let r1 = session.probe(0.8);
    let after_first = r1.curve.clone();
    let suggested = session.suggest_next_threshold().unwrap_or(0.5);
    let r2 = session.probe(0.5);

    let mut t = Table::new(&[
        "t",
        "truth",
        "probe(0.8) est",
        "±sd",
        "after probe(0.5) est",
        "±sd",
    ]);
    for (k, &th) in grid.iter().enumerate() {
        t.row(vec![
            f(th),
            truth[k].to_string(),
            f(after_first.expected[k]),
            f(after_first.std_dev[k]),
            f(r2.curve.expected[k]),
            f(r2.curve.std_dev[k]),
        ]);
    }
    t.print();
    println!("knee suggested after first probe: t = {}", f(suggested));
    let truth_f: Vec<f64> = truth.iter().map(|&c| c as f64).collect();
    println!(
        "mean relative error: after 1 probe {}, after 2 probes {}",
        f(plasma_data::stats::mean_relative_error(
            &after_first.expected,
            &truth_f
        )),
        f(plasma_data::stats::mean_relative_error(
            &r2.curve.expected,
            &truth_f
        )),
    );
    let svg = plot::svg_chart(
        "Cumulative APSS graph: d1 (probes at 0.8 then 0.5)",
        &grid,
        &[
            ("ground truth", &truth_f),
            ("probe 0.8", &after_first.expected),
            ("probes 0.8+0.5", &r2.curve.expected),
        ],
        true,
    );
    opts.write_artifact("fig2-3_cumulative_apss.svg", &svg);
}

/// Fig 2.5: wine triangle counts at t ∈ {0.9, 0.95} plus cues.
pub fn fig2_5(opts: &Opts) {
    let ds = catalog::wine_like(opts.seed);
    let mut session = Session::new(&ds, ApssConfig::default());
    let mut t = Table::new(&["t", "pairs", "triangles", "clusterability", "max clique"]);
    for &th in &[0.95, 0.9] {
        let r = session.probe(th);
        let cue = session.triangle_cue(&r.pairs);
        let dp = session.density_plot(&r.pairs);
        t.row(vec![
            f(th),
            r.pairs.len().to_string(),
            cue.total_triangles.to_string(),
            f(cues::clusterability(&cue)),
            dp.max_clique.to_string(),
        ]);
    }
    t.print();

    // Histogram + density plot at 0.9 (paper shows 0.99-ish cues; our
    // synthetic wine clusters live lower).
    let r = session.probe(0.9);
    let cue = session.triangle_cue(&r.pairs);
    let labels: Vec<String> = cue
        .bucket_edges
        .iter()
        .map(|&e| format!("≤{e} tri"))
        .collect();
    println!("\ntriangle vertex-cover histogram (t = 0.9):");
    print!("{}", plot::ascii_histogram(&labels, &cue.histogram, 40));
    let dp = session.density_plot(&r.pairs);
    let dp_labels: Vec<String> = (0..dp.clique_sizes.len())
        .map(|k| format!("{k}-clique"))
        .collect();
    println!("clique density plot (t = 0.9):");
    print!(
        "{}",
        plot::ascii_histogram(&dp_labels, &dp.clique_sizes, 40)
    );
    println!(
        "flat peaks at sizes {:?} indicate potential cliques",
        dp.peaks()
    );
}

fn incremental_figure(opts: &Opts, name: &str, ds: &Dataset, t1: f64, t2s: &[f64]) {
    let points: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
    let cfg = ApssConfig::default();
    let run = incremental_apss(&ds.records, ds.measure, t1, t2s, &points, &cfg);
    let mut headers: Vec<String> = vec!["% processed".into()];
    headers.extend(t2s.iter().map(|t| format!("est t2={}", f(*t))));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for step in &run.steps {
        let mut row = vec![format!("{:.0}%", step.fraction * 100.0)];
        row.extend(step.estimates.iter().map(|&e| f(e)));
        t.row(row);
    }
    t.print();
    println!(
        "converged to within 10% of final by {:.0}% of data (paper: 10-20%)",
        run.convergence_fraction(0.10) * 100.0
    );
    // SVG: one series per t2.
    let xs: Vec<f64> = run.steps.iter().map(|s| s.fraction * 100.0).collect();
    let series_data: Vec<Vec<f64>> = (0..t2s.len())
        .map(|ti| run.steps.iter().map(|s| s.estimates[ti]).collect())
        .collect();
    let series_names: Vec<String> = t2s.iter().map(|t| format!("t2={}", f(*t))).collect();
    let series: Vec<(&str, &[f64])> = series_names
        .iter()
        .map(|s| s.as_str())
        .zip(series_data.iter().map(|v| v.as_slice()))
        .collect();
    let svg = plot::svg_chart(
        &format!("{name} incremental #pairs estimates, t1={}", f(t1)),
        &xs,
        &series,
        false,
    );
    opts.write_artifact(&format!("{name}_incremental.svg"), &svg);
}

/// Fig 2.6: incremental estimates, wine, t1 = 0.5.
pub fn fig2_6(opts: &Opts) {
    let ds = catalog::wine_like(opts.seed);
    incremental_figure(opts, "fig2-6_wine", &ds, 0.5, &[0.75, 0.8, 0.85]);
}

/// Fig 2.7: incremental estimates, Twitter-like, t1 = 0.95.
pub fn fig2_7(opts: &Opts) {
    let ds = catalog::twitter_like(opts.scale, opts.seed);
    println!("({} records)", ds.len());
    incremental_figure(opts, "fig2-7_twitter", &ds, 0.95, &[0.75, 0.8, 0.85, 0.95]);
}

/// Fig 2.8: incremental estimates, RCV1-like, t1 = 0.9.
pub fn fig2_8(opts: &Opts) {
    let ds = catalog::rcv1_like(opts.scale, opts.seed);
    println!("({} records)", ds.len());
    incremental_figure(opts, "fig2-8_rcv1", &ds, 0.9, &[0.5, 0.9, 0.95]);
}

/// Fig 2.9: proportion of runtime spent building initial sketches.
pub fn fig2_9(opts: &Opts) {
    let sets = catalog::fig2_9_datasets(opts.scale, opts.seed);
    let mut t = Table::new(&["Dataset", "records", "sketch", "processing", "sketch %"]);
    for ds in &sets {
        let cfg = ApssConfig {
            candidates: CandidateStrategy::Exhaustive,
            exact_on_accept: true,
            ..ApssConfig::default()
        };
        let r = apss(&ds.records, ds.measure, 0.6, &cfg);
        let total = r.stats.sketch_seconds + r.stats.process_seconds;
        t.row(vec![
            ds.name.clone(),
            ds.len().to_string(),
            secs(r.stats.sketch_seconds),
            secs(r.stats.process_seconds),
            format!("{:.0}%", 100.0 * r.stats.sketch_seconds / total.max(1e-12)),
        ]);
    }
    t.print();
    println!("(paper: TwitterLinks 12%, WikiWords100K 3%; proportions vary with candidate load)");
}

/// Fig 2.10: threshold ladder with and without knowledge caching.
pub fn fig2_10(opts: &Opts) {
    let ds = catalog::twitter_like(opts.scale, opts.seed);
    println!("({} records)", ds.len());
    let ladder = [0.95, 0.9, 0.85, 0.8, 0.75, 0.7];
    // Exact verification of accepted pairs (full BayesLSH): the knowledge
    // cache reuses both sketches and memoized exact similarities.
    let cfg = ApssConfig {
        exact_on_accept: true,
        ..ApssConfig::default()
    };

    // Without caching: every probe from scratch (sketch + evaluate).
    let mut uncached = Vec::new();
    for &th in &ladder {
        let start = Instant::now();
        let _ = apss(&ds.records, ds.measure, th, &cfg);
        uncached.push(start.elapsed().as_secs_f64());
    }
    // With caching: one session.
    let mut session = Session::new(&ds, cfg);
    let mut cached = Vec::new();
    for &th in &ladder {
        let start = Instant::now();
        let _ = session.probe(th);
        cached.push(start.elapsed().as_secs_f64());
    }

    let mut t = Table::new(&["t", "uncached", "cached", "speedup"]);
    for (k, &th) in ladder.iter().enumerate() {
        t.row(vec![
            f(th),
            secs(uncached[k]),
            secs(cached[k]),
            format!("{:.0}%", 100.0 * (1.0 - cached[k] / uncached[k].max(1e-12))),
        ]);
    }
    t.print();
    println!("(paper: same time at .95, then 16-29% speedups at subsequent thresholds)");
}

/// §2.2.2: two guided probes vs brute-force threshold sweep.
pub fn sec2_2_2(opts: &Opts) {
    let ds = catalog::wine_like(opts.seed);
    let cfg = ApssConfig::default();

    let start = Instant::now();
    let mut session = Session::new(&ds, cfg);
    session.probe(0.8);
    let next = session.suggest_next_threshold().unwrap_or(0.5);
    session.probe(next);
    let interactive = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for k in 0..=10 {
        let _ = apss(&ds.records, ds.measure, k as f64 / 10.0, &cfg);
    }
    let brute = start.elapsed().as_secs_f64();

    let mut t = Table::new(&["strategy", "probes", "time"]);
    t.row(vec![
        "interactive (probe + knee)".into(),
        "2".into(),
        secs(interactive),
    ]);
    t.row(vec![
        "brute force 0.0..1.0".into(),
        "11".into(),
        secs(brute),
    ]);
    t.print();
    println!(
        "time saved: {:.0}% (paper: 83%)",
        100.0 * (1.0 - interactive / brute.max(1e-12))
    );
    println!("knee-suggested second threshold: {}", f(next));
}

/// §2.3.4: the interaction experiment — LFR benchmark network → spectral
/// embedding → PLASMA-HD session recovering the planted communities.
pub fn sec2_3_4(opts: &Opts) {
    use plasma_data::vector::SparseVector;
    use plasma_graph::generators::lfr_like;
    use plasma_graph::measures::spectral::laplacian_embedding;

    let (n, k) = (400usize, 5usize);
    let (graph, labels) = lfr_like(n, k, 12, 0.1, opts.seed);
    println!(
        "LFR-like network: {} nodes, {} edges, {k} planted communities (mu = 0.1)",
        graph.n(),
        graph.m()
    );

    // "We created a k-dimensional vector for each node by projecting the
    // node's row of the laplacian into the space of the first k
    // eigenvectors" — the spectral-embedding construction.
    let emb = laplacian_embedding(&graph, k, 250);
    let records: Vec<SparseVector> = emb
        .iter()
        .map(|row| SparseVector::from_dense(row))
        .collect();

    let mut session = Session::from_records(
        records.clone(),
        plasma_data::similarity::Similarity::Cosine,
        ApssConfig {
            exact_on_accept: true,
            ..ApssConfig::default()
        },
    );
    let mut t = Table::new(&["t", "pairs", "intra-community %", "triangles"]);
    for &th in &[0.95, 0.8, 0.5] {
        let r = session.probe(th);
        let (mut intra, mut total) = (0u64, 0u64);
        for p in &r.pairs {
            total += 1;
            if labels[p.i as usize] == labels[p.j as usize] {
                intra += 1;
            }
        }
        let cue = session.triangle_cue(&r.pairs);
        t.row(vec![
            f(th),
            r.pairs.len().to_string(),
            if total == 0 {
                "-".into()
            } else {
                format!("{:.0}%", 100.0 * intra as f64 / total as f64)
            },
            cue.total_triangles.to_string(),
        ]);
    }
    t.print();
    println!(
        "(the embedding separates communities: high-threshold pairs are almost all intra-community)"
    );
}

/// §2.2.1 sensitivity ablation: how ε (false-negative tolerance), γ
/// (concentration miss rate), and sketch length trade recall and accuracy
/// against hash work — "reducing ε does increase the number of hashes …
/// which adversely affects computational performance".
pub fn ablate_bayes(opts: &Opts) {
    use plasma_data::similarity::all_pairs_exact;
    use plasma_lsh::BayesParams;

    let ds = catalog::wine_like(opts.seed);
    let t = 0.7;
    let truth: std::collections::HashSet<(u32, u32)> = all_pairs_exact(&ds.records, ds.measure, t)
        .into_iter()
        .map(|(i, j, _)| (i, j))
        .collect();

    let mut table = Table::new(&[
        "epsilon",
        "gamma",
        "hashes",
        "recall",
        "precision",
        "hashes/pair",
    ]);
    for &(epsilon, gamma, n_hashes) in &[
        (0.10, 0.10, 128usize),
        (0.03, 0.03, 256),
        (0.01, 0.01, 384),
        (0.003, 0.003, 512),
    ] {
        let cfg = ApssConfig {
            n_hashes,
            bayes: BayesParams {
                epsilon,
                gamma,
                ..BayesParams::default()
            },
            exact_on_accept: true,
            ..ApssConfig::default()
        };
        let r = apss(&ds.records, ds.measure, t, &cfg);
        let found: std::collections::HashSet<(u32, u32)> =
            r.pairs.iter().map(|p| (p.i, p.j)).collect();
        let hit = found.intersection(&truth).count();
        let recall = hit as f64 / truth.len().max(1) as f64;
        let precision = hit as f64 / found.len().max(1) as f64;
        table.row(vec![
            f(epsilon),
            f(gamma),
            n_hashes.to_string(),
            f(recall),
            f(precision),
            f(r.stats.hashes_compared as f64 / r.stats.candidates.max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "(tightening ε/γ buys recall with more hash work; precision is 1.0 throughout because \
         survivors are exactly verified — the BayesLSH design point)"
    );
    let _ = opts;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Opts {
        Opts {
            scale: 0.02,
            seed: 7,
            out_dir: std::env::temp_dir().join("plasma_test_results"),
        }
    }

    #[test]
    fn table_and_toy_experiments_run() {
        let o = tiny_opts();
        table2_1(&o);
        fig2_2(&o);
    }

    #[test]
    fn cumulative_probe_experiment_runs() {
        let o = tiny_opts();
        fig2_3(&o);
    }
}
