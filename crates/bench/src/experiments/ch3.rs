//! Chapter 3 experiments: Graph Growth.

use plasma_core::plot;
use plasma_data::datasets::catalog::{self, GrowthEntry};
use plasma_data::similarity::Similarity;
use plasma_data::stats;
use plasma_graph::builders::DensifyingSeries;
use plasma_graph::measures::MeasureKind;
use plasma_growth::eval::{complete_value, GrowthOutcome};
use plasma_growth::predict::{regression, translation_scaling};
use plasma_growth::sampling::SamplingMethod;
use plasma_growth::series::{measure_series, model_series, GrowthModel, MeasureCurve};

use crate::report::{f, secs, Table};
use crate::Opts;

/// Cap on rows for the measure-heavy growth experiments: keeps the exact
/// ground truth (dense-half measures) tractable on one core.
fn growth_rows(opts: &Opts, paper_n: usize) -> usize {
    catalog::scaled(paper_n, opts.scale).min(900)
}

/// Sample size; the paper uses p = 1000 against 8000-row data, keep the
/// same 1:8 flavor.
fn sample_p(n: usize) -> usize {
    (n / 4).clamp(40, 250)
}

/// Table 3.1: the growth datasets.
pub fn table3_1(opts: &Opts) {
    let mut t = Table::new(&[
        "Dataset",
        "Attributes",
        "Points (paper)",
        "Points (generated)",
    ]);
    for e in catalog::growth_catalog() {
        t.row(vec![
            e.name.to_string(),
            e.attributes.to_string(),
            e.paper_n.to_string(),
            growth_rows(opts, e.paper_n).to_string(),
        ]);
    }
    t.print();
}

/// Figs 3.1–3.6: measures across densities, real data vs ER vs Geom.
pub fn fig3_1(opts: &Opts) {
    let entry = &catalog::growth_catalog()[2]; // image-segmentation
    let n = growth_rows(opts, entry.paper_n).min(400);
    let ds = entry.generate(n as f64 / entry.paper_n as f64, opts.seed);
    let ds = ds.subsample(n, opts.seed);
    println!("image-segmentation-like, n = {}", ds.len());

    let series = DensifyingSeries::new(&ds.records, Similarity::Cosine);
    let schedule = series.geometric_schedule();

    let mut artifact = String::new();
    for measure in MeasureKind::all() {
        let real = measure_series(&ds.records, measure, Similarity::Cosine, Some(&schedule));
        let er = model_series(
            GrowthModel::ErdosRenyi,
            ds.len(),
            measure,
            &schedule,
            opts.seed,
        );
        let geom = model_series(
            GrowthModel::Geometric,
            ds.len(),
            measure,
            &schedule,
            opts.seed,
        );
        let mut t = Table::new(&["edges", "real", "ER", "Geom"]);
        for (k, &edges) in schedule.iter().enumerate() {
            t.row(vec![
                edges.to_string(),
                f(real.points[k].value),
                f(er.points[k].value),
                f(geom.points[k].value),
            ]);
        }
        println!("\n== {} ==", measure.name());
        t.print();
        artifact.push_str(&format!("# {}\n{}", measure.name(), t.render()));
        if measure == MeasureKind::Triangles {
            let xs: Vec<f64> = schedule.iter().map(|&e| (e as f64).log2()).collect();
            let rv = real.values();
            let ev = er.values();
            let gv = geom.values();
            let svg = plot::svg_chart(
                "Triangles vs density: image-segmentation-like vs ER vs Geom",
                &xs,
                &[("real", &rv), ("ER", &ev), ("Geom", &gv)],
                true,
            );
            opts.write_artifact("fig3-1_triangles_models.svg", &svg);
        }
    }
    opts.write_artifact("fig3-1_measures.txt", &artifact);
    println!("\n(paper: real data is denser on local measures than both models; Geom tracks shapes best)");
}

/// Shared sweep: per dataset × sampling method, both predictors.
struct SweepRow {
    dataset: &'static str,
    method: SamplingMethod,
    ts_mean: f64,
    ts_sd: f64,
    reg_mean: f64,
    reg_sd: f64,
    speedup: f64,
}

fn run_sweep(opts: &Opts, entries: &[GrowthEntry], write_svgs: bool) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for entry in entries {
        let n = growth_rows(opts, entry.paper_n);
        let ds = entry.generate(n as f64 / entry.paper_n as f64, opts.seed);
        let p = sample_p(ds.len());
        // Ground-truth curve once per dataset.
        let real_curve = measure_series(
            &ds.records,
            MeasureKind::Triangles,
            Similarity::Cosine,
            None,
        );
        let steps = real_curve.points.len();
        let half = steps / 2;
        let real_train = MeasureCurve {
            measure: MeasureKind::Triangles,
            n: real_curve.n,
            points: real_curve.points[..=half.min(steps - 1)].to_vec(),
        };
        let test_progress: Vec<f64> = real_curve.points[half..]
            .iter()
            .map(|pt| pt.progress)
            .collect();
        let truth: Vec<f64> = real_curve.points[half..]
            .iter()
            .map(|pt| pt.value)
            .collect();
        let train_seconds: f64 = real_curve.points[..half].iter().map(|pt| pt.seconds).sum();
        let dense_seconds: f64 = real_curve.points[half..].iter().map(|pt| pt.seconds).sum();

        for method in SamplingMethod::all() {
            let sample_records =
                method.sample_records(&ds.records, Similarity::Cosine, p, opts.seed);
            let sample_curve = measure_series(
                &sample_records,
                MeasureKind::Triangles,
                Similarity::Cosine,
                None,
            );
            let real_first = real_curve.points.first().map_or(0.0, |pt| pt.value);
            let ts = translation_scaling(
                &sample_curve,
                real_first,
                complete_value(MeasureKind::Triangles, ds.len()),
                &test_progress,
            );
            let reg = regression(&sample_curve, &real_train, 100, &test_progress);
            let outcome = GrowthOutcome {
                sample_curve: sample_curve.clone(),
                real_curve: real_curve.clone(),
                test_progress: test_progress.clone(),
                truth: truth.clone(),
                ts,
                reg,
                train_seconds: train_seconds + sample_curve.total_seconds(),
                dense_seconds,
            };
            let tse = outcome.ts_errors();
            let rge = outcome.reg_errors();
            rows.push(SweepRow {
                dataset: entry.name,
                method,
                ts_mean: tse.mean,
                ts_sd: tse.std_dev,
                reg_mean: rge.mean,
                reg_sd: rge.std_dev,
                speedup: outcome.speedup(),
            });
            if write_svgs && method == SamplingMethod::Random {
                let xs: Vec<f64> = outcome
                    .real_curve
                    .points
                    .iter()
                    .map(|pt| pt.progress)
                    .collect();
                let real_vals = outcome.real_curve.values();
                let mut ts_vals = vec![f64::NAN; xs.len() - outcome.ts.predicted.len()];
                ts_vals.extend(&outcome.ts.predicted);
                let mut reg_vals = vec![f64::NAN; xs.len() - outcome.reg.predicted.len()];
                reg_vals.extend(&outcome.reg.predicted);
                let sample_scaled: Vec<f64> = outcome.sample_curve.values();
                let sample_on_grid: Vec<f64> = xs
                    .iter()
                    .map(|&u| outcome.sample_curve.value_at(u))
                    .collect();
                let _ = (sample_scaled, &sample_on_grid);
                let svg = plot::svg_chart(
                    &format!("{}: triangle prediction (random sample)", entry.name),
                    &xs,
                    &[
                        ("real", &real_vals),
                        ("sample", &sample_on_grid),
                        ("TS predicted", &ts_vals),
                        ("Reg predicted", &reg_vals),
                    ],
                    true,
                );
                opts.write_artifact(&format!("fig3_growth_{}.svg", entry.name), &svg);
            }
        }
    }
    rows
}

fn print_sweep(rows: &[SweepRow], predictor: &str) {
    let mut t = Table::new(&["Dataset", "SampleType", "mean err", "sd"]);
    for r in rows {
        let (m, s) = match predictor {
            "ts" => (r.ts_mean, r.ts_sd),
            _ => (r.reg_mean, r.reg_sd),
        };
        t.row(vec![
            r.dataset.to_string(),
            r.method.name().to_string(),
            f(m),
            f(s),
        ]);
    }
    t.print();
}

/// Figs 3.7–3.11: translation–scaling predictions (4-dataset subset).
pub fn fig3_7(opts: &Opts) {
    let entries: Vec<GrowthEntry> = catalog::growth_catalog().into_iter().take(4).collect();
    let rows = run_sweep(opts, &entries, true);
    print_sweep(&rows, "ts");
}

/// Figs 3.12–3.17: regression predictions (4-dataset subset).
pub fn fig3_12(opts: &Opts) {
    let entries: Vec<GrowthEntry> = catalog::growth_catalog().into_iter().take(4).collect();
    let rows = run_sweep(opts, &entries, true);
    print_sweep(&rows, "reg");
}

/// Table 3.2: full error sweep, TS vs Regression across all datasets and
/// sampling methods.
pub fn table3_2(opts: &Opts) {
    let entries = catalog::growth_catalog();
    let rows = run_sweep(opts, &entries, false);
    let mut t = Table::new(&[
        "Dataset",
        "SampleType",
        "TS Mean",
        "TS StdDev",
        "Reg Mean",
        "Reg StdDev",
    ]);
    for r in &rows {
        t.row(vec![
            r.dataset.to_string(),
            r.method.name().to_string(),
            f(r.ts_mean),
            f(r.ts_sd),
            f(r.reg_mean),
            f(r.reg_sd),
        ]);
    }
    t.print();

    // Shape check the paper reports: regression wins on ~10 of 11 datasets.
    let mut datasets: Vec<&str> = rows.iter().map(|r| r.dataset).collect();
    datasets.dedup();
    let mut reg_wins = 0;
    for d in &datasets {
        let ts: f64 = rows
            .iter()
            .filter(|r| r.dataset == *d)
            .map(|r| r.ts_mean)
            .sum::<f64>();
        let rg: f64 = rows
            .iter()
            .filter(|r| r.dataset == *d)
            .map(|r| r.reg_mean)
            .sum::<f64>();
        if rg < ts {
            reg_wins += 1;
        }
    }
    println!(
        "\nregression beats translation-scaling on {reg_wins}/{} datasets (paper: 10/11)",
        datasets.len()
    );
    let mean_speedup = stats::mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("mean train-vs-dense speedup: {:.1}x", mean_speedup);
}

/// Fig 3.18: pair-similarity distributions of abalone-like under the three
/// sampling methods.
pub fn fig3_18(opts: &Opts) {
    let entry = &catalog::growth_catalog()[0]; // abalone
    let n = growth_rows(opts, entry.paper_n);
    let ds = entry.generate(n as f64 / entry.paper_n as f64, opts.seed);
    let p = sample_p(ds.len());

    let full = DensifyingSeries::new(&ds.records, Similarity::Cosine).similarities();
    println!(
        "actual: n={} pairs={} mean={} sd={}",
        ds.len(),
        full.len(),
        f(stats::mean(&full)),
        f(stats::std_dev(&full))
    );
    let mut t = Table::new(&["Sampling", "pairs", "mean sim", "sd", "p90"]);
    for method in SamplingMethod::all() {
        let recs = method.sample_records(&ds.records, Similarity::Cosine, p, opts.seed);
        let sims = DensifyingSeries::new(&recs, Similarity::Cosine).similarities();
        t.row(vec![
            method.name().to_string(),
            sims.len().to_string(),
            f(stats::mean(&sims)),
            f(stats::std_dev(&sims)),
            f(stats::percentile(&sims, 0.9).unwrap_or(f64::NAN)),
        ]);
    }
    t.print();
    println!("(paper: concentrated sampling shifts the distribution upward; stratified ≈ random)");
}

/// Figs 3.19/3.20: runtime of each measure over increasing density.
pub fn fig3_19(opts: &Opts) {
    for idx in [2usize, 4] {
        // image-segmentation-like and mushroom-like
        let entry = &catalog::growth_catalog()[idx];
        let n = growth_rows(opts, entry.paper_n).min(350);
        let ds = entry
            .generate(n as f64 / entry.paper_n as f64, opts.seed)
            .subsample(n, opts.seed);
        println!("\n== {} (n = {}) ==", entry.name, ds.len());
        let series = DensifyingSeries::new(&ds.records, Similarity::Cosine);
        let schedule = series.geometric_schedule();
        let mut t = {
            let mut headers = vec!["measure".to_string()];
            headers.extend(schedule.iter().map(|e| format!("m={e}")));
            let refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
            Table::new(&refs)
        };
        for measure in MeasureKind::all() {
            let curve = measure_series(&ds.records, measure, Similarity::Cosine, Some(&schedule));
            let mut row = vec![measure.name().to_string()];
            row.extend(curve.points.iter().map(|pt| secs(pt.seconds)));
            t.row(row);
        }
        t.print();
    }
    println!(
        "\n(paper: runtimes rise steeply with density except analytic complete-graph shortcuts)"
    );
}

/// Fig 3.21: triangle-count runtimes of sampled vs original graphs and the
/// resulting train-vs-dense speedups.
pub fn fig3_21(opts: &Opts) {
    let picks = [
        "image-segmentation",
        "letter-recognition",
        "mushroom",
        "yeast",
    ];
    let cat = catalog::growth_catalog();
    let mut t = Table::new(&[
        "Dataset",
        "n",
        "sample p",
        "train time",
        "dense-half time",
        "speedup",
    ]);
    for name in picks {
        let entry = cat.iter().find(|e| e.name == name).expect("known dataset");
        let n = growth_rows(opts, entry.paper_n);
        let ds = entry.generate(n as f64 / entry.paper_n as f64, opts.seed);
        let p = sample_p(ds.len());
        let out = plasma_growth::run_growth_experiment(
            &ds.records,
            Similarity::Cosine,
            MeasureKind::Triangles,
            SamplingMethod::Random,
            p,
            opts.seed,
        );
        t.row(vec![
            entry.name.to_string(),
            ds.len().to_string(),
            p.to_string(),
            secs(out.train_seconds),
            secs(out.dense_seconds),
            format!("{:.1}x", out.speedup()),
        ]);
    }
    t.print();
    println!("(paper: 7.4x / 109.3x / 117.0x / 3.7x — larger datasets gain more)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_sweep_runs_on_tiny_scale() {
        let o = Opts {
            scale: 0.02,
            seed: 3,
            out_dir: std::env::temp_dir().join("plasma_test_results"),
        };
        let entries: Vec<GrowthEntry> = catalog::growth_catalog().into_iter().take(1).collect();
        let rows = run_sweep(&o, &entries, false);
        assert_eq!(rows.len(), 3); // one dataset × three methods
        assert!(rows.iter().all(|r| r.reg_mean.is_finite()));
    }
}
