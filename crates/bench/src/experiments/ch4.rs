//! Chapter 4 experiments: LAM.

use std::time::Instant;

use plasma_core::plot;
use plasma_data::datasets::catalog;
use plasma_data::datasets::transactions::{tx_stats, Transactions};
use plasma_lam::baselines::cdb::{cdb, CdbConfig};
use plasma_lam::baselines::closed::{mine_closed, DEFAULT_BUDGET};
use plasma_lam::baselines::krimp::{krimp, KrimpConfig};
use plasma_lam::baselines::slim::{slim, SlimConfig};
use plasma_lam::classify::{cross_validate, KrimpClassifier, LamClassifier};
use plasma_lam::graph_compress::{compression_curve, inflection_points};
use plasma_lam::miner::{Lam, LamConfig};
use plasma_lam::plam::plam_run;
use plasma_lam::utility::Utility;
use plasma_lam::TransactionDb;

use crate::report::{f, secs, Table};
use crate::Opts;

/// Row cap for the quadratic-ish baselines (Krimp/Slim): the paper itself
/// could not run them at scale, which is LAM's selling point; the cap
/// keeps the comparison honest on identical data.
const BASELINE_ROWS: usize = 700;

fn tx_scaled(opts: &Opts, idx: usize) -> Transactions {
    catalog::tx_catalog()[idx].generate(opts.scale, opts.seed)
}

fn cap(txs: &Transactions, n: usize) -> Transactions {
    txs.iter().take(n).cloned().collect()
}

/// Tables 4.3/4.4: dataset characteristics.
pub fn table4_34(opts: &Opts) {
    println!("Table 4.3 — web graph stand-ins:");
    let mut t = Table::new(&[
        "Dataset",
        "paper V",
        "paper E",
        "generated V",
        "generated E",
    ]);
    for e in catalog::web_catalog(opts.scale) {
        let adj = e.spec.generate(opts.seed);
        let edges: u64 = adj.iter().map(|l| l.len() as u64).sum();
        t.row(vec![
            e.name.to_string(),
            e.paper_vertices.to_string(),
            e.paper_edges.to_string(),
            adj.len().to_string(),
            edges.to_string(),
        ]);
    }
    t.print();

    println!("\nTable 4.4 — transactional stand-ins:");
    let mut t = Table::new(&[
        "Dataset",
        "density",
        "paper #trans",
        "#trans",
        "size",
        "avg len",
    ]);
    for (i, e) in catalog::tx_catalog().iter().enumerate() {
        let txs = tx_scaled(opts, i);
        let s = tx_stats(&txs);
        t.row(vec![
            e.name.to_string(),
            e.density.to_string(),
            e.paper_n.to_string(),
            s.transactions.to_string(),
            s.size.to_string(),
            f(s.avg_len),
        ]);
    }
    t.print();
}

/// Fig 4.4: LAM5 runtime phase breakdown, Area vs RC.
pub fn fig4_4(opts: &Opts) {
    let sets: Vec<(&str, Transactions)> = vec![
        ("adult-like", tx_scaled(opts, 1)),
        ("mushroom-like", tx_scaled(opts, 4)),
        (
            "eu2005-like",
            catalog::web_catalog(opts.scale)[2].spec.generate(opts.seed),
        ),
    ];
    let mut t = Table::new(&["Dataset", "utility", "localize", "mine", "total", "vs Area"]);
    for (name, txs) in &sets {
        let mut area_total = 0.0;
        for utility in [Utility::Area, Utility::RelativeClosedness] {
            let mut db = TransactionDb::new(txs.clone());
            let cfg = LamConfig {
                utility,
                ..LamConfig::default()
            };
            let r = Lam::new(cfg).run(&mut db);
            let total = r.localize_seconds + r.mine_seconds;
            if utility == Utility::Area {
                area_total = total;
            }
            t.row(vec![
                name.to_string(),
                utility.name().to_string(),
                secs(r.localize_seconds),
                secs(r.mine_seconds),
                secs(total),
                format!("{:.2}x", total / area_total.max(1e-12)),
            ]);
        }
    }
    t.print();
    println!("(paper: Area is always faster; Phase 2 dominates, more so on larger data)");
}

/// Fig 4.5: LAM5 compression ratio across datasets and utilities.
pub fn fig4_5(opts: &Opts) {
    let sets: Vec<(&str, Transactions)> = vec![
        ("adult-like", tx_scaled(opts, 1)),
        ("mushroom-like", tx_scaled(opts, 4)),
        (
            "eu2005-like",
            catalog::web_catalog(opts.scale)[2].spec.generate(opts.seed),
        ),
    ];
    let mut t = Table::new(&["Dataset", "Area ratio", "RC ratio"]);
    for (name, txs) in &sets {
        let mut ratios = Vec::new();
        for utility in [Utility::Area, Utility::RelativeClosedness] {
            let mut db = TransactionDb::new(txs.clone());
            let r = Lam::new(LamConfig {
                utility,
                ..LamConfig::default()
            })
            .run(&mut db);
            ratios.push(r.final_ratio);
        }
        t.row(vec![name.to_string(), f(ratios[0]), f(ratios[1])]);
    }
    t.print();
    println!("(paper: differences between utilities are largely negligible)");
}

/// Fig 4.6: compression ratios of LAM, Krimp, Slim, CDB.
pub fn fig4_6(opts: &Opts) {
    let mut t = Table::new(&["Dataset", "LAM5", "Krimp", "Slim", "CDB", "winner"]);
    for (i, e) in catalog::tx_catalog().iter().enumerate() {
        let txs = cap(&tx_scaled(opts, i), BASELINE_ROWS);
        let lam_ratio = {
            let mut db = TransactionDb::new(txs.clone());
            Lam::with_passes(5).run(&mut db).final_ratio
        };
        let kr = krimp(&txs, &KrimpConfig::default());
        let sl = slim(&txs, &SlimConfig::default());
        let cd = cdb(&txs, &CdbConfig::default());
        let vals = [lam_ratio, kr.cell_ratio, sl.cell_ratio, cd.cell_ratio];
        let names = ["LAM", "Krimp", "Slim", "CDB"];
        let win = names[vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite ratios"))
            .map(|(k, _)| k)
            .unwrap_or(0)];
        t.row(vec![
            e.name.to_string(),
            f(lam_ratio),
            f(kr.cell_ratio),
            f(sl.cell_ratio),
            f(cd.cell_ratio),
            win.to_string(),
        ]);
    }
    t.print();
    println!("(paper: LAM wins most, including both large sets; Krimp/Slim take PageBlocks, CDB a few small dense sets)");
}

/// Fig 4.7: execution time of LAM vs the baselines.
pub fn fig4_7(opts: &Opts) {
    let picks = [0usize, 1, 2, 5, 4]; // accidents, adult, anneal, kosarak, mushroom
    let mut t = Table::new(&["Dataset", "rows", "LAM5", "Krimp", "Slim", "CDB"]);
    for &i in &picks {
        let e = &catalog::tx_catalog()[i];
        let txs = cap(&tx_scaled(opts, i), BASELINE_ROWS);
        let lam_secs = {
            let mut db = TransactionDb::new(txs.clone());
            let start = Instant::now();
            Lam::with_passes(5).run(&mut db);
            start.elapsed().as_secs_f64()
        };
        let kr = krimp(&txs, &KrimpConfig::default());
        let sl = slim(&txs, &SlimConfig::default());
        let cd = cdb(&txs, &CdbConfig::default());
        t.row(vec![
            e.name.to_string(),
            txs.len().to_string(),
            secs(lam_secs),
            secs(kr.seconds),
            secs(sl.seconds),
            secs(cd.mine_seconds + cd.compress_seconds),
        ]);
    }
    t.print();
    println!("(paper: LAM is one to several orders of magnitude faster)");
}

/// Fig 4.8: CDB on sampled data — compression and runtime vs sample size.
pub fn fig4_8(opts: &Opts) {
    let full = cap(&tx_scaled(opts, 1), 1_000); // adult-like
    let sigma_full = (full.len() / 10).max(2);
    let mut t = Table::new(&["sample %", "rows", "sigma", "ratio", "runtime"]);
    for pct in [100usize, 70, 50, 30, 10] {
        let rows = full.len() * pct / 100;
        let txs: Transactions = full.iter().take(rows).cloned().collect();
        let sigma = (sigma_full * pct / 100).max(2);
        let r = cdb(
            &txs,
            &CdbConfig {
                min_support: sigma,
                ..CdbConfig::default()
            },
        );
        t.row(vec![
            format!("{pct}%"),
            rows.to_string(),
            sigma.to_string(),
            f(r.cell_ratio),
            secs(r.mine_seconds + r.compress_seconds),
        ]);
    }
    t.print();
    println!("(paper: runtime drops only fractionally while compression degrades — sampling does not rescue CDB)");
}

/// Fig 4.9: compressed-analytics classification, LAM-CBA vs Krimp.
pub fn fig4_9(opts: &Opts) {
    let labeled: Vec<usize> = catalog::tx_catalog()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.labeled())
        .map(|(i, _)| i)
        .collect();
    let mut t = Table::new(&["Dataset", "rows", "classes", "LAM-CBA acc", "Krimp acc"]);
    for i in labeled {
        let e = &catalog::tx_catalog()[i];
        let (txs, labels) = e.generate_labeled(opts.scale, opts.seed);
        let n = txs.len().min(500);
        let txs: Transactions = txs.into_iter().take(n).collect();
        let labels: Vec<u32> = labels.into_iter().take(n).collect();
        let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let lam_acc = cross_validate(&txs, &labels, 5, |tr, lb, te| {
            let clf = LamClassifier::train(tr, lb, &LamConfig::default());
            te.iter().map(|t| clf.classify(t)).collect()
        });
        let krimp_acc = cross_validate(&txs, &labels, 5, |tr, lb, te| {
            let clf = KrimpClassifier::train(
                tr,
                lb,
                &KrimpConfig {
                    max_candidates: 400,
                    ..KrimpConfig::default()
                },
            );
            te.iter().map(|t| clf.classify(t)).collect()
        });
        t.row(vec![
            e.name.to_string(),
            txs.len().to_string(),
            classes.to_string(),
            f(lam_acc),
            f(krimp_acc),
        ]);
    }
    t.print();
    println!("(paper: the LAM-inspired classifier is on par with Krimp's)");
}

/// Fig 4.10: LAM vs closed itemsets on the EU-like graph: runtime and
/// compression vs support.
pub fn fig4_10(opts: &Opts) {
    let adj = catalog::web_catalog(opts.scale)[2].spec.generate(opts.seed);
    let txs: Transactions = adj.into_iter().filter(|l| l.len() >= 2).collect();
    println!("eu2005-like: {} adjacency transactions", txs.len());

    // LAM (serial + PLAM) once.
    let (lam_secs, lam_ratio_1, lam_ratio_5) = {
        let mut db1 = TransactionDb::new(txs.clone());
        let r1 = Lam::with_passes(1).run(&mut db1);
        let mut db5 = TransactionDb::new(txs.clone());
        let start = Instant::now();
        let r5 = Lam::with_passes(5).run(&mut db5);
        (
            start.elapsed().as_secs_f64(),
            r1.final_ratio,
            r5.final_ratio,
        )
    };

    let supports: Vec<usize> = [0.5, 0.2, 0.1, 0.05, 0.02]
        .iter()
        .map(|frac| ((txs.len() as f64 * frac) as usize).max(2))
        .collect();
    let mut t = Table::new(&[
        "method",
        "support",
        "gen time",
        "comp time",
        "ratio",
        "#sets",
    ]);
    for &sigma in &supports {
        let start = Instant::now();
        let mined = mine_closed(&txs, sigma, DEFAULT_BUDGET);
        let gen_time = start.elapsed().as_secs_f64();
        // Compress with the closed sets via the LocalOptimal consumer.
        let start = Instant::now();
        let r = cdb(
            &txs,
            &CdbConfig {
                min_support: sigma,
                ..CdbConfig::default()
            },
        );
        let comp_time = start.elapsed().as_secs_f64() - r.mine_seconds;
        t.row(vec![
            "closed".into(),
            sigma.to_string(),
            secs(gen_time),
            secs(comp_time.max(0.0)),
            f(r.cell_ratio),
            mined.sets.len().to_string(),
        ]);
    }
    t.row(vec![
        "LAM1".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f(lam_ratio_1),
        "-".into(),
    ]);
    t.row(vec![
        "LAM5".into(),
        "-".into(),
        secs(lam_secs),
        "incl.".into(),
        f(lam_ratio_5),
        "-".into(),
    ]);
    t.print();
    println!("(paper: at low support closed mining takes 1000s of seconds vs ~15s for LAM, for less compression)");
}

/// Fig 4.11: itemset length histograms, closed sets by support vs LAM.
pub fn fig4_11(opts: &Opts) {
    let adj = catalog::web_catalog(opts.scale)[2].spec.generate(opts.seed);
    let txs: Transactions = adj.into_iter().filter(|l| l.len() >= 2).collect();
    let buckets = [2usize, 4, 8, 16, 32, 64, usize::MAX];
    let bucket_label = |b: usize| -> String {
        match b {
            usize::MAX => "65+".into(),
            _ => format!("≤{b}"),
        }
    };
    let hist = |lens: Vec<usize>| -> Vec<u64> {
        let mut h = vec![0u64; buckets.len()];
        for l in lens {
            let b = buckets
                .iter()
                .position(|&hi| l <= hi)
                .unwrap_or(buckets.len() - 1);
            h[b] += 1;
        }
        h
    };

    let mut headers = vec!["method".to_string()];
    headers.extend(buckets.iter().map(|&b| bucket_label(b)));
    let refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&refs);

    for frac in [0.2, 0.05] {
        let sigma = ((txs.len() as f64 * frac) as usize).max(2);
        let mined = mine_closed(&txs, sigma, DEFAULT_BUDGET);
        let h = hist(mined.sets.iter().map(|s| s.items.len()).collect());
        let mut row = vec![format!("closed σ={sigma}")];
        row.extend(h.iter().map(|c| c.to_string()));
        t.row(row);
    }
    for passes in [1u32, 5] {
        let mut db = TransactionDb::new(txs.clone());
        Lam::with_passes(passes).run(&mut db);
        let h = hist(db.patterns().iter().map(|p| p.items.len()).collect());
        let mut row = vec![format!("LAM {passes}")];
        row.extend(h.iter().map(|c| c.to_string()));
        t.row(row);
    }
    t.print();
    println!("(paper: LAM finds long low-support patterns closed mining cannot reach at computable supports)");
}

/// Table 4.5: serial LAM5 execution times on the web-like graphs.
pub fn table4_5(opts: &Opts) {
    let mut t = Table::new(&["Data Set", "transactions", "time", "itemsets"]);
    for e in catalog::web_catalog(opts.scale) {
        let adj = e.spec.generate(opts.seed);
        let txs: Transactions = adj.into_iter().filter(|l| l.len() >= 2).collect();
        let mut db = TransactionDb::new(txs);
        let start = Instant::now();
        let r = Lam::with_passes(5).run(&mut db);
        t.row(vec![
            e.name.to_string(),
            db.len().to_string(),
            secs(start.elapsed().as_secs_f64()),
            r.patterns.to_string(),
        ]);
    }
    t.print();
}

/// Fig 4.12: PLAM thread scaling and per-pass compression.
pub fn fig4_12(opts: &Opts) {
    let adj = catalog::web_catalog(opts.scale)[2].spec.generate(opts.seed);
    let txs: Transactions = adj.into_iter().filter(|l| l.len() >= 2).collect();
    println!("eu2005-like: {} transactions", txs.len());

    let mut t = Table::new(&["threads", "wall time", "ratio", "speedup vs 1t"]);
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut db = TransactionDb::new(txs.clone());
        let cfg = LamConfig::default();
        let start = Instant::now();
        let r = plam_run(&mut db, &cfg, threads);
        let secs_taken = start.elapsed().as_secs_f64();
        if threads == 1 {
            base = secs_taken;
        }
        t.row(vec![
            threads.to_string(),
            secs(secs_taken),
            f(r.final_ratio),
            format!("{:.2}x", base / secs_taken.max(1e-12)),
        ]);
    }
    t.print();
    println!(
        "(note: this host exposes {} CPU core(s); the paper's 7.2-7.8x/8-core scaling needs real cores — \
         partition independence is what the harness demonstrates)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut db = TransactionDb::new(txs);
    let r = Lam::with_passes(5).run(&mut db);
    let mut t = Table::new(&["pass", "compression ratio"]);
    for (k, ratio) in r.ratio_per_pass.iter().enumerate() {
        t.row(vec![(k + 1).to_string(), f(*ratio)]);
    }
    t.print();
    println!("(paper: ratio improves with passes and flattens by pass 5)");
}

/// Fig 4.13: pattern length vs cumulative compression contribution.
pub fn fig4_13(opts: &Opts) {
    let adj = catalog::web_catalog(opts.scale)[4].spec.generate(opts.seed); // uk-like
    let txs: Transactions = adj.into_iter().filter(|l| l.len() >= 2).collect();
    let mut db = TransactionDb::new(txs);
    Lam::with_passes(5).run(&mut db);

    let mut t = Table::new(&[
        "pattern length ≤",
        "patterns",
        "cumulative saved cells",
        "% of total",
    ]);
    for b in plasma_lam::stats::length_breakdown(&db) {
        t.row(vec![
            b.max_len.to_string(),
            b.patterns.to_string(),
            b.cumulative_saved.to_string(),
            format!("{:.0}%", 100.0 * b.cumulative_share),
        ]);
    }
    t.print();
    println!("\ntop patterns by cells saved:");
    for (items, occ, saved) in plasma_lam::stats::top_patterns(&db, 3) {
        println!(
            "  len {} × {occ} occurrences (saves {saved} cells)",
            items.len()
        );
    }
    println!("final ratio: {}", f(db.compression_ratio()));
    println!("(paper: mid-length patterns carry ~50% of compression; long tails add ~10%)");
}

/// Table 4.6: the six similarity-graph source datasets.
pub fn table4_6(opts: &Opts) {
    let sets = catalog::compression_catalog(opts.scale, opts.seed);
    let mut t = Table::new(&["Dataset", "Records", "Dims", "Avg. Len", "Nnz", "measure"]);
    for ds in &sets {
        t.row(vec![
            ds.name.clone(),
            ds.len().to_string(),
            ds.dim.to_string(),
            f(ds.avg_len()),
            ds.nnz().to_string(),
            ds.measure.name().to_string(),
        ]);
    }
    t.print();
}

/// Fig 4.14: LAM compression across similarity thresholds on all six
/// datasets, with inflection-point read-offs.
pub fn fig4_14(opts: &Opts) {
    let sets = catalog::compression_catalog(opts.scale, opts.seed);
    let thresholds: Vec<f64> = (1..=9).map(|k| 0.1 * k as f64).collect();
    for ds in &sets {
        let curve = compression_curve(&ds.records, ds.measure, &thresholds, &LamConfig::default());
        let mut t = Table::new(&["threshold", "edges", "compression ratio"]);
        for p in &curve {
            t.row(vec![f(p.threshold), p.edges.to_string(), f(p.ratio)]);
        }
        println!("\n== {} ({} records) ==", ds.name, ds.len());
        t.print();
        let knees = inflection_points(&curve, 2);
        println!(
            "inflection points (probe-next candidates): {:?}",
            knees.iter().map(|&k| f(k)).collect::<Vec<_>>()
        );

        let xs: Vec<f64> = curve.iter().map(|p| p.threshold).collect();
        let ys: Vec<f64> = curve.iter().map(|p| p.ratio).collect();
        let svg = plot::svg_chart(
            &format!("{}: LAM compression vs similarity threshold", ds.name),
            &xs,
            &[("compression ratio", &ys)],
            false,
        );
        opts.write_artifact(&format!("fig4-14_{}.svg", ds.name), &svg);
    }
    println!("\n(paper: ratios always > 1; knees flag thresholds where clusterability shifts)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_helpers_work() {
        let o = Opts {
            scale: 0.01,
            seed: 5,
            out_dir: std::env::temp_dir().join("plasma_test_results"),
        };
        let txs = tx_scaled(&o, 6); // iris-like, tiny
        assert!(!txs.is_empty());
        let capped = cap(&txs, 10);
        assert!(capped.len() <= 10);
    }
}
