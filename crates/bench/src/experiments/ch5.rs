//! Chapter 5 experiments: parallel coordinates.

use std::time::Instant;

use plasma_data::datasets::catalog;
use plasma_parcoords::crossings::{crossing_matrix, total_crossings};
use plasma_parcoords::energy::{EnergyConfig, EnergyModel};
use plasma_parcoords::order::{order_dimensions, OrderMethod};
use plasma_parcoords::svg::{normalize_columns, render_energy, render_polylines, Layout};

use crate::report::{secs, Table};
use crate::Opts;

/// Held–Karp is `O(2^d)`; beyond this many dimensions only the
/// 2-approximation runs (the paper's exact timings at d=72 imply a far
/// coarser "exact" than true Hamiltonian-path optimality).
const EXACT_DIM_CAP: usize = 18;

/// Table 5.1: dataset characteristics.
pub fn table5_1(_opts: &Opts) {
    let mut t = Table::new(&["Dataset", "rows", "attributes", "figure clusters"]);
    for e in catalog::parcoords_catalog() {
        t.row(vec![
            e.name.to_string(),
            e.paper_n.to_string(),
            e.attributes.to_string(),
            e.figure_clusters.to_string(),
        ]);
    }
    t.print();
}

/// Figs 5.4–5.10: render each dataset before/after ordering + energy
/// reduction, and report crossing/energy deltas.
pub fn fig5_4(opts: &Opts) {
    let mut t = Table::new(&[
        "Dataset",
        "crossings (orig)",
        "crossings (ordered)",
        "reduction",
        "energy iters",
    ]);
    for e in catalog::parcoords_catalog() {
        let (rows, labels) = e.generate_rows(opts.seed);
        let matrix = crossing_matrix(&rows);
        let original: Vec<usize> = (0..e.attributes).collect();
        let ordered = order_dimensions(&matrix, OrderMethod::MstApprox);
        let c0 = total_crossings(&matrix, &original);
        let c1 = total_crossings(&matrix, &ordered);

        // Energy model over the ordered axes to report iterations.
        let norm = normalize_columns(&rows);
        let model = EnergyModel::new(EnergyConfig::default());
        let mut max_iters = 0usize;
        for w in ordered.windows(2) {
            let x: Vec<f64> = norm.iter().map(|r| r[w[0]]).collect();
            let y: Vec<f64> = norm.iter().map(|r| r[w[1]]).collect();
            let r = model.optimize(&x, &y, &labels);
            max_iters = max_iters.max(r.iterations);
        }

        t.row(vec![
            e.name.to_string(),
            c0.to_string(),
            c1.to_string(),
            format!("{:.0}%", 100.0 * (1.0 - c1 as f64 / c0.max(1) as f64)),
            max_iters.to_string(),
        ]);

        let before = render_polylines(&rows, &labels, &original, Layout::default());
        opts.write_artifact(&format!("fig5_{}_before.svg", e.name), &before);
        let after = render_energy(
            &rows,
            &labels,
            &ordered,
            EnergyConfig::default(),
            Layout::default(),
        );
        opts.write_artifact(&format!("fig5_{}_after.svg", e.name), &after);
    }
    t.print();
    println!(
        "(the after-SVGs show same-cluster lines merged and clusters separated, per Figs 5.4-5.10)"
    );
}

/// Table 5.2: ordering times (approx vs exact) and energy convergence.
pub fn table5_2(opts: &Opts) {
    let mut t = Table::new(&["Dataset", "d", "Order-ap", "Order-ex", "Converge", "Iter"]);
    for e in catalog::parcoords_catalog() {
        let (rows, labels) = e.generate_rows(opts.seed);
        let matrix = crossing_matrix(&rows);

        let start = Instant::now();
        let ordered = order_dimensions(&matrix, OrderMethod::MstApprox);
        let order_ap = start.elapsed().as_secs_f64();

        let order_ex = if e.attributes <= EXACT_DIM_CAP {
            let start = Instant::now();
            let _ = order_dimensions(&matrix, OrderMethod::Exact);
            Some(start.elapsed().as_secs_f64())
        } else {
            None
        };

        // Convergence: α = β = γ = 1/3 (the paper's Table 5.2 setting).
        let norm = normalize_columns(&rows);
        let model = EnergyModel::new(EnergyConfig::default());
        let start = Instant::now();
        let mut max_iters = 0usize;
        for w in ordered.windows(2) {
            let x: Vec<f64> = norm.iter().map(|r| r[w[0]]).collect();
            let y: Vec<f64> = norm.iter().map(|r| r[w[1]]).collect();
            let r = model.optimize(&x, &y, &labels);
            max_iters = max_iters.max(r.iterations);
        }
        let converge = start.elapsed().as_secs_f64();

        t.row(vec![
            e.name.to_string(),
            e.attributes.to_string(),
            secs(order_ap),
            order_ex.map_or("-".into(), secs),
            secs(converge),
            max_iters.to_string(),
        ]);
    }
    t.print();
    println!("(paper: approx ordering is millisecond-scale; convergence tens of ms; Iter is the max over adjacent pairs)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_1_runs() {
        table5_1(&Opts::default());
    }
}
