//! Experiment implementations, one module per dissertation chapter.

pub mod ch2;
pub mod ch3;
pub mod ch4;
pub mod ch5;

use crate::Opts;

/// An experiment registered with the `repro` binary.
pub struct Experiment {
    /// Subcommand id, e.g. `"fig2-6"`.
    pub id: &'static str,
    /// Paper artifact it reproduces.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&Opts),
}

/// All experiments in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table2-1",
            title: "Table 2.1: dataset characteristics",
            run: ch2::table2_1,
        },
        Experiment {
            id: "fig2-2",
            title: "Fig 2.2: toy dataset across thresholds",
            run: ch2::fig2_2,
        },
        Experiment {
            id: "fig2-3",
            title: "Figs 2.3/2.4: cumulative APSS probes on d1",
            run: ch2::fig2_3,
        },
        Experiment {
            id: "fig2-5",
            title: "Fig 2.5: wine triangle count and visual cues",
            run: ch2::fig2_5,
        },
        Experiment {
            id: "fig2-6",
            title: "Fig 2.6: incremental estimates (wine, t1=0.5)",
            run: ch2::fig2_6,
        },
        Experiment {
            id: "fig2-7",
            title: "Fig 2.7: incremental estimates (Twitter-like, t1=0.95)",
            run: ch2::fig2_7,
        },
        Experiment {
            id: "fig2-8",
            title: "Fig 2.8: incremental estimates (RCV1-like, t1=0.9)",
            run: ch2::fig2_8,
        },
        Experiment {
            id: "fig2-9",
            title: "Fig 2.9: time to generate initial sketches",
            run: ch2::fig2_9,
        },
        Experiment {
            id: "fig2-10",
            title: "Fig 2.10: effect of knowledge caching",
            run: ch2::fig2_10,
        },
        Experiment {
            id: "sec2-2-2",
            title: "§2.2.2: interactive scenario vs brute force",
            run: ch2::sec2_2_2,
        },
        Experiment {
            id: "sec2-3-4",
            title: "§2.3.4: LFR spectral-embedding interaction",
            run: ch2::sec2_3_4,
        },
        Experiment {
            id: "ablate-bayes",
            title: "§2.2.1 ablation: ε/γ/sketch-length sensitivity",
            run: ch2::ablate_bayes,
        },
        Experiment {
            id: "table3-1",
            title: "Table 3.1: graph growth datasets",
            run: ch3::table3_1,
        },
        Experiment {
            id: "fig3-1",
            title: "Figs 3.1-3.6: measures vs density (data vs ER/Geom)",
            run: ch3::fig3_1,
        },
        Experiment {
            id: "fig3-7",
            title: "Figs 3.7-3.11: translation-scaling predictions",
            run: ch3::fig3_7,
        },
        Experiment {
            id: "fig3-12",
            title: "Figs 3.12-3.17: regression predictions",
            run: ch3::fig3_12,
        },
        Experiment {
            id: "table3-2",
            title: "Table 3.2: log-triangle prediction errors",
            run: ch3::table3_2,
        },
        Experiment {
            id: "fig3-18",
            title: "Fig 3.18: pair-similarity distributions by sampling",
            run: ch3::fig3_18,
        },
        Experiment {
            id: "fig3-19",
            title: "Figs 3.19/3.20: measure runtimes over density",
            run: ch3::fig3_19,
        },
        Experiment {
            id: "fig3-21",
            title: "Fig 3.21: triangle runtimes, sample vs original",
            run: ch3::fig3_21,
        },
        Experiment {
            id: "table4-34",
            title: "Tables 4.3/4.4: LAM dataset characteristics",
            run: ch4::table4_34,
        },
        Experiment {
            id: "fig4-4",
            title: "Fig 4.4: LAM5 phase breakdown across utilities",
            run: ch4::fig4_4,
        },
        Experiment {
            id: "fig4-5",
            title: "Fig 4.5: LAM5 compression across utilities",
            run: ch4::fig4_5,
        },
        Experiment {
            id: "fig4-6",
            title: "Fig 4.6: compression ratio LAM/Krimp/Slim/CDB",
            run: ch4::fig4_6,
        },
        Experiment {
            id: "fig4-7",
            title: "Fig 4.7: execution time LAM vs baselines",
            run: ch4::fig4_7,
        },
        Experiment {
            id: "fig4-8",
            title: "Fig 4.8: CDB on sampled data",
            run: ch4::fig4_8,
        },
        Experiment {
            id: "fig4-9",
            title: "Fig 4.9: compressed-analytics classification",
            run: ch4::fig4_9,
        },
        Experiment {
            id: "fig4-10",
            title: "Fig 4.10: LAM vs closed itemsets (EU-like)",
            run: ch4::fig4_10,
        },
        Experiment {
            id: "fig4-11",
            title: "Fig 4.11: itemset sizes by support vs LAM",
            run: ch4::fig4_11,
        },
        Experiment {
            id: "table4-5",
            title: "Table 4.5: serial LAM times on web graphs",
            run: ch4::table4_5,
        },
        Experiment {
            id: "fig4-12",
            title: "Fig 4.12: PLAM scalability and per-pass ratios",
            run: ch4::fig4_12,
        },
        Experiment {
            id: "fig4-13",
            title: "Fig 4.13: pattern length vs cumulative compression",
            run: ch4::fig4_13,
        },
        Experiment {
            id: "table4-6",
            title: "Table 4.6: compression experiment datasets",
            run: ch4::table4_6,
        },
        Experiment {
            id: "fig4-14",
            title: "Fig 4.14: compression across similarity thresholds",
            run: ch4::fig4_14,
        },
        Experiment {
            id: "table5-1",
            title: "Table 5.1: parallel-coordinates datasets",
            run: ch5::table5_1,
        },
        Experiment {
            id: "fig5-4",
            title: "Figs 5.4-5.10: ordering + energy visualizations",
            run: ch5::fig5_4,
        },
        Experiment {
            id: "table5-2",
            title: "Table 5.2: ordering and convergence times",
            run: ch5::table5_2,
        },
    ]
}
