//! Reproduction harness shared code.
//!
//! The `repro` binary (src/main.rs) exposes one subcommand per paper table
//! and figure; the experiment implementations live in [`experiments`],
//! organized by chapter. Each experiment prints a paper-style table to
//! stdout and (when it has a figure shape) writes an SVG + data file under
//! `results/`.

pub mod experiments;
pub mod loadgen;
pub mod perf;
pub mod report;

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Global dataset scale factor in `(0, 1]`; 1.0 = paper-sized where
    /// tractable. Experiments apply their own per-dataset scaling on top.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for SVGs and data files.
    pub out_dir: std::path::PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: 0.12,
            seed: 42,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

impl Opts {
    /// Ensures the output directory exists and returns a path inside it.
    pub fn out_path(&self, name: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        self.out_dir.join(name)
    }

    /// Writes a text or SVG artifact and logs where it went.
    pub fn write_artifact(&self, name: &str, content: &str) {
        let path = self.out_path(name);
        std::fs::write(&path, content).expect("write artifact");
        println!("  [artifact] {}", path.display());
    }
}
