//! `plasma-loadgen`: the open-loop load harness behind `repro loadgen`.
//!
//! Closed-loop drivers (issue request, await reply, issue next) measure
//! the server's convenience, not its latency: when the server stalls,
//! the driver stops offering load, and the stall never shows up in the
//! numbers (coordinated omission). This harness is open-loop: a plan of
//! `(tick, verb)` pairs is generated up front from a seed, a dispatcher
//! releases each request at its scheduled tick whether or not earlier
//! requests have finished, and every latency sample is measured from the
//! *scheduled* tick to completion — queueing delay under backpressure is
//! part of the number, exactly as a real client would feel it. When a
//! tick finds no idle worker, the dispatcher spawns another client
//! (up to a cap) instead of waiting: the offered rate never bends to the
//! achieved rate, and the `offered_per_sec` vs `achieved_per_sec` gap is
//! the saturation measurement.
//!
//! Three scenarios drive the real serving stack (the handler layer
//! in-process by default, the TCP loopback path with `--tcp`):
//!
//! * `probe_mix` — N sessions over one published corpus, thresholds
//!   drawn Zipf-style from a ladder (analysts re-probe a few favorite
//!   thresholds far more than the tail).
//! * `ingest_probe_watch` — concurrent ingest + probe + memory-stats
//!   against one *durable* corpus (scratch `--data-dir`), with threshold
//!   watches registered before the run: every WAL append and group-commit
//!   fsync sits on the measured path, and pushed watch-delta frames are
//!   counted against their deterministic expectation.
//! * `tenant_churn` — publish/attach/probe/detach cycles across more
//!   tenants than the cache registry's `max_caches` cap admits, so
//!   registry eviction churns under load.
//!
//! Everything gateable is deterministic from the seed: the plan (and so
//! every per-verb count), the watch-delta total, the WAL acked-append
//! count, and the registry-eviction count. Only durations and the
//! group-commit coalescing ratio vary run to run, which is why the
//! `repro check-bench --against` gate compares counters exactly and
//! never compares absolute throughput. Latencies land in a fixed-bucket
//! [`Log2Histogram`]; the reporter *refuses* to emit percentiles over
//! zero samples rather than fabricating a phantom `0.0`.
//!
//! Determinism is testable because the clock is abstracted: the replay
//! suite runs plans serially under [`LoadClock::fake`], where every
//! observation advances virtual time by a fixed step, so two fresh runs
//! produce bit-identical histograms and counters
//! (`crates/bench/tests/loadgen_determinism.rs`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use plasma_core::cache::RegistryCapacity;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::rng::substream;
use plasma_data::similarity::Similarity;
use plasma_data::stats::Log2Histogram;
use plasma_data::vector::SparseVector;
use plasma_data::zipf::Zipf;
use plasma_server::{
    InProcClient, ProbeClient, ProbeServer, ProbeService, PublishCfg, Request, Response,
};
use rand::Rng;

/// The probe-threshold ladder verbs draw from (rank 0 most popular).
pub const THRESHOLD_LADDER: [f64; 9] = [0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55, 0.5];

/// Virtual nanoseconds each clock observation advances under
/// [`LoadClock::fake`].
pub const FAKE_TICK_NS: u64 = 1_000;

/// The three load shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Zipf-distributed threshold probes over one shared corpus.
    ProbeMix,
    /// Ingest + probe + memory-stats against one durable corpus, with
    /// watches registered — WAL fsyncs on the measured path.
    IngestProbeWatch,
    /// Publish/attach/probe/detach churn across more tenants than the
    /// registry cap admits.
    TenantChurn,
}

impl ScenarioKind {
    /// All scenarios, in report order.
    pub fn all() -> [ScenarioKind; 3] {
        [
            ScenarioKind::ProbeMix,
            ScenarioKind::IngestProbeWatch,
            ScenarioKind::TenantChurn,
        ]
    }

    /// The snapshot-stable scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::ProbeMix => "probe_mix",
            ScenarioKind::IngestProbeWatch => "ingest_probe_watch",
            ScenarioKind::TenantChurn => "tenant_churn",
        }
    }

    fn stream_base(&self) -> u64 {
        match self {
            ScenarioKind::ProbeMix => 0x100,
            ScenarioKind::IngestProbeWatch => 0x200,
            ScenarioKind::TenantChurn => 0x300,
        }
    }
}

/// One request the plan will offer.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// `Probe { threshold }` on the shared corpus.
    Probe { threshold: f64 },
    /// Ingest the pre-generated batch with this index.
    Ingest { batch: usize },
    /// A `memory_stats` round trip.
    MemoryStats,
    /// One full publish→attach→probe→detach cycle for this tenant.
    Churn { tenant: usize },
}

impl Verb {
    /// The snapshot-stable verb name.
    pub fn name(&self) -> &'static str {
        match self {
            Verb::Probe { .. } => "probe",
            Verb::Ingest { .. } => "ingest",
            Verb::MemoryStats => "memory_stats",
            Verb::Churn { .. } => "churn",
        }
    }
}

/// One planned request: fire at `at_ns` (relative to the step start).
#[derive(Debug, Clone, PartialEq)]
pub struct Planned {
    /// Scheduled tick, nanoseconds from step start.
    pub at_ns: u64,
    /// What to send.
    pub verb: Verb,
}

/// Generates the deterministic request plan for one rate step.
///
/// Everything downstream that the regression gate compares exactly —
/// per-verb counts, ingest batch count, distinct churned tenants —
/// derives from this plan, so it must be a pure function of
/// `(kind, seed, stream, requests, interval_ns, tenants)`.
pub fn plan_for(
    kind: ScenarioKind,
    seed: u64,
    stream: u64,
    requests: usize,
    interval_ns: u64,
    tenants: usize,
) -> Vec<Planned> {
    let mut rng = substream(seed, kind.stream_base() + stream);
    let ladder = Zipf::new(THRESHOLD_LADDER.len(), 1.1);
    let tenant_zipf = Zipf::new(tenants.max(1), 1.0);
    let mut next_batch = 0usize;
    (0..requests)
        .map(|i| {
            let verb = match kind {
                ScenarioKind::ProbeMix => Verb::Probe {
                    threshold: THRESHOLD_LADDER[ladder.sample(&mut rng)],
                },
                ScenarioKind::IngestProbeWatch => match rng.gen_range(0..10u32) {
                    0..=6 => Verb::Probe {
                        threshold: THRESHOLD_LADDER[ladder.sample(&mut rng)],
                    },
                    7 | 8 => {
                        let batch = next_batch;
                        next_batch += 1;
                        Verb::Ingest { batch }
                    }
                    _ => Verb::MemoryStats,
                },
                ScenarioKind::TenantChurn => Verb::Churn {
                    tenant: tenant_zipf.sample(&mut rng),
                },
            };
            Planned {
                at_ns: i as u64 * interval_ns.max(1),
                verb,
            }
        })
        .collect()
}

/// Per-verb request counts of a plan.
pub fn verb_counts(plan: &[Planned]) -> BTreeMap<&'static str, u64> {
    let mut counts = BTreeMap::new();
    for p in plan {
        *counts.entry(p.verb.name()).or_insert(0) += 1;
    }
    counts
}

/// Number of ingest verbs in a plan.
pub fn ingests_in(plan: &[Planned]) -> u64 {
    plan.iter()
        .filter(|p| matches!(p.verb, Verb::Ingest { .. }))
        .count() as u64
}

/// Number of distinct tenants a churn plan will publish.
pub fn distinct_tenants_in(plan: &[Planned]) -> u64 {
    plan.iter()
        .filter_map(|p| match p.verb {
            Verb::Churn { tenant } => Some(tenant),
            _ => None,
        })
        .collect::<BTreeSet<_>>()
        .len() as u64
}

/// Harness knobs. `smoke` sizing finishes in a couple of seconds per
/// scenario on one core; `full` sizing draws real saturation curves.
#[derive(Debug, Clone)]
pub struct LoadgenOpts {
    /// Master seed: the plan, the corpora, and every gateable counter
    /// derive from it.
    pub seed: u64,
    /// True for the CI-sized run.
    pub smoke: bool,
    /// Drive the TCP loopback path instead of the in-process handler.
    pub tcp: bool,
    /// Requests per rate step — a fixed count, not a duration, so the
    /// plan (and every per-verb count) stays deterministic.
    pub step_requests: usize,
    /// Offered rate of the `1.0` multiplier step.
    pub base_rate_hz: f64,
    /// Offered-rate multipliers, one step each — the saturation curve.
    pub rate_multipliers: Vec<f64>,
    /// Initial client sessions per step.
    pub sessions: usize,
    /// Sessions that also register a threshold watch
    /// (`ingest_probe_watch` only).
    pub watchers: usize,
    /// Tenant corpora for `tenant_churn`.
    pub tenants: usize,
    /// Registry cache cap for `tenant_churn` — below `tenants`, so
    /// publishes evict.
    pub max_caches: usize,
    /// Hard cap on spawned clients (initial sessions included).
    pub max_clients: usize,
    /// Records in the shared corpus published for `probe_mix` /
    /// `ingest_probe_watch`.
    pub initial_records: usize,
    /// Records per ingest batch.
    pub ingest_batch_records: usize,
    /// Records per tenant corpus.
    pub tenant_records: usize,
}

impl LoadgenOpts {
    /// CI sizing: three short rate steps per scenario.
    pub fn smoke(seed: u64) -> Self {
        LoadgenOpts {
            seed,
            smoke: true,
            tcp: false,
            step_requests: 45,
            base_rate_hz: 200.0,
            rate_multipliers: vec![0.5, 1.0, 2.0],
            sessions: 3,
            watchers: 2,
            tenants: 5,
            max_caches: 2,
            max_clients: 12,
            initial_records: 96,
            ingest_batch_records: 3,
            tenant_records: 24,
        }
    }

    /// Developer sizing: a wider rate sweep with more clients.
    pub fn full(seed: u64) -> Self {
        LoadgenOpts {
            seed,
            smoke: false,
            tcp: false,
            step_requests: 300,
            base_rate_hz: 400.0,
            rate_multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            sessions: 6,
            watchers: 4,
            tenants: 8,
            max_caches: 3,
            max_clients: 32,
            initial_records: 240,
            ingest_batch_records: 5,
            tenant_records: 48,
        }
    }

    /// Transport name for the snapshot.
    pub fn transport(&self) -> &'static str {
        if self.tcp {
            "tcp"
        } else {
            "inproc"
        }
    }
}

/// The harness clock: real monotonic time for measurement runs, a
/// deterministic virtual clock for the replay suite. Under `fake`,
/// every [`now_ns`](Self::now_ns) observation advances time by
/// [`FAKE_TICK_NS`] and `sleep_until_ns` jumps straight to the target,
/// so a serially executed plan reads an identical timestamp sequence on
/// every run.
pub enum LoadClock {
    /// Wall clock, nanoseconds since construction.
    Real(Instant),
    /// Virtual clock; the atomic holds "now" in nanoseconds.
    Fake(AtomicU64),
}

impl LoadClock {
    /// A wall clock starting at zero now.
    pub fn real() -> Self {
        LoadClock::Real(Instant::now())
    }

    /// A deterministic virtual clock starting at zero.
    pub fn fake() -> Self {
        LoadClock::Fake(AtomicU64::new(0))
    }

    /// Current time in nanoseconds. Observing the fake clock advances it.
    pub fn now_ns(&self) -> u64 {
        match self {
            LoadClock::Real(start) => start.elapsed().as_nanos() as u64,
            LoadClock::Fake(now) => now.fetch_add(FAKE_TICK_NS, Ordering::SeqCst) + FAKE_TICK_NS,
        }
    }

    /// Blocks (real) or jumps (fake) until `target_ns`.
    pub fn sleep_until_ns(&self, target_ns: u64) {
        match self {
            LoadClock::Real(start) => {
                let now = start.elapsed().as_nanos() as u64;
                if target_ns > now {
                    std::thread::sleep(Duration::from_nanos(target_ns - now));
                }
            }
            LoadClock::Fake(now) => {
                now.fetch_max(target_ns, Ordering::SeqCst);
            }
        }
    }
}

/// Everything a worker needs to execute verbs: the service (and its
/// loopback address under `--tcp`), the published corpus fingerprint,
/// and the pre-generated record pools.
pub struct Workload {
    service: Arc<ProbeService>,
    addr: Option<SocketAddr>,
    fingerprint: Option<String>,
    measure: Similarity,
    ingest_batches: Vec<Vec<SparseVector>>,
    tenants: Vec<(String, Vec<SparseVector>)>,
}

static SCRATCH_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// One rate step's serving stack: the workload plus the lifecycle bits
/// (loopback server, scratch data directory) torn down on drop.
pub struct StepHarness {
    workload: Arc<Workload>,
    server: Option<ProbeServer>,
    data_dir: Option<PathBuf>,
}

impl StepHarness {
    /// Builds the serving stack for one `(scenario, plan)` step: a fresh
    /// service (durable for `ingest_probe_watch`, eviction-capped for
    /// `tenant_churn`), the published corpus, and record pools sized to
    /// the plan.
    pub fn build(kind: ScenarioKind, opts: &LoadgenOpts, plan: &[Planned]) -> Result<Self, String> {
        let mut data_dir = None;
        let service = match kind {
            ScenarioKind::ProbeMix => Arc::new(ProbeService::new()),
            ScenarioKind::IngestProbeWatch => {
                let dir = std::env::temp_dir().join(format!(
                    "plasma-loadgen-{}-{}",
                    std::process::id(),
                    SCRATCH_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let (service, reports) = ProbeService::with_data_dir(&dir)
                    .map_err(|e| format!("cannot open scratch data dir: {e}"))?;
                if !reports.is_empty() {
                    return Err("scratch data dir was not empty".into());
                }
                data_dir = Some(dir);
                Arc::new(service)
            }
            ScenarioKind::TenantChurn => Arc::new(ProbeService::with_registry_capacity(
                RegistryCapacity::unbounded().with_max_caches(opts.max_caches),
            )),
        };

        let measure = Similarity::Cosine;
        let mut fingerprint = None;
        let mut ingest_batches = Vec::new();
        let mut tenants = Vec::new();
        match kind {
            ScenarioKind::ProbeMix | ScenarioKind::IngestProbeWatch => {
                let batches = ingests_in(plan) as usize;
                let total = opts.initial_records + batches * opts.ingest_batch_records;
                let records = GaussianSpec {
                    separation: 3.0,
                    spread: 0.8,
                    ..GaussianSpec::new("loadgen", total, 8, 3)
                }
                .generate(opts.seed.wrapping_add(kind.stream_base()))
                .records;
                let (head, tail) = records.split_at(opts.initial_records);
                ingest_batches = tail
                    .chunks(opts.ingest_batch_records)
                    .map(<[SparseVector]>::to_vec)
                    .collect();
                let mut setup = InProcClient::new(service.clone());
                let fp = match setup.request(Request::Publish {
                    name: "loadgen".into(),
                    measure,
                    records: head.to_vec(),
                    cfg: PublishCfg::default(),
                }) {
                    Response::Published { fingerprint, .. } => fingerprint,
                    other => return Err(format!("setup publish failed: {other:?}")),
                };
                fingerprint = Some(fp);
            }
            ScenarioKind::TenantChurn => {
                for t in 0..opts.tenants {
                    // Distinct seeds give each tenant a distinct corpus
                    // (and so a distinct fingerprint to publish).
                    let records = GaussianSpec {
                        separation: 3.0,
                        spread: 0.8,
                        ..GaussianSpec::new("loadgen-tenant", opts.tenant_records, 8, 2)
                    }
                    .generate(opts.seed.wrapping_add(0x1000 + t as u64))
                    .records;
                    tenants.push((format!("tenant-{t}"), records));
                }
            }
        }

        let mut server = None;
        let mut addr = None;
        if opts.tcp {
            let s = ProbeServer::start(service.clone(), "127.0.0.1:0")
                .map_err(|e| format!("cannot bind loopback server: {e}"))?;
            addr = Some(s.local_addr());
            server = Some(s);
        }

        Ok(StepHarness {
            workload: Arc::new(Workload {
                service,
                addr,
                fingerprint,
                measure,
                ingest_batches,
                tenants,
            }),
            server,
            data_dir,
        })
    }

    /// The service under load (for counter reads).
    pub fn service(&self) -> &Arc<ProbeService> {
        &self.workload.service
    }
}

impl Drop for StepHarness {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
        if let Some(dir) = self.data_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One client connection, over either transport. The in-process client
/// is boxed: it embeds the session state inline and dwarfs the socket
/// handle, and connections are opened per worker, never in bulk.
enum Conn {
    InProc(Box<InProcClient>),
    Tcp(ProbeClient),
}

impl Conn {
    fn open(workload: &Workload) -> Result<Conn, String> {
        match workload.addr {
            None => Ok(Conn::InProc(Box::new(InProcClient::new(
                workload.service.clone(),
            )))),
            Some(addr) => Ok(Conn::Tcp(
                ProbeClient::connect(addr).map_err(|e| format!("connect: {e}"))?,
            )),
        }
    }

    fn call(&mut self, request: Request) -> Result<(), String> {
        match self {
            Conn::InProc(c) => match c.request(request) {
                Response::Error { code, message } => Err(format!("{code:?}: {message}")),
                _ => Ok(()),
            },
            Conn::Tcp(c) => {
                let frame = c.request(&request).map_err(|e| format!("io: {e}"))?;
                match frame.error_code() {
                    Some(code) => Err(format!("{code}: {}", frame.raw.trim())),
                    None => Ok(()),
                }
            }
        }
    }

    fn publish(&mut self, request: Request) -> Result<String, String> {
        match self {
            Conn::InProc(c) => match c.request(request) {
                Response::Published { fingerprint, .. } => Ok(fingerprint),
                Response::Error { code, message } => Err(format!("{code:?}: {message}")),
                other => Err(format!("unexpected publish reply: {other:?}")),
            },
            Conn::Tcp(c) => {
                let frame = c.request(&request).map_err(|e| format!("io: {e}"))?;
                if let Some(code) = frame.error_code() {
                    return Err(format!("{code}: {}", frame.raw.trim()));
                }
                frame
                    .json
                    .get("fingerprint")
                    .and_then(|f| f.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| "publish reply lacks a fingerprint".to_string())
            }
        }
    }

    /// Counts watch-delta frames delivered so far (own-ingest events and
    /// frames queued by other connections' ingests).
    fn drain_watch_deltas(&mut self) -> u64 {
        match self {
            Conn::InProc(c) => {
                c.pump_watch_frames();
                c.take_events()
                    .iter()
                    .filter(|e| matches!(e, Response::WatchDeltaEvent { .. }))
                    .count() as u64
            }
            Conn::Tcp(c) => c
                .take_events()
                .iter()
                .filter(|f| f.frame_type() == "watch_delta")
                .count() as u64,
        }
    }

    /// Final drain: on TCP, frames may still be in flight from the
    /// pusher thread, so poll until the stream goes quiet.
    fn drain_watch_deltas_final(&mut self) -> u64 {
        let mut n = self.drain_watch_deltas();
        if let Conn::Tcp(c) = self {
            while let Ok(Some(frame)) = c.poll_event(Duration::from_millis(100)) {
                if frame.frame_type() == "watch_delta" {
                    n += 1;
                }
            }
        }
        n
    }

    fn close(self) {
        match self {
            Conn::InProc(c) => c.close(),
            Conn::Tcp(c) => drop(c),
        }
    }
}

/// Executes one verb on one connection. Churn cycles count as a single
/// request: one latency sample covers the whole
/// publish→attach→probe→detach round.
fn execute_verb(conn: &mut Conn, workload: &Workload, verb: &Verb) -> Result<(), String> {
    match verb {
        Verb::Probe { threshold } => conn.call(Request::Probe {
            threshold: *threshold,
        }),
        Verb::Ingest { batch } => conn.call(Request::Ingest {
            records: workload.ingest_batches[*batch].clone(),
        }),
        Verb::MemoryStats => conn.call(Request::MemoryStats),
        Verb::Churn { tenant } => {
            let (name, records) = &workload.tenants[*tenant];
            let fp = conn.publish(Request::Publish {
                name: name.clone(),
                measure: workload.measure,
                records: records.clone(),
                cfg: PublishCfg::default(),
            })?;
            conn.call(Request::Attach {
                fingerprint: fp,
                pinned: false,
                declared_measure: None,
            })?;
            conn.call(Request::Probe { threshold: 0.7 })?;
            conn.call(Request::Detach)
        }
    }
}

/// Attaches (and optionally watches) before a worker takes load.
fn setup_conn(conn: &mut Conn, workload: &Workload, watch: bool) -> Result<(), String> {
    if let Some(fp) = &workload.fingerprint {
        conn.call(Request::Attach {
            fingerprint: fp.clone(),
            pinned: false,
            declared_measure: None,
        })?;
        if watch {
            conn.call(Request::Watch { threshold: 0.7 })?;
        }
    }
    Ok(())
}

/// What one plan execution produced, merged across workers.
#[derive(Debug, Default)]
pub struct ExecutionOut {
    /// Per-request latency (ns from scheduled tick to completion).
    pub hist: Log2Histogram,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that returned an error (still latency-sampled).
    pub errors: u64,
    /// First error message seen, for diagnostics.
    pub first_error: Option<String>,
    /// Executed requests per verb name.
    pub verbs: BTreeMap<&'static str, u64>,
    /// Watch-delta frames delivered across all connections.
    pub watch_deltas: u64,
    /// Clients alive at dispatch start.
    pub clients_started: usize,
    /// Extra clients spawned on backpressure.
    pub clients_spawned: usize,
    /// Wall seconds from first tick to last completion.
    pub wall_seconds: f64,
}

#[derive(Default)]
struct WorkerOut {
    hist: Log2Histogram,
    completed: u64,
    errors: u64,
    first_error: Option<String>,
    verbs: BTreeMap<&'static str, u64>,
    watch_deltas: u64,
}

impl WorkerOut {
    fn absorb_result(&mut self, verb: &Verb, latency_ns: u64, res: Result<(), String>) {
        self.hist.record(latency_ns);
        *self.verbs.entry(verb.name()).or_insert(0) += 1;
        match res {
            Ok(()) => self.completed += 1,
            Err(msg) => {
                self.errors += 1;
                self.first_error.get_or_insert(msg);
            }
        }
    }
}

struct Job {
    verb: Verb,
    sched_ns: u64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
    idle: usize,
}

struct SharedQueue {
    state: Mutex<QueueState>,
    cvar: Condvar,
}

fn worker_loop(
    queue: Arc<SharedQueue>,
    workload: Arc<Workload>,
    watch: bool,
    clock: Arc<LoadClock>,
    ready: Option<Arc<(Mutex<usize>, Condvar)>>,
) -> Result<(WorkerOut, Conn), String> {
    let mut conn = Conn::open(&workload)?;
    let setup = setup_conn(&mut conn, &workload, watch);
    if let Some(ready) = &ready {
        let (count, cvar) = &**ready;
        *count.lock().expect("ready lock") -= 1;
        cvar.notify_all();
    }
    setup?;
    let mut out = WorkerOut::default();
    loop {
        let job = {
            let mut state = queue.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return Ok((out, conn));
                }
                state.idle += 1;
                state = queue.cvar.wait(state).expect("queue wait");
                state.idle -= 1;
            }
        };
        let res = execute_verb(&mut conn, &workload, &job.verb);
        let done_ns = clock.now_ns();
        out.absorb_result(&job.verb, done_ns.saturating_sub(job.sched_ns), res);
        out.watch_deltas += conn.drain_watch_deltas();
    }
}

/// Runs a plan open-loop: a ticker dispatches each request at its
/// scheduled time into a shared queue; `opts.sessions` workers consume;
/// a tick that finds every worker busy spawns another client (up to
/// `opts.max_clients`). The ticker never waits for responses, so offered
/// load is independent of service speed.
pub fn run_plan_open_loop(
    harness: &StepHarness,
    kind: ScenarioKind,
    opts: &LoadgenOpts,
    plan: &[Planned],
) -> Result<ExecutionOut, String> {
    let workload = harness.workload.clone();
    let clock = Arc::new(LoadClock::real());
    let queue = Arc::new(SharedQueue {
        state: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            closed: false,
            idle: 0,
        }),
        cvar: Condvar::new(),
    });

    let initial = opts.sessions.max(1).min(opts.max_clients.max(1));
    let ready = Arc::new((Mutex::new(initial), Condvar::new()));
    let mut handles = Vec::new();
    for i in 0..initial {
        let watch = kind == ScenarioKind::IngestProbeWatch && i < opts.watchers;
        let (q, w, c, r) = (
            queue.clone(),
            workload.clone(),
            clock.clone(),
            ready.clone(),
        );
        handles.push(std::thread::spawn(move || {
            worker_loop(q, w, watch, c, Some(r))
        }));
    }
    // Watch registration must finish before the first tick, so the
    // watch-delta total stays deterministic.
    {
        let (count, cvar) = &*ready;
        let mut count = count.lock().expect("ready lock");
        while *count > 0 {
            count = cvar.wait(count).expect("ready wait");
        }
    }

    let started = Instant::now();
    let mut spawned = 0usize;
    for planned in plan {
        clock.sleep_until_ns(planned.at_ns);
        let all_busy = {
            let mut state = queue.state.lock().expect("queue lock");
            state.jobs.push_back(Job {
                verb: planned.verb.clone(),
                sched_ns: planned.at_ns,
            });
            queue.cvar.notify_one();
            state.idle == 0
        };
        if all_busy && initial + spawned < opts.max_clients {
            // Backpressure: spawn another client rather than slow the
            // offered rate. Spawned clients never watch, so expectation
            // counts stay plan-derived.
            spawned += 1;
            let (q, w, c) = (queue.clone(), workload.clone(), clock.clone());
            handles.push(std::thread::spawn(move || {
                worker_loop(q, w, false, c, None)
            }));
        }
    }
    {
        let mut state = queue.state.lock().expect("queue lock");
        state.closed = true;
        queue.cvar.notify_all();
    }

    let mut out = ExecutionOut {
        clients_started: initial,
        clients_spawned: spawned,
        ..ExecutionOut::default()
    };
    let mut conns = Vec::new();
    for handle in handles {
        let (worker, conn) = handle
            .join()
            .map_err(|_| "a load worker panicked".to_string())??;
        out.hist.merge(&worker.hist);
        out.completed += worker.completed;
        out.errors += worker.errors;
        if out.first_error.is_none() {
            out.first_error = worker.first_error;
        }
        for (verb, n) in worker.verbs {
            *out.verbs.entry(verb).or_insert(0) += n;
        }
        out.watch_deltas += worker.watch_deltas;
        conns.push(conn);
    }
    out.wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    // Deltas from the final ingests may have been queued after a
    // worker's last drain; collect them before closing.
    for mut conn in conns {
        out.watch_deltas += conn.drain_watch_deltas_final();
        conn.close();
    }
    Ok(out)
}

/// Runs a plan serially on one connection — the deterministic-replay
/// path. With [`LoadClock::fake`], two fresh runs of the same plan
/// produce bit-identical histograms and counters.
pub fn run_plan_serial(
    harness: &StepHarness,
    kind: ScenarioKind,
    watch: bool,
    plan: &[Planned],
    clock: &LoadClock,
) -> Result<ExecutionOut, String> {
    let workload = &harness.workload;
    let mut conn = Conn::open(workload)?;
    setup_conn(
        &mut conn,
        workload,
        watch && kind == ScenarioKind::IngestProbeWatch,
    )?;
    let mut worker = WorkerOut::default();
    let started = Instant::now();
    for planned in plan {
        clock.sleep_until_ns(planned.at_ns);
        let res = execute_verb(&mut conn, workload, &planned.verb);
        let done_ns = clock.now_ns();
        worker.absorb_result(&planned.verb, done_ns.saturating_sub(planned.at_ns), res);
        worker.watch_deltas += conn.drain_watch_deltas();
    }
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    worker.watch_deltas += conn.drain_watch_deltas_final();
    conn.close();
    Ok(ExecutionOut {
        hist: worker.hist,
        completed: worker.completed,
        errors: worker.errors,
        first_error: worker.first_error,
        verbs: worker.verbs,
        watch_deltas: worker.watch_deltas,
        clients_started: 1,
        clients_spawned: 0,
        wall_seconds,
    })
}

const NS_PER_MS: f64 = 1e6;

/// One rate step's report: the offered-vs-achieved point on the
/// saturation curve plus the latency distribution.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Offered request rate (the plan's tick rate).
    pub offered_per_sec: f64,
    /// Completed requests per wall second.
    pub achieved_per_sec: f64,
    /// `achieved / offered` — 1.0 means the stack kept up.
    pub saturation: f64,
    /// Requests in the plan.
    pub planned: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that errored.
    pub errors: u64,
    /// Clients alive at dispatch start.
    pub clients_started: usize,
    /// Clients spawned on backpressure.
    pub clients_spawned: usize,
    /// Latency percentiles in milliseconds (scheduled tick → completion).
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Largest recorded latency.
    pub max_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Latency samples recorded (== planned for an open-loop run).
    pub samples: u64,
}

impl StepReport {
    /// Builds the report. Refuses a zero-sample execution outright —
    /// a percentile over nothing is a phantom number, and the old
    /// `percentile -> 0.0` convention let exactly that reach dashboards.
    pub fn from_execution(
        offered_per_sec: f64,
        planned: u64,
        out: &ExecutionOut,
    ) -> Result<StepReport, String> {
        let pct = |q: f64| -> Result<f64, String> {
            out.hist
                .percentile(q)
                .map(|ns| ns as f64 / NS_PER_MS)
                .ok_or_else(|| {
                    "refusing to report percentiles over zero latency samples".to_string()
                })
        };
        Ok(StepReport {
            offered_per_sec,
            achieved_per_sec: out.completed as f64 / out.wall_seconds,
            saturation: (out.completed as f64 / out.wall_seconds) / offered_per_sec.max(1e-9),
            planned,
            completed: out.completed,
            errors: out.errors,
            clients_started: out.clients_started,
            clients_spawned: out.clients_spawned,
            p50_ms: pct(0.50)?,
            p99_ms: pct(0.99)?,
            p999_ms: pct(0.999)?,
            max_ms: out.hist.max() as f64 / NS_PER_MS,
            mean_ms: out
                .hist
                .mean()
                .ok_or_else(|| "refusing to report a mean over zero latency samples".to_string())?
                / NS_PER_MS,
            samples: out.hist.total(),
        })
    }
}

/// One scenario's report: the saturation curve plus every deterministic
/// counter the regression gate compares.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Which scenario.
    pub kind: ScenarioKind,
    /// Initial sessions per step.
    pub sessions: usize,
    /// Watch-registering sessions per step.
    pub watchers: usize,
    /// Tenant corpora (churn scenario).
    pub tenants: usize,
    /// One report per rate step.
    pub steps: Vec<StepReport>,
    /// Total requests planned across steps (seed-deterministic).
    pub planned_requests: u64,
    /// Total requests completed.
    pub completed_requests: u64,
    /// Total requests errored.
    pub error_requests: u64,
    /// Executed requests per verb (seed-deterministic).
    pub verbs: BTreeMap<&'static str, u64>,
    /// Watch-delta frames delivered.
    pub watch_deltas: u64,
    /// Plan-derived expectation: watchers × (registration + ingests).
    pub watch_deltas_expected: u64,
    /// WAL appends acknowledged durable (== ingests on a fresh corpus).
    pub wal_acked_appends: u64,
    /// Group-commit fsyncs that covered them (`<= wal_acked_appends`).
    pub wal_syncs: u64,
    /// Caches evicted from the capped registry.
    pub registry_evictions: u64,
    /// Plan-derived expectation: distinct tenants − registry cap.
    pub registry_evictions_expected: u64,
    /// Signalled pusher wakeups (reported, not gated: timing-dependent).
    pub ingest_wakeups: u64,
}

/// The whole harness run, renderable into `BENCH_apss.json`'s `loadgen`
/// member.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Master seed the run derived from.
    pub seed: u64,
    /// True for CI sizing.
    pub smoke: bool,
    /// `"inproc"` or `"tcp"`.
    pub transport: String,
    /// `probe_mix`, `ingest_probe_watch`, `tenant_churn`.
    pub scenarios: Vec<ScenarioReport>,
}

fn service_counters(harness: &StepHarness) -> (u64, u64, u64, u64) {
    let service = harness.service();
    let (mut acked, mut syncs) = (0u64, 0u64);
    for (_, stats) in service.wal_sync_stats() {
        acked += stats.acked_appends;
        syncs += stats.syncs;
    }
    (
        acked,
        syncs,
        service.registry_evictions(),
        service.ingest_wakeups(),
    )
}

/// Runs one scenario across every rate step (fresh serving stack per
/// step, so counters are per-step deterministic and summable).
pub fn run_scenario(opts: &LoadgenOpts, kind: ScenarioKind) -> Result<ScenarioReport, String> {
    let mut report = ScenarioReport {
        kind,
        sessions: opts.sessions,
        watchers: if kind == ScenarioKind::IngestProbeWatch {
            opts.watchers
        } else {
            0
        },
        tenants: if kind == ScenarioKind::TenantChurn {
            opts.tenants
        } else {
            0
        },
        steps: Vec::new(),
        planned_requests: 0,
        completed_requests: 0,
        error_requests: 0,
        verbs: BTreeMap::new(),
        watch_deltas: 0,
        watch_deltas_expected: 0,
        wal_acked_appends: 0,
        wal_syncs: 0,
        registry_evictions: 0,
        registry_evictions_expected: 0,
        ingest_wakeups: 0,
    };
    for (si, mult) in opts.rate_multipliers.iter().enumerate() {
        let rate = opts.base_rate_hz * mult;
        let interval_ns = (1e9 / rate.max(1e-9)).round() as u64;
        let plan = plan_for(
            kind,
            opts.seed,
            si as u64,
            opts.step_requests,
            interval_ns,
            opts.tenants,
        );
        let harness = StepHarness::build(kind, opts, &plan)?;
        let out = run_plan_open_loop(&harness, kind, opts, &plan)?;
        let (acked, syncs, evictions, wakeups) = service_counters(&harness);
        drop(harness);
        if kind == ScenarioKind::IngestProbeWatch {
            report.watch_deltas_expected += opts.watchers as u64 * (1 + ingests_in(&plan));
        }
        if kind == ScenarioKind::TenantChurn {
            report.registry_evictions_expected +=
                distinct_tenants_in(&plan).saturating_sub(opts.max_caches as u64);
        }
        report.planned_requests += plan.len() as u64;
        report.completed_requests += out.completed;
        report.error_requests += out.errors;
        if let Some(err) = &out.first_error {
            eprintln!("  [loadgen] {}: first error: {err}", kind.name());
        }
        for (verb, n) in &out.verbs {
            *report.verbs.entry(verb).or_insert(0) += n;
        }
        report.watch_deltas += out.watch_deltas;
        report.wal_acked_appends += acked;
        report.wal_syncs += syncs;
        report.registry_evictions += evictions;
        report.ingest_wakeups += wakeups;
        report
            .steps
            .push(StepReport::from_execution(rate, plan.len() as u64, &out)?);
    }
    Ok(report)
}

/// Runs all three scenarios.
pub fn run(opts: &LoadgenOpts) -> Result<LoadgenReport, String> {
    let mut scenarios = Vec::new();
    for kind in ScenarioKind::all() {
        scenarios.push(run_scenario(opts, kind)?);
    }
    Ok(LoadgenReport {
        seed: opts.seed,
        smoke: opts.smoke,
        transport: opts.transport().to_string(),
        scenarios,
    })
}

impl LoadgenReport {
    /// Renders the `loadgen` JSON member (hand-rolled; no serde in the
    /// offline container).
    pub fn to_json(&self) -> String {
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| {
                let steps: Vec<String> = s
                    .steps
                    .iter()
                    .map(|t| {
                        format!(
                            "{{\"offered_per_sec\": {:.1}, \"achieved_per_sec\": {:.1}, \"saturation\": {:.4}, \"planned\": {}, \"completed\": {}, \"errors\": {}, \"clients_started\": {}, \"clients_spawned\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}, \"mean_ms\": {:.3}, \"samples\": {}}}",
                            t.offered_per_sec,
                            t.achieved_per_sec,
                            t.saturation,
                            t.planned,
                            t.completed,
                            t.errors,
                            t.clients_started,
                            t.clients_spawned,
                            t.p50_ms,
                            t.p99_ms,
                            t.p999_ms,
                            t.max_ms,
                            t.mean_ms,
                            t.samples
                        )
                    })
                    .collect();
                let verbs: Vec<String> = s
                    .verbs
                    .iter()
                    .map(|(verb, n)| format!("\"{verb}\": {n}"))
                    .collect();
                format!(
                    "{{\n      \"scenario\": \"{}\", \"sessions\": {}, \"watchers\": {}, \"tenants\": {},\n      \"planned_requests\": {}, \"completed_requests\": {}, \"error_requests\": {},\n      \"verbs\": {{{}}},\n      \"watch_deltas\": {}, \"watch_deltas_expected\": {},\n      \"wal_acked_appends\": {}, \"wal_syncs\": {},\n      \"registry_evictions\": {}, \"registry_evictions_expected\": {}, \"ingest_wakeups\": {},\n      \"steps\": [\n        {}\n      ]\n    }}",
                    s.kind.name(),
                    s.sessions,
                    s.watchers,
                    s.tenants,
                    s.planned_requests,
                    s.completed_requests,
                    s.error_requests,
                    verbs.join(", "),
                    s.watch_deltas,
                    s.watch_deltas_expected,
                    s.wal_acked_appends,
                    s.wal_syncs,
                    s.registry_evictions,
                    s.registry_evictions_expected,
                    s.ingest_wakeups,
                    steps.join(",\n        ")
                )
            })
            .collect();
        format!(
            "{{\n    \"seed\": {}, \"smoke\": {}, \"transport\": \"{}\",\n    \"scenarios\": [{}\n    ]\n  }}",
            self.seed,
            self.smoke,
            self.transport,
            scenarios.join(",")
        )
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen ({} transport, seed {}{})\n",
            self.transport,
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "  {:<18} {} planned, {} completed, {} errors",
                s.kind.name(),
                s.planned_requests,
                s.completed_requests,
                s.error_requests
            ));
            match s.kind {
                ScenarioKind::IngestProbeWatch => out.push_str(&format!(
                    ", {} watch deltas (expect {}), {} wal syncs / {} acks\n",
                    s.watch_deltas, s.watch_deltas_expected, s.wal_syncs, s.wal_acked_appends
                )),
                ScenarioKind::TenantChurn => out.push_str(&format!(
                    ", {} evictions (expect {})\n",
                    s.registry_evictions, s.registry_evictions_expected
                )),
                ScenarioKind::ProbeMix => out.push('\n'),
            }
            for t in &s.steps {
                out.push_str(&format!(
                    "    offered {:>7.1}/s   achieved {:>7.1}/s   sat {:>5.2}   p50 {:>8.3} ms   p99 {:>8.3} ms   p999 {:>8.3} ms   +{} clients\n",
                    t.offered_per_sec,
                    t.achieved_per_sec,
                    t.saturation,
                    t.p50_ms,
                    t.p99_ms,
                    t.p999_ms,
                    t.clients_spawned
                ));
            }
        }
        out
    }
}

/// Splices a rendered `loadgen` object into a `BENCH_apss.json`
/// document as its `"loadgen"` member, replacing any existing one.
///
/// Works textually (brace matching) because the snapshot format never
/// puts braces inside strings; this keeps `repro loadgen --json` able
/// to refresh just its own member without re-measuring the whole
/// snapshot.
pub fn splice_into_snapshot(snapshot: &str, loadgen_json: &str) -> String {
    let mut doc = snapshot.trim_end().to_string();
    if let Some(key) = doc.find("\"loadgen\":") {
        let start = doc[..key].rfind(',').unwrap_or(key);
        let open = key + doc[key..].find('{').expect("loadgen member is an object");
        let mut depth = 0usize;
        let mut end = doc.len();
        for (i, ch) in doc[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        doc.replace_range(start..end, "");
    }
    let close = doc.rfind('}').expect("snapshot document is an object");
    doc.replace_range(
        close..,
        &format!(",\n  \"loadgen\": {}\n}}\n", loadgen_json),
    );
    doc
}

/// A fixture report with internally consistent counters, for schema and
/// gate tests (no measurement run needed).
pub fn fixture_report() -> LoadgenReport {
    let step = |offered: f64, planned: u64| StepReport {
        offered_per_sec: offered,
        achieved_per_sec: offered * 0.9,
        saturation: 0.9,
        planned,
        completed: planned,
        errors: 0,
        clients_started: 3,
        clients_spawned: 1,
        p50_ms: 0.5,
        p99_ms: 2.0,
        p999_ms: 4.0,
        max_ms: 4.5,
        mean_ms: 0.8,
        samples: planned,
    };
    let scenario = |kind: ScenarioKind| {
        let verbs: BTreeMap<&'static str, u64> = match kind {
            ScenarioKind::ProbeMix => [("probe", 90u64)].into_iter().collect(),
            ScenarioKind::IngestProbeWatch => {
                [("probe", 62u64), ("ingest", 19), ("memory_stats", 9)]
                    .into_iter()
                    .collect()
            }
            ScenarioKind::TenantChurn => [("churn", 90u64)].into_iter().collect(),
        };
        ScenarioReport {
            kind,
            sessions: 3,
            watchers: if kind == ScenarioKind::IngestProbeWatch {
                2
            } else {
                0
            },
            tenants: if kind == ScenarioKind::TenantChurn {
                5
            } else {
                0
            },
            steps: vec![step(100.0, 45), step(200.0, 45)],
            planned_requests: 90,
            completed_requests: 90,
            error_requests: 0,
            verbs,
            watch_deltas: if kind == ScenarioKind::IngestProbeWatch {
                42
            } else {
                0
            },
            watch_deltas_expected: if kind == ScenarioKind::IngestProbeWatch {
                42
            } else {
                0
            },
            wal_acked_appends: if kind == ScenarioKind::IngestProbeWatch {
                19
            } else {
                0
            },
            wal_syncs: if kind == ScenarioKind::IngestProbeWatch {
                11
            } else {
                0
            },
            registry_evictions: if kind == ScenarioKind::TenantChurn {
                6
            } else {
                0
            },
            registry_evictions_expected: if kind == ScenarioKind::TenantChurn {
                6
            } else {
                0
            },
            ingest_wakeups: 0,
        }
    };
    LoadgenReport {
        seed: 42,
        smoke: true,
        transport: "inproc".to_string(),
        scenarios: ScenarioKind::all().map(scenario).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        for kind in ScenarioKind::all() {
            let a = plan_for(kind, 7, 2, 80, 5_000_000, 5);
            let b = plan_for(kind, 7, 2, 80, 5_000_000, 5);
            assert_eq!(a, b, "{kind:?} plan must replay bit-identically");
            let c = plan_for(kind, 8, 2, 80, 5_000_000, 5);
            assert_ne!(a, c, "{kind:?} plan must actually use the seed");
            assert_eq!(a.len(), 80);
            for (i, p) in a.iter().enumerate() {
                assert_eq!(p.at_ns, i as u64 * 5_000_000);
            }
        }
    }

    #[test]
    fn mixed_plan_covers_every_verb_and_numbers_batches_sequentially() {
        let plan = plan_for(ScenarioKind::IngestProbeWatch, 42, 0, 200, 1000, 5);
        let counts = verb_counts(&plan);
        assert!(counts["probe"] > 0 && counts["ingest"] > 0 && counts["memory_stats"] > 0);
        assert_eq!(counts.values().sum::<u64>(), 200);
        let batches: Vec<usize> = plan
            .iter()
            .filter_map(|p| match p.verb {
                Verb::Ingest { batch } => Some(batch),
                _ => None,
            })
            .collect();
        assert_eq!(batches, (0..batches.len()).collect::<Vec<_>>());
        assert_eq!(ingests_in(&plan), batches.len() as u64);
    }

    #[test]
    fn fake_clock_replays_an_identical_timestamp_sequence() {
        let observe = || {
            let clock = LoadClock::fake();
            let mut seen = Vec::new();
            for t in [0u64, 500, 10_000, 10_100] {
                clock.sleep_until_ns(t);
                seen.push(clock.now_ns());
            }
            seen
        };
        assert_eq!(observe(), observe());
        let clock = LoadClock::fake();
        clock.sleep_until_ns(5_000);
        assert!(clock.now_ns() >= 5_000, "sleep must advance virtual time");
        let before = clock.now_ns();
        clock.sleep_until_ns(0);
        assert!(clock.now_ns() > before, "sleep never rewinds");
    }

    #[test]
    fn zero_sample_execution_is_refused_not_reported_as_zero() {
        let out = ExecutionOut {
            wall_seconds: 1.0,
            ..ExecutionOut::default()
        };
        let err = StepReport::from_execution(100.0, 0, &out).expect_err("no samples, no report");
        assert!(err.contains("zero latency samples"), "{err}");
    }

    #[test]
    fn splice_inserts_and_replaces_the_loadgen_member() {
        let base = "{\n  \"benchmark\": \"apss\",\n  \"cores\": 1\n}\n";
        let first = splice_into_snapshot(base, "{\"seed\": 1}");
        assert!(first.contains("\"loadgen\": {\"seed\": 1}"));
        assert!(first.contains("\"cores\": 1"));
        assert_eq!(
            first.matches('{').count(),
            first.matches('}').count(),
            "{first}"
        );
        let second = splice_into_snapshot(&first, "{\"seed\": 2, \"scenarios\": []}");
        assert!(!second.contains("\"seed\": 1"), "{second}");
        assert!(second.contains("\"seed\": 2"));
        assert_eq!(second.matches("\"loadgen\":").count(), 1);
        assert_eq!(second.matches('{').count(), second.matches('}').count());
    }

    #[test]
    fn fixture_report_renders_balanced_consistent_json() {
        let report = fixture_report();
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"scenario\": \"probe_mix\""));
        assert!(json.contains("\"scenario\": \"ingest_probe_watch\""));
        assert!(json.contains("\"scenario\": \"tenant_churn\""));
        assert!(json.contains("\"wal_acked_appends\": 19"));
        let parsed = plasma_server::json::parse(&json).expect("fixture json parses");
        let scenarios = parsed
            .get("scenarios")
            .and_then(|s| s.as_arr())
            .expect("scenarios array");
        assert_eq!(scenarios.len(), 3);
        assert!(!report.summary().is_empty());
    }
}
