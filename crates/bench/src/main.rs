//! `repro` — the PLASMA-HD reproduction harness.
//!
//! One subcommand per paper table/figure (see DESIGN.md's experiment
//! index). Usage:
//!
//! ```text
//! repro <experiment-id | all | list | bench | loadgen
//!        | check-bench [PATH] [--against BASELINE]>
//!       [--scale S] [--seed N] [--out DIR] [--json] [--smoke] [--tcp]
//! ```
//!
//! `repro bench` runs the quick APSS perf smoke (sequential vs parallel
//! sketching and pair evaluation, shared-cache and bounded-cache probe
//! sweeps, banded-skew sharding, the streaming-ingest scenario:
//! batches ingested into a live session with carried-memo probes after
//! each epoch, the ingest-scaling scenario: fixed-size batches into
//! a ~10×-growing corpus, recording per-batch ingest nanoseconds and
//! snapshot-clone bytes from the segmented sketch store, and the
//! watch-scaling scenario: a ladder of 8 threshold watches evaluated on
//! every ingest, recording per-epoch delta nanoseconds and delta pair
//! counts, and the serving scenario: attach/probe/ingest/memory-stats
//! round trips through the `plasma-serve` wire protocol against an
//! in-process loopback server, and the recovery scenario: a
//! snapshotted, WAL-logged corpus recovered warm, recording snapshot
//! bytes, WAL-replay records/sec, and the warm-restart vs cold-build
//! ratio); with `--json` it also writes the
//! snapshot to `BENCH_apss.json` for CI perf tracking.
//! `repro loadgen [--smoke] [--tcp] [--json]` runs the open-loop load
//! harness (`plasma_bench::loadgen`): three scenarios — Zipf threshold
//! probe mix, concurrent ingest+probe+watch against a durable corpus,
//! and multi-tenant publish/attach/detach churn under registry-capacity
//! pressure — each swept across offered-rate steps, reporting
//! p50/p99/p999 latency and the offered-vs-achieved saturation curve;
//! with `--json` it refreshes the `loadgen` member of `BENCH_apss.json`
//! in place. `repro bench --json` runs the smoke-sized harness too, so
//! the written snapshot always carries the `loadgen` member.
//! `repro check-bench [PATH] [--against BASELINE]` validates a written
//! snapshot against the expected schema (including the bounded-cache
//! memory, `streaming`, `ingest_scaling`, `watch_scaling`, `serving`,
//! `recovery`, and `loadgen` fields) and exits non-zero on violations;
//! with `--against` it additionally compares deterministic counters
//! exactly and structural ratios within tolerance bands against the
//! committed baseline snapshot — never absolute throughput — and fails
//! non-zero on drift. That pair is the CI perf-smoke gate.

use plasma_bench::experiments::registry;
use plasma_bench::Opts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut command: Option<String> = None;
    let mut snapshot_path: Option<String> = None;
    let mut against: Option<String> = None;
    let mut json = false;
    let mut smoke = false;
    let mut tcp = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                opts.out_dir = args
                    .get(i)
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--tcp" => tcp = true,
            "--against" => {
                i += 1;
                against = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--against needs a baseline snapshot path")),
                );
            }
            arg if command.is_none() => command = Some(arg.to_string()),
            arg if command.as_deref() == Some("check-bench") && snapshot_path.is_none() => {
                snapshot_path = Some(arg.to_string());
            }
            arg => die(&format!("unexpected argument: {arg}")),
        }
        i += 1;
    }

    let experiments = registry();
    match command.as_deref() {
        None | Some("list") => {
            println!("PLASMA-HD reproduction harness. Experiments:");
            for e in &experiments {
                println!("  {:<10} {}", e.id, e.title);
            }
            println!("  {:<10} run every experiment in order", "all");
            println!(
                "  {:<10} quick APSS perf smoke (add --json for BENCH_apss.json)",
                "bench"
            );
            println!(
                "  {:<10} open-loop load harness (--smoke, --tcp; --json refreshes BENCH_apss.json)",
                "loadgen"
            );
            println!(
                "  {:<10} validate a BENCH_apss.json against the snapshot schema (--against BASELINE gates counters)",
                "check-bench"
            );
            println!(
                "\noptions: --scale S (default {}), --seed N, --out DIR",
                opts.scale
            );
        }
        Some("bench") => {
            banner(
                "bench",
                "APSS perf smoke: sketching + pair evaluation, seq vs parallel",
            );
            let snapshot = plasma_bench::perf::measure();
            print!("{}", snapshot.summary());
            if json {
                // The written snapshot must satisfy the full schema,
                // loadgen member included, so the smoke harness rides
                // along.
                let mut lopts = plasma_bench::loadgen::LoadgenOpts::smoke(opts.seed);
                lopts.tcp = tcp;
                let report = plasma_bench::loadgen::run(&lopts)
                    .unwrap_or_else(|e| die(&format!("loadgen smoke failed: {e}")));
                print!("{}", report.summary());
                let doc = plasma_bench::loadgen::splice_into_snapshot(
                    &snapshot.to_json(),
                    &report.to_json(),
                );
                let path = "BENCH_apss.json";
                std::fs::write(path, doc).expect("write perf snapshot");
                println!("  [artifact] {path}");
            }
        }
        Some("loadgen") => {
            banner(
                "loadgen",
                "open-loop load harness: latency percentiles + saturation curves",
            );
            let mut lopts = if smoke {
                plasma_bench::loadgen::LoadgenOpts::smoke(opts.seed)
            } else {
                plasma_bench::loadgen::LoadgenOpts::full(opts.seed)
            };
            lopts.tcp = tcp;
            let report = plasma_bench::loadgen::run(&lopts)
                .unwrap_or_else(|e| die(&format!("loadgen: {e}")));
            print!("{}", report.summary());
            if json {
                let path = "BENCH_apss.json";
                let base = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    die(&format!(
                        "cannot read {path} ({e}); run `repro bench --json` first"
                    ))
                });
                let doc = plasma_bench::loadgen::splice_into_snapshot(&base, &report.to_json());
                std::fs::write(path, doc).expect("write perf snapshot");
                println!("  [artifact] {path} (loadgen member refreshed)");
            }
        }
        Some("check-bench") => {
            let path = snapshot_path.as_deref().unwrap_or("BENCH_apss.json");
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            match plasma_bench::perf::validate_snapshot_json(&json) {
                Ok(()) => println!("{path}: schema OK"),
                Err(problems) => {
                    eprintln!("{path}: schema violations:");
                    for p in &problems {
                        eprintln!("  - {p}");
                    }
                    std::process::exit(1);
                }
            }
            if let Some(baseline_path) = against {
                let baseline = std::fs::read_to_string(&baseline_path)
                    .unwrap_or_else(|e| die(&format!("cannot read {baseline_path}: {e}")));
                match plasma_bench::perf::compare_snapshots(&json, &baseline) {
                    Ok(()) => println!("{path}: no regression against {baseline_path}"),
                    Err(problems) => {
                        eprintln!("{path}: regressions against {baseline_path}:");
                        for p in &problems {
                            eprintln!("  - {p}");
                        }
                        std::process::exit(1);
                    }
                }
            }
        }
        Some("all") => {
            let started = std::time::Instant::now();
            for e in &experiments {
                banner(e.id, e.title);
                (e.run)(&opts);
            }
            println!(
                "\nall {} experiments finished in {:.1}s",
                experiments.len(),
                started.elapsed().as_secs_f64()
            );
        }
        Some(id) => match experiments.iter().find(|e| e.id == id) {
            Some(e) => {
                banner(e.id, e.title);
                (e.run)(&opts);
            }
            None => die(&format!("unknown experiment '{id}'; run `repro list`")),
        },
    }
}

fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("[{id}] {title}");
    println!("{}", "=".repeat(72));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
