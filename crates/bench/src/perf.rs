//! Quick APSS perf snapshot (`repro bench [--json]`).
//!
//! Times the two halves of the APSS hot path — sketching and exhaustive
//! pair evaluation — sequentially and at full parallelism on a fixed
//! 200-record corpus, and reports throughput (records/sec, pairs/sec) and
//! the parallel speedup. With `--json` the snapshot is also written to
//! `BENCH_apss.json` so CI can track the perf trajectory across commits.
//! This is a smoke measurement (fractions of a second per kernel), not a
//! statistical benchmark; `cargo bench` owns the careful numbers.

use std::time::Instant;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig};
use plasma_data::datasets::corpus::CorpusSpec;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::Sketcher;

/// One kernel's sequential-vs-parallel rates (work units per second).
#[derive(Debug, Clone, Copy)]
pub struct KernelRates {
    /// Work units (records or pairs) per run.
    pub units: u64,
    /// Units per second with `parallelism = 1`.
    pub seq_per_sec: f64,
    /// Units per second with `parallelism = cores`.
    pub par_per_sec: f64,
}

impl KernelRates {
    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.par_per_sec / self.seq_per_sec.max(f64::MIN_POSITIVE)
    }
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct ApssPerfSnapshot {
    /// Worker threads used for the parallel runs.
    pub cores: usize,
    /// MinHash sketching, 200 records × 256 hashes.
    pub sketch_minhash: KernelRates,
    /// SimHash sketching, 200 records × 256 hashes.
    pub sketch_simhash: KernelRates,
    /// Exhaustive BayesLSH pair evaluation, 200 records → 19 900 pairs.
    pub pair_evaluation: KernelRates,
}

/// Best observed rate of `run` (units/sec) over ~`budget_ms` of wall time.
fn best_rate<F: FnMut()>(units: u64, budget_ms: u64, mut run: F) -> f64 {
    // One untimed warm-up run.
    run();
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut best = 0.0f64;
    loop {
        let t = Instant::now();
        run();
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        best = best.max(units as f64 / secs);
        if Instant::now() >= deadline {
            return best;
        }
    }
}

/// Measures the snapshot.
pub fn measure() -> ApssPerfSnapshot {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let corpus = CorpusSpec::new("bench", 200, 4000, 6).generate(1);
    let n_hashes = 256;

    let sketch_rates = |family: LshFamily| -> KernelRates {
        let units = corpus.records.len() as u64;
        let seq = Sketcher::new(family, n_hashes, 7).with_parallelism(Some(1));
        let par = Sketcher::new(family, n_hashes, 7).with_parallelism(Some(cores));
        KernelRates {
            units,
            seq_per_sec: best_rate(units, 300, || {
                std::hint::black_box(seq.sketch_all(&corpus.records));
            }),
            par_per_sec: best_rate(units, 300, || {
                std::hint::black_box(par.sketch_all(&corpus.records));
            }),
        }
    };
    let sketch_minhash = sketch_rates(LshFamily::MinHash);
    let sketch_simhash = sketch_rates(LshFamily::SimHash);

    let ds = GaussianSpec::new("bench", 200, 10, 4).generate(3);
    let n = ds.records.len() as u64;
    let pairs = n * (n - 1) / 2;
    let seq_cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let par_cfg = ApssConfig {
        parallelism: Some(cores),
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(&ds.records, ds.measure, &seq_cfg);
    let pair_evaluation = KernelRates {
        units: pairs,
        seq_per_sec: best_rate(pairs, 400, || {
            std::hint::black_box(apss_with_sketches(
                &ds.records,
                ds.measure,
                &sketches,
                0.7,
                &seq_cfg,
            ));
        }),
        par_per_sec: best_rate(pairs, 400, || {
            std::hint::black_box(apss_with_sketches(
                &ds.records,
                ds.measure,
                &sketches,
                0.7,
                &par_cfg,
            ));
        }),
    };

    ApssPerfSnapshot {
        cores,
        sketch_minhash,
        sketch_simhash,
        pair_evaluation,
    }
}

impl ApssPerfSnapshot {
    /// Renders the snapshot as JSON (hand-rolled; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        fn rates(r: &KernelRates) -> String {
            format!(
                "{{\"units\": {}, \"seq_per_sec\": {:.1}, \"par_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.units,
                r.seq_per_sec,
                r.par_per_sec,
                r.speedup()
            )
        }
        format!(
            "{{\n  \"benchmark\": \"apss\",\n  \"cores\": {},\n  \"sketching\": {{\n    \"n_hashes\": 256,\n    \"minhash\": {},\n    \"simhash\": {}\n  }},\n  \"pair_evaluation\": {}\n}}\n",
            self.cores,
            rates(&self.sketch_minhash),
            rates(&self.sketch_simhash),
            rates(&self.pair_evaluation)
        )
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("APSS perf snapshot ({} cores)\n", self.cores));
        for (name, r) in [
            ("sketch/minhash256", &self.sketch_minhash),
            ("sketch/simhash256", &self.sketch_simhash),
            ("pairs/exhaustive", &self.pair_evaluation),
        ] {
            out.push_str(&format!(
                "  {name:<20} seq {:>12.0}/s   par {:>12.0}/s   speedup {:>5.2}x\n",
                r.seq_per_sec,
                r.par_per_sec,
                r.speedup()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_by_eye_and_machine() {
        let snap = ApssPerfSnapshot {
            cores: 4,
            sketch_minhash: KernelRates {
                units: 200,
                seq_per_sec: 1000.0,
                par_per_sec: 3500.0,
            },
            sketch_simhash: KernelRates {
                units: 200,
                seq_per_sec: 800.0,
                par_per_sec: 3000.0,
            },
            pair_evaluation: KernelRates {
                units: 19900,
                seq_per_sec: 100_000.0,
                par_per_sec: 420_000.0,
            },
        };
        let json = snap.to_json();
        assert!(json.contains("\"benchmark\": \"apss\""));
        assert!(json.contains("\"cores\": 4"));
        assert!(json.contains("\"speedup\": 3.500"));
        // Balanced braces — cheap structural sanity.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert!((snap.pair_evaluation.speedup() - 4.2).abs() < 1e-9);
    }
}
