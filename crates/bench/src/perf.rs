//! Quick APSS perf snapshot (`repro bench [--json]`).
//!
//! Times the two halves of the APSS hot path — sketching and exhaustive
//! pair evaluation — sequentially and at full parallelism on a fixed
//! 200-record corpus, plus the shared-cache serving shape: N concurrent
//! sessions sweeping thresholds over one `SharedKnowledgeCache` (probe
//! latency and cache hit-rate vs session count), the bounded-cache
//! shape: the same sweep under a byte cap, recording peak memo bytes,
//! hit rate, and evictions against the unbounded baseline, and the
//! banded-skew shape: candidate generation over a Zipf-clustered corpus
//! whose dominant bucket holds the majority of all records, recording how
//! the `ShardPolicy` fans that hot bucket out (`banded_skew` fields —
//! shards, largest-shard pairs, seq vs parallel rate), and the streaming
//! shape: N record batches ingested into a live `StreamingSession` with a
//! probe after each epoch, recording ingest throughput and the
//! carried-memo hit rate (`streaming` fields), and the ingest-scaling
//! shape: fixed-size batches ingested into a corpus growing ~10×,
//! recording per-batch ingest nanoseconds and snapshot-clone bytes — the
//! segmented store's O(batch) ingest and O(segments) epoch-snapshot
//! guarantees as measured numbers (`ingest_scaling` fields), and the
//! serving shape: the engine's verbs round-tripped through
//! `plasma-serve`'s newline-delimited JSON protocol against an
//! in-process loopback server, recording requests/sec and per-verb mean
//! round-trip microseconds (`serving` fields), and the recovery shape:
//! a snapshotted, WAL-logged corpus brought back warm via
//! `plasma_core::durable::recover`, recording snapshot bytes, WAL-replay
//! records/sec, and the warm-restart vs cold-build time ratio
//! (`recovery` fields). With `--json`
//! the snapshot is also written to `BENCH_apss.json` so CI can track the
//! perf trajectory across commits (`repro check-bench` validates the
//! schema). This is a smoke measurement (fractions of a second per
//! kernel), not a statistical benchmark; `cargo bench` owns the careful
//! numbers.

use std::sync::Arc;
use std::time::Instant;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig};
use plasma_core::cache::{CacheCapacity, CacheMemoryStats, CacheRegistry};
use plasma_core::durable::{self, CorpusStore};
use plasma_core::{Session, SharedKnowledgeCache, StreamingSession};
use plasma_data::datasets::corpus::CorpusSpec;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::rng::seeded;
use plasma_data::vector::SparseVector;
use plasma_data::zipf::Zipf;
use plasma_lsh::candidates::{
    banded_sequential, banded_shard_stats, banded_with_policy, ShardPolicy,
};
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::Sketcher;
use plasma_server::json::{self, Json};
use plasma_server::{ProbeClient, ProbeServer, ProbeService, PublishCfg, Request};

/// One kernel's sequential-vs-parallel rates (work units per second).
#[derive(Debug, Clone, Copy)]
pub struct KernelRates {
    /// Work units (records or pairs) per run.
    pub units: u64,
    /// Units per second with `parallelism = 1`.
    pub seq_per_sec: f64,
    /// Units per second with `parallelism = cores`.
    pub par_per_sec: f64,
}

impl KernelRates {
    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.par_per_sec / self.seq_per_sec.max(f64::MIN_POSITIVE)
    }
}

/// One session-count configuration of the concurrent-probe measurement:
/// `sessions` OS threads, each driving its own [`Session`] attached to
/// one [`SharedKnowledgeCache`], each sweeping the same threshold ladder.
#[derive(Debug, Clone, Copy)]
pub struct MultiSessionRates {
    /// Concurrent sessions sharing the cache.
    pub sessions: usize,
    /// Total probes issued across all sessions.
    pub probes: u64,
    /// Probes completed per second of wall time (all sessions together).
    pub probes_per_sec: f64,
    /// Mean single-probe latency in milliseconds.
    pub mean_probe_ms: f64,
    /// Pair evaluations answered from the shared memo pool, as a fraction
    /// of all candidate evaluations.
    pub cache_hit_rate: f64,
}

/// Memory behavior of the shared cache under a byte cap, against the
/// unbounded baseline: the same 4-session threshold sweep run twice.
#[derive(Debug, Clone, Copy)]
pub struct BoundedCacheRates {
    /// The byte cap configured for the bounded run (a quarter of the
    /// unbounded run's peak, so eviction genuinely engages).
    pub cap_bytes: usize,
    /// Peak accounted memo bytes of the unbounded run.
    pub peak_memo_bytes_unbounded: usize,
    /// Peak accounted memo bytes of the capped run.
    pub peak_memo_bytes: usize,
    /// Aggregate cache hit-rate of the unbounded run.
    pub hit_rate_unbounded: f64,
    /// Aggregate cache hit-rate of the capped run.
    pub hit_rate: f64,
    /// Pair memos evicted during the capped run.
    pub evicted_entries: u64,
}

/// Banded candidate generation over a Zipf-clustered corpus whose
/// dominant bucket holds the majority of all records — the skewed-keys
/// scenario that used to serialize the join inside one band. The shard
/// fields show the hot bucket fanning out: `shards` far above one and
/// `largest_shard_pairs` bounded by the policy while `hot_bucket_share`
/// exceeds one half.
#[derive(Debug, Clone, Copy)]
pub struct BandedSkewRates {
    /// Records in the skewed corpus.
    pub records: u64,
    /// Fraction of records in the hottest bucket (> 0.5 by construction).
    pub hot_bucket_share: f64,
    /// Pairs inside that hottest bucket.
    pub hot_bucket_pairs: u64,
    /// Total pre-dedup pairs across all band buckets (the generation
    /// work a probe must distribute).
    pub total_pairs: u64,
    /// Shards the default policy produces.
    pub shards: u64,
    /// Pairs carried by the largest shard — the longest serial pairing
    /// any single worker is handed.
    pub largest_shard_pairs: u64,
    /// Deduplicated candidates the join returns.
    pub candidates: u64,
    /// Generated pairs per second, sequential reference.
    pub seq_per_sec: f64,
    /// Generated pairs per second, sharded at full parallelism.
    pub par_per_sec: f64,
}

impl BandedSkewRates {
    /// Parallel speedup over sequential.
    pub fn speedup(&self) -> f64 {
        self.par_per_sec / self.seq_per_sec.max(f64::MIN_POSITIVE)
    }
}

/// The streaming-ingest shape: a live [`StreamingSession`] absorbs N
/// record batches (epoch-versioned batch-extend sketching) with one
/// probe per epoch. `carried_hit_rate` is the fraction of post-ingest
/// pair evaluations answered from memos carried across epoch bumps —
/// with one re-probed threshold per epoch it approaches the old-pair
/// share of the corpus, the whole point of the carry-over.
#[derive(Debug, Clone, Copy)]
pub struct StreamingRates {
    /// Batches ingested after the seed corpus.
    pub batches: u64,
    /// Records per ingested batch.
    pub batch_records: u64,
    /// Corpus size after every batch landed.
    pub final_records: u64,
    /// Corpus epoch after every batch landed (= `batches`).
    pub final_epoch: u64,
    /// Ingested records per second of ingest wall time (batch sketching
    /// + cache growth).
    pub ingest_records_per_sec: f64,
    /// Carried-memo hit rate across the post-ingest probes.
    pub carried_hit_rate: f64,
    /// Mean post-ingest probe latency in milliseconds.
    pub probe_mean_ms: f64,
}

/// The ingest-scaling shape: a fixed-size batch ingested repeatedly into
/// a growing [`StreamingSession`], timing each ingest. With the segmented
/// sketch store, per-batch ingest cost is O(batch) — the corpus growing
/// ~10× must not slow the same-size batch down — and each epoch's
/// snapshot clone copies only the mutable tail plus one pointer per
/// sealed segment, never the corpus words
/// ([`plasma_core::streaming::IngestReport::snapshot_clone_bytes`]).
#[derive(Debug, Clone)]
pub struct IngestScalingRates {
    /// Batches ingested after the seed corpus.
    pub batches: u64,
    /// Records per ingested batch (fixed across the run).
    pub batch_records: u64,
    /// Seed corpus size before the first timed batch.
    pub initial_records: u64,
    /// Corpus size after every batch landed.
    pub final_records: u64,
    /// Wall nanoseconds of each ingest call, in batch order.
    pub per_batch_ns: Vec<u64>,
    /// Bytes each epoch's snapshot clone actually copied (tail words +
    /// segment pointers), in batch order.
    pub snapshot_clone_bytes: Vec<u64>,
    /// Total sketch bytes of the final corpus — what a flat store would
    /// copy per snapshot.
    pub corpus_bytes: u64,
    /// Sealed (immutable, `Arc`-shared) segments of the final corpus.
    pub sealed_segments: u64,
    /// Records per segment in force (the `PLASMA_SEGMENT_RECORDS`
    /// default unless overridden).
    pub segment_records: u64,
}

impl IngestScalingRates {
    /// Nanoseconds of the first timed batch.
    pub fn first_batch_ns(&self) -> u64 {
        self.per_batch_ns.first().copied().unwrap_or(0)
    }

    /// Nanoseconds of the last timed batch — same batch size, ~10×
    /// larger corpus.
    pub fn last_batch_ns(&self) -> u64 {
        self.per_batch_ns.last().copied().unwrap_or(0)
    }

    /// Last-batch over first-batch time: ~1.0 when ingest is O(batch),
    /// growing with the corpus when it is not.
    pub fn ns_ratio_last_over_first(&self) -> f64 {
        self.last_batch_ns() as f64 / self.first_batch_ns().max(1) as f64
    }
}

/// The continuous-probe shape: a ladder of threshold watches registered
/// over the [`IngestScalingRates`] corpus growth, every ingest delivering
/// one [`plasma_core::watch::WatchDelta`] per watch. The number this
/// scenario pins is the cost of *staying informed*: each epoch's watch
/// evaluations touch only that epoch's new candidates (the first watch
/// pays their cold cost, the rest ride its published memos), so per-epoch
/// delta time tracks the delta size, not the corpus size.
#[derive(Debug, Clone)]
pub struct WatchScalingRates {
    /// Simultaneous watches registered before the first timed batch.
    pub watches: u64,
    /// Batches ingested after the seed corpus.
    pub batches: u64,
    /// Records per ingested batch (fixed across the run).
    pub batch_records: u64,
    /// Seed corpus size before the first timed batch.
    pub initial_records: u64,
    /// Corpus size after every batch landed.
    pub final_records: u64,
    /// Wall nanoseconds of each ingest call — batch sketching, cache
    /// growth, and all watch delta evaluations — in batch order.
    pub per_epoch_delta_ns: Vec<u64>,
    /// New pairs delivered per epoch, summed across all watches, in
    /// batch order.
    pub per_epoch_delta_pairs: Vec<u64>,
    /// Pairs delivered across all epochs and watches (registration
    /// deltas excluded — they are full probes, not deltas).
    pub total_delta_pairs: u64,
}

/// The served shape: the same engine behind `plasma-serve`'s
/// newline-delimited JSON protocol, measured end to end over a loopback
/// TCP connection — attach/detach, warmed probes, ingest batches, and
/// `memory_stats` round trips against an in-process [`ProbeServer`].
/// The number this scenario pins is the transport tax: a warmed probe
/// round trip is a pure cache hit inside the engine, so its mean is
/// almost entirely framing, dispatch, and loopback latency.
#[derive(Debug, Clone)]
pub struct ServingRates {
    /// Round trips in the timed section (each request and its reply).
    pub requests: u64,
    /// Timed-section round trips per second of wall time.
    pub requests_per_sec: f64,
    /// Mean microseconds for an `attach` round trip (fingerprint lookup
    /// plus a session fork off the served master).
    pub attach_mean_us: f64,
    /// Mean microseconds for a warmed `probe` round trip (pure memo
    /// hits inside the engine — this is the protocol overhead).
    pub probe_mean_us: f64,
    /// Mean microseconds for an `ingest` round trip (batch sketching,
    /// cache growth, and watch evaluation under the corpus writer).
    pub ingest_mean_us: f64,
    /// Mean microseconds for a `memory_stats` round trip.
    pub memory_stats_mean_us: f64,
}

/// The durability shape: one corpus snapshotted at publish, grown with
/// WAL-logged ingest batches, then brought back via
/// [`plasma_core::durable::recover`] — snapshot load, `is_prefix_of`
/// overlap verification, and WAL tail replay through the normal ingest
/// path — timed against the cold build of the same corpus (sketch
/// everything from the records). The number this scenario pins is the
/// warm-restart dividend: recovery deserializes sketch words instead of
/// recomputing them, so `warm_cold_ratio` should sit well under 1.0.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRates {
    /// Records in the publish-time (epoch 0) snapshot.
    pub initial_records: u64,
    /// WAL-logged ingest batches past the snapshot.
    pub batches: u64,
    /// Records per logged batch.
    pub batch_records: u64,
    /// Corpus size after replay (= initial + batches × batch_records).
    pub final_records: u64,
    /// Bytes of the epoch-0 snapshot file on disk.
    pub snapshot_bytes: u64,
    /// Records replayed from the WAL tail during the warm restart.
    pub wal_replay_records: u64,
    /// WAL-replayed records per second of warm-restart wall time.
    pub wal_replay_records_per_sec: f64,
    /// Best cold-start milliseconds: build session + sketches from the
    /// full record set.
    pub cold_start_ms: f64,
    /// Best warm-restart milliseconds: load snapshot, verify, replay WAL.
    pub warm_restart_ms: f64,
}

impl RecoveryRates {
    /// Warm restart over cold start: < 1.0 when recovery beats
    /// re-sketching the corpus.
    pub fn warm_cold_ratio(&self) -> f64 {
        self.warm_restart_ms / self.cold_start_ms.max(f64::MIN_POSITIVE)
    }
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct ApssPerfSnapshot {
    /// Worker threads used for the parallel runs.
    pub cores: usize,
    /// MinHash sketching, 200 records × 256 hashes.
    pub sketch_minhash: KernelRates,
    /// SimHash sketching, 200 records × 256 hashes.
    pub sketch_simhash: KernelRates,
    /// Exhaustive BayesLSH pair evaluation, 200 records → 19 900 pairs.
    pub pair_evaluation: KernelRates,
    /// Shared-cache concurrent probing at 1, 2, and 4 sessions.
    pub multi_session: Vec<MultiSessionRates>,
    /// The sweep under a memo-byte cap vs unbounded.
    pub bounded_cache: BoundedCacheRates,
    /// Banded candidate generation under hot-bucket key skew.
    pub banded_skew: BandedSkewRates,
    /// Streaming ingest: batch-extend sketching + carried-memo probing.
    pub streaming: StreamingRates,
    /// Ingest scaling: fixed-size batches into a ~10×-growing corpus.
    pub ingest_scaling: IngestScalingRates,
    /// Continuous probes: a watch ladder evaluated on every ingest.
    pub watch_scaling: WatchScalingRates,
    /// The probe service: engine verbs round-tripped over loopback TCP.
    pub serving: ServingRates,
    /// Durability: warm restart (snapshot + WAL replay) vs cold build.
    pub recovery: RecoveryRates,
}

/// Best observed rate of `run` (units/sec) over ~`budget_ms` of wall time.
fn best_rate<F: FnMut()>(units: u64, budget_ms: u64, mut run: F) -> f64 {
    // One untimed warm-up run.
    run();
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut best = 0.0f64;
    loop {
        let t = Instant::now();
        run();
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        best = best.max(units as f64 / secs);
        if Instant::now() >= deadline {
            return best;
        }
    }
}

/// Measures the snapshot.
pub fn measure() -> ApssPerfSnapshot {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let corpus = CorpusSpec::new("bench", 200, 4000, 6).generate(1);
    let n_hashes = 256;

    let sketch_rates = |family: LshFamily| -> KernelRates {
        let units = corpus.records.len() as u64;
        let seq = Sketcher::new(family, n_hashes, 7).with_parallelism(Some(1));
        let par = Sketcher::new(family, n_hashes, 7).with_parallelism(Some(cores));
        KernelRates {
            units,
            seq_per_sec: best_rate(units, 300, || {
                std::hint::black_box(seq.sketch_all(&corpus.records));
            }),
            par_per_sec: best_rate(units, 300, || {
                std::hint::black_box(par.sketch_all(&corpus.records));
            }),
        }
    };
    let sketch_minhash = sketch_rates(LshFamily::MinHash);
    let sketch_simhash = sketch_rates(LshFamily::SimHash);

    let ds = GaussianSpec::new("bench", 200, 10, 4).generate(3);
    let n = ds.records.len() as u64;
    let pairs = n * (n - 1) / 2;
    let seq_cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let par_cfg = ApssConfig {
        parallelism: Some(cores),
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(&ds.records, ds.measure, &seq_cfg);
    let pair_evaluation = KernelRates {
        units: pairs,
        seq_per_sec: best_rate(pairs, 400, || {
            std::hint::black_box(apss_with_sketches(
                &ds.records,
                ds.measure,
                &sketches,
                0.7,
                &seq_cfg,
            ));
        }),
        par_per_sec: best_rate(pairs, 400, || {
            std::hint::black_box(apss_with_sketches(
                &ds.records,
                ds.measure,
                &sketches,
                0.7,
                &par_cfg,
            ));
        }),
    };

    // The 4-session run doubles as the bounded measurement's unbounded
    // baseline, so the most expensive sweep runs once, not twice.
    let mut baseline = None;
    let multi_session = [1usize, 2, 4]
        .iter()
        .map(|&s| {
            let (rates, stats) =
                sweep_shared_cache(&ds.records, ds.measure, s, CacheCapacity::unbounded());
            if s == 4 {
                baseline = Some((rates, stats));
            }
            rates
        })
        .collect();
    let (base_rates, base_stats) = baseline.expect("the session ladder includes 4");
    let bounded_cache = measure_bounded_cache(&ds.records, ds.measure, base_rates, base_stats);
    let banded_skew = measure_banded_skew_sized(cores, 1000, 250);
    let streaming = measure_streaming_sized(100, 40, 3);
    // Fixed 200-record batches growing the corpus 200 → 2000 (10×): the
    // O(batch) acceptance shape.
    let ingest_scaling = measure_ingest_scaling_sized(200, 200, 9);
    // The ingest_scaling growth shape at half depth, with a ladder of 8
    // threshold watches evaluated on every batch.
    let watch_scaling = measure_watch_scaling_sized(200, 200, 4, 8);
    // The same engine behind the wire: verbs round-tripped over an
    // in-process loopback server.
    let serving = measure_serving_sized(120, 40, 3, 12);
    // Durability: snapshot a 160-record corpus, log 3 × 40-record
    // batches to the WAL, then time warm recovery vs a cold rebuild.
    let recovery = measure_recovery_sized(160, 40, 3);

    ApssPerfSnapshot {
        cores,
        sketch_minhash,
        sketch_simhash,
        pair_evaluation,
        multi_session,
        bounded_cache,
        banded_skew,
        streaming,
        ingest_scaling,
        watch_scaling,
        serving,
        recovery,
    }
}

/// Measures [`ServingRates`]: boot an in-process [`ProbeServer`] on an
/// ephemeral loopback port, publish an `initial`-record corpus over the
/// wire, then time `reps` attach/detach cycles, `reps` warmed probe
/// round trips, `batches` ingest round trips of `batch_records` each,
/// and `reps` `memory_stats` round trips — every number is a full
/// request→reply cycle through framing, dispatch, and the engine.
fn measure_serving_sized(
    initial: usize,
    batch_records: usize,
    batches: usize,
    reps: usize,
) -> ServingRates {
    let total = initial + batch_records * batches;
    let ds = GaussianSpec::new("bench-serve", total, 10, 4).generate(17);
    let service = Arc::new(ProbeService::new());
    let server = ProbeServer::start(service, "127.0.0.1:0").expect("bind ephemeral loopback port");
    let mut client = ProbeClient::connect(server.local_addr()).expect("connect to bench server");
    let reply = client
        .request(&Request::Publish {
            name: "bench-serve".into(),
            measure: ds.measure,
            records: ds.records[..initial].to_vec(),
            cfg: PublishCfg::default(),
        })
        .expect("publish round trip");
    let fingerprint = reply
        .json
        .get("fingerprint")
        .and_then(|f| f.as_str().map(str::to_string))
        .expect("publish reply carries a fingerprint");
    let attach_request = Request::Attach {
        fingerprint,
        pinned: false,
        declared_measure: None,
    };
    let round_trip = |client: &mut ProbeClient, request: &Request| -> f64 {
        let t = Instant::now();
        let reply = client.request(request).expect("bench round trip");
        let secs = t.elapsed().as_secs_f64();
        assert_ne!(reply.frame_type(), "error", "{}", reply.raw);
        secs
    };

    let started = Instant::now();
    let mut requests = 0u64;
    let mut attach_secs = 0.0f64;
    for _ in 0..reps {
        attach_secs += round_trip(&mut client, &attach_request);
        client.request(&Request::Detach).expect("detach round trip");
        requests += 2;
    }
    client.request(&attach_request).expect("serving attach");
    // One warm-up probe publishes the memos; the timed probes are pure
    // cache hits, so their mean is the protocol overhead.
    client
        .request(&Request::Probe { threshold: 0.7 })
        .expect("warm-up probe");
    requests += 2;
    let mut probe_secs = 0.0f64;
    for _ in 0..reps {
        probe_secs += round_trip(&mut client, &Request::Probe { threshold: 0.7 });
        requests += 1;
    }
    let mut ingest_secs = 0.0f64;
    for b in 0..batches {
        let lo = initial + b * batch_records;
        let records = ds.records[lo..lo + batch_records].to_vec();
        ingest_secs += round_trip(&mut client, &Request::Ingest { records });
        requests += 1;
    }
    let mut stats_secs = 0.0f64;
    for _ in 0..reps {
        stats_secs += round_trip(&mut client, &Request::MemoryStats);
        requests += 1;
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    drop(client);
    server.stop();

    let mean_us = |secs: f64, n: usize| secs * 1e6 / n.max(1) as f64;
    ServingRates {
        requests,
        requests_per_sec: requests as f64 / wall,
        attach_mean_us: mean_us(attach_secs, reps),
        probe_mean_us: mean_us(probe_secs, reps),
        ingest_mean_us: mean_us(ingest_secs, batches),
        memory_stats_mean_us: mean_us(stats_secs, reps),
    }
}

/// Measures [`RecoveryRates`]: seed a scratch corpus directory the way
/// the serving layer does — publish-time snapshot of `initial` records,
/// then `batches` WAL-logged ingest batches of `batch_records` — and
/// time [`plasma_core::durable::recover`] (snapshot load + overlap
/// verification + WAL tail replay) against a cold
/// [`StreamingSession::from_records`] build of the full corpus. Both
/// sides are best-of-`reps` wall times; recovery leaves the directory
/// untouched, so repeated runs recover identical state.
fn measure_recovery_sized(initial: usize, batch_records: usize, batches: usize) -> RecoveryRates {
    let total = initial + batch_records * batches;
    let ds = GaussianSpec::new("bench-recovery", total, 10, 4).generate(19);
    let cfg = ApssConfig::default();
    // Unique per call so concurrently-running tests never share a dir.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "plasma-bench-recovery-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Publish: snapshot the epoch-0 corpus the way `plasma-serve` does.
    let fp = CacheRegistry::fingerprint(&ds.records[..initial], ds.measure, &cfg);
    let mut live = StreamingSession::from_records(ds.records[..initial].to_vec(), ds.measure, cfg);
    live.ingest(&[]); // force the lazy epoch-0 build without bumping the epoch
    let (records, sketches, _) = live.persist_view().expect("epoch-0 cache built");
    let store = CorpusStore::open(&dir, fp).expect("open bench corpus store");
    let snapshot_bytes = store
        .write_snapshot(&records, &sketches)
        .expect("publish-time snapshot");
    // Serve: ingest each batch WAL-first (the append-before-ack order).
    for b in 0..batches {
        let lo = initial + b * batch_records;
        let batch = &ds.records[lo..lo + batch_records];
        let report = live.ingest(batch);
        store
            .append_ingest(
                report.epoch,
                report.total_records - report.records_added,
                batch,
            )
            .expect("wal append");
    }
    drop((live, store));

    // Best-of-N wall seconds; one untimed warm-up run filters the first
    // pass's page-cache and allocator noise.
    let best_secs = |mut run: Box<dyn FnMut()>| -> f64 {
        run();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            run();
            best = best.min(t.elapsed().as_secs_f64().max(1e-9));
        }
        best
    };
    let warm_dir = dir.clone();
    let warm_secs = best_secs(Box::new(move || {
        let rec = durable::recover(&warm_dir, ds.measure, cfg, CacheCapacity::unbounded())
            .expect("bench recovery");
        assert_eq!(
            rec.epoch, batches as u64,
            "recovery must replay every batch"
        );
        std::hint::black_box(rec);
    }));
    let cold_records = ds.records.clone();
    let cold_secs = best_secs(Box::new(move || {
        let mut cold = StreamingSession::from_records(cold_records.clone(), ds.measure, cfg);
        cold.ingest(&[]); // force the build the lazy session defers
        std::hint::black_box(cold);
    }));
    let _ = std::fs::remove_dir_all(&dir);

    let wal_replay_records = (batch_records * batches) as u64;
    RecoveryRates {
        initial_records: initial as u64,
        batches: batches as u64,
        batch_records: batch_records as u64,
        final_records: total as u64,
        snapshot_bytes,
        wal_replay_records,
        wal_replay_records_per_sec: wal_replay_records as f64 / warm_secs,
        cold_start_ms: cold_secs * 1e3,
        warm_restart_ms: warm_secs * 1e3,
    }
}

/// Measures [`IngestScalingRates`]: seed a [`StreamingSession`] with
/// `initial` records, then ingest `batches` fixed-size batches of
/// `batch_records` with no probes in between, timing each ingest call and
/// recording each epoch's snapshot-clone bytes. Pure ingest — the number
/// this scenario exists to pin is that the last batch (largest corpus)
/// costs about the same as the first.
fn measure_ingest_scaling_sized(
    initial: usize,
    batch_records: usize,
    batches: usize,
) -> IngestScalingRates {
    let total = initial + batch_records * batches;
    let ds = GaussianSpec::new("bench-ingest", total, 10, 4).generate(11);
    let cfg = ApssConfig::default();
    let mut session =
        StreamingSession::from_records(ds.records[..initial].to_vec(), ds.measure, cfg);
    // Force the lazy epoch-0 build now so the first timed batch measures
    // ingest, not the seed corpus's sketch_all.
    session.ingest(&[]);
    let mut per_batch_ns = Vec::with_capacity(batches);
    let mut snapshot_clone_bytes = Vec::with_capacity(batches);
    for b in 0..batches {
        let lo = initial + b * batch_records;
        let t = Instant::now();
        let report = session.ingest(&ds.records[lo..lo + batch_records]);
        per_batch_ns.push(t.elapsed().as_nanos() as u64);
        snapshot_clone_bytes.push(report.snapshot_clone_bytes as u64);
    }
    let sketches = session.sketches().expect("ingest built the sketch store");
    IngestScalingRates {
        batches: batches as u64,
        batch_records: batch_records as u64,
        initial_records: initial as u64,
        final_records: session.len() as u64,
        per_batch_ns,
        snapshot_clone_bytes,
        corpus_bytes: sketches.byte_size() as u64,
        sealed_segments: sketches.sealed_segments() as u64,
        segment_records: sketches.segment_records() as u64,
    }
}

/// Measures [`WatchScalingRates`]: seed a [`StreamingSession`] with
/// `initial` records, register `watches` threshold watches on a descending
/// ladder, then ingest `batches` fixed-size batches, timing each ingest —
/// which now includes one delta evaluation per watch. Registration deltas
/// (full probes by construction) are drained before the clock starts; the
/// timed loop counts only per-epoch delta pairs. The first watch of each
/// epoch pays the delta's cold evaluation, the remaining watches ride the
/// memos it published.
fn measure_watch_scaling_sized(
    initial: usize,
    batch_records: usize,
    batches: usize,
    watches: usize,
) -> WatchScalingRates {
    let total = initial + batch_records * batches;
    let ds = GaussianSpec::new("bench-watch", total, 10, 4).generate(13);
    let cfg = ApssConfig::default();
    let mut session =
        StreamingSession::from_records(ds.records[..initial].to_vec(), ds.measure, cfg);
    // Force the lazy epoch-0 build so registration probes hit a warm store.
    session.ingest(&[]);
    let handles: Vec<_> = (0..watches)
        .map(|w| session.watch(0.9 - 0.05 * w as f64))
        .collect();
    // Drain the registration deltas — full probes at the seed corpus, not
    // part of the per-epoch delta cost this scenario pins.
    for h in &handles {
        h.drain();
    }
    let mut per_epoch_delta_ns = Vec::with_capacity(batches);
    let mut per_epoch_delta_pairs = Vec::with_capacity(batches);
    for b in 0..batches {
        let lo = initial + b * batch_records;
        let t = Instant::now();
        session.ingest(&ds.records[lo..lo + batch_records]);
        per_epoch_delta_ns.push(t.elapsed().as_nanos() as u64);
        let pairs: usize = handles
            .iter()
            .flat_map(|h| h.drain())
            .map(|d| d.new_pairs.len())
            .sum();
        per_epoch_delta_pairs.push(pairs as u64);
    }
    WatchScalingRates {
        watches: watches as u64,
        batches: batches as u64,
        batch_records: batch_records as u64,
        initial_records: initial as u64,
        final_records: session.len() as u64,
        total_delta_pairs: per_epoch_delta_pairs.iter().sum(),
        per_epoch_delta_ns,
        per_epoch_delta_pairs,
    }
}

/// Measures [`StreamingRates`]: seed a [`StreamingSession`] with
/// `initial` records and one warm probe, then ingest `batches` batches of
/// `batch_records`, re-probing the same threshold after each epoch — the
/// serving shape where every old pair rides a carried memo.
fn measure_streaming_sized(initial: usize, batch_records: usize, batches: usize) -> StreamingRates {
    let total = initial + batch_records * batches;
    let ds = GaussianSpec::new("bench-stream", total, 10, 4).generate(7);
    let cfg = ApssConfig::default();
    let mut session =
        StreamingSession::from_records(ds.records[..initial].to_vec(), ds.measure, cfg);
    session.probe(0.7);
    let mut ingest_secs = 0.0f64;
    let mut probe_secs = 0.0f64;
    let mut hits = 0u64;
    let mut candidates = 0u64;
    for b in 0..batches {
        let lo = initial + b * batch_records;
        let t = Instant::now();
        session.ingest(&ds.records[lo..lo + batch_records]);
        ingest_secs += t.elapsed().as_secs_f64();
        let report = session.probe(0.7);
        probe_secs += report.seconds;
        hits += report.cache_hits;
        candidates += report.candidates;
    }
    StreamingRates {
        batches: batches as u64,
        batch_records: batch_records as u64,
        final_records: session.len() as u64,
        final_epoch: session.epoch(),
        ingest_records_per_sec: (batch_records * batches) as f64 / ingest_secs.max(1e-9),
        carried_hit_rate: hits as f64 / candidates.max(1) as f64,
        probe_mean_ms: probe_secs * 1e3 / (batches as f64).max(1.0),
    }
}

/// A Zipf(2.0)-clustered corpus: each record is an exact copy of its
/// cluster's base set, cluster drawn from `Zipf` over 64 ranks — the
/// rank-0 cluster holds ~60% of records, so every band of its sketches
/// has one bucket carrying the majority of the corpus.
fn zipf_skewed_records(n: usize, seed: u64) -> Vec<SparseVector> {
    let zipf = Zipf::new(64, 2.0);
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let c = zipf.sample(&mut rng) as u32;
            SparseVector::from_set((c * 60..c * 60 + 45).collect())
        })
        .collect()
}

/// Banded join bands/width used by the skew measurement.
const SKEW_BANDS: usize = 8;
const SKEW_WIDTH: usize = 8;

/// Measures [`BandedSkewRates`] on an `n`-record Zipf-skewed corpus,
/// with `budget_ms` of wall time per timed kernel (small in tests, 250ms
/// in the real snapshot).
fn measure_banded_skew_sized(cores: usize, n: usize, budget_ms: u64) -> BandedSkewRates {
    let records = zipf_skewed_records(n, 9);
    let sketches = Sketcher::new(LshFamily::MinHash, 64, 7).sketch_all(&records);
    let policy = ShardPolicy::default();
    let stats = banded_shard_stats(&sketches, SKEW_BANDS, SKEW_WIDTH, policy);
    let candidates = banded_sequential(&sketches, SKEW_BANDS, SKEW_WIDTH).len() as u64;
    let seq_per_sec = best_rate(stats.total_pairs, budget_ms, || {
        std::hint::black_box(banded_sequential(&sketches, SKEW_BANDS, SKEW_WIDTH));
    });
    let par_per_sec = best_rate(stats.total_pairs, budget_ms, || {
        std::hint::black_box(banded_with_policy(
            &sketches,
            SKEW_BANDS,
            SKEW_WIDTH,
            Some(cores),
            policy,
        ));
    });
    BandedSkewRates {
        records: n as u64,
        hot_bucket_share: stats.hot_bucket_members as f64 / (n as f64).max(1.0),
        hot_bucket_pairs: stats.hot_bucket_pairs,
        total_pairs: stats.total_pairs,
        shards: stats.shards,
        largest_shard_pairs: stats.largest_shard_pairs,
        candidates,
        seq_per_sec,
        par_per_sec,
    }
}

/// Threshold ladder each benchmark session sweeps (high → low, the
/// interactive exploration shape; overlapping sweeps are what the shared
/// cache exists to amortize).
const SESSION_SWEEP: [f64; 5] = [0.9, 0.8, 0.7, 0.6, 0.5];

/// Runs `sessions` concurrent sessions over one fresh shared cache under
/// the given memory policy, each sweeping [`SESSION_SWEEP`]; returns the
/// aggregate rates and the cache's post-sweep memory statistics.
/// Per-probe evaluation is pinned sequential so the session count is the
/// only parallelism axis.
fn sweep_shared_cache(
    records: &[plasma_data::vector::SparseVector],
    measure: plasma_data::similarity::Similarity,
    sessions: usize,
    capacity: CacheCapacity,
) -> (MultiSessionRates, CacheMemoryStats) {
    let cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(records, measure, &cfg);
    let cache = Arc::new(SharedKnowledgeCache::with_capacity(sketches, capacity));
    let wall = Instant::now();
    // (probe seconds, cache hits, candidates) per session.
    let per_session: Vec<(f64, u64, u64)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..sessions)
            .map(|_| {
                let cache = cache.clone();
                scope.spawn(move || {
                    let mut session = Session::from_records(records.to_vec(), measure, cfg)
                        .with_shared_cache(cache);
                    let mut totals = (0.0f64, 0u64, 0u64);
                    for &t in &SESSION_SWEEP {
                        let r = session.probe(t);
                        totals.0 += r.seconds;
                        totals.1 += r.cache_hits;
                        totals.2 += r.candidates;
                    }
                    totals
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("bench session panicked"))
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64().max(1e-9);
    let probes = (sessions * SESSION_SWEEP.len()) as u64;
    let probe_secs: f64 = per_session.iter().map(|p| p.0).sum();
    let hits: u64 = per_session.iter().map(|p| p.1).sum();
    let candidates: u64 = per_session.iter().map(|p| p.2).sum();
    let rates = MultiSessionRates {
        sessions,
        probes,
        probes_per_sec: probes as f64 / wall_secs,
        mean_probe_ms: probe_secs * 1e3 / probes as f64,
        cache_hit_rate: hits as f64 / candidates.max(1) as f64,
    };
    (rates, cache.memory_stats())
}

/// Runs the 4-session sweep under a cap of a quarter of the unbounded
/// run's peak — deep enough that the eviction path genuinely churns —
/// recording what boundedness costs in hit rate. The unbounded baseline
/// (`unbounded`, `base`) is the caller's `sessions == 4` measurement, so
/// the expensive sweep is not re-run here.
fn measure_bounded_cache(
    records: &[plasma_data::vector::SparseVector],
    measure: plasma_data::similarity::Similarity,
    unbounded: MultiSessionRates,
    base: CacheMemoryStats,
) -> BoundedCacheRates {
    let cap_bytes = (base.peak_memo_bytes / 4).max(1);
    let (capped, stats) =
        sweep_shared_cache(records, measure, 4, CacheCapacity::bounded(cap_bytes));
    BoundedCacheRates {
        cap_bytes,
        peak_memo_bytes_unbounded: base.peak_memo_bytes,
        peak_memo_bytes: stats.peak_memo_bytes,
        hit_rate_unbounded: unbounded.cache_hit_rate,
        hit_rate: capped.cache_hit_rate,
        evicted_entries: stats.evicted_entries,
    }
}

impl ApssPerfSnapshot {
    /// Renders the snapshot as JSON (hand-rolled; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        fn rates(r: &KernelRates) -> String {
            format!(
                "{{\"units\": {}, \"seq_per_sec\": {:.1}, \"par_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.units,
                r.seq_per_sec,
                r.par_per_sec,
                r.speedup()
            )
        }
        let multi: Vec<String> = self
            .multi_session
            .iter()
            .map(|m| {
                format!(
                    "{{\"sessions\": {}, \"probes\": {}, \"probes_per_sec\": {:.1}, \"mean_probe_ms\": {:.3}, \"cache_hit_rate\": {:.4}}}",
                    m.sessions, m.probes, m.probes_per_sec, m.mean_probe_ms, m.cache_hit_rate
                )
            })
            .collect();
        let bounded = format!(
            "{{\"cap_bytes\": {}, \"peak_memo_bytes_unbounded\": {}, \"peak_memo_bytes\": {}, \"hit_rate_unbounded\": {:.4}, \"hit_rate\": {:.4}, \"evicted_entries\": {}}}",
            self.bounded_cache.cap_bytes,
            self.bounded_cache.peak_memo_bytes_unbounded,
            self.bounded_cache.peak_memo_bytes,
            self.bounded_cache.hit_rate_unbounded,
            self.bounded_cache.hit_rate,
            self.bounded_cache.evicted_entries
        );
        let skew = {
            let s = &self.banded_skew;
            format!(
                "{{\"records\": {}, \"hot_bucket_share\": {:.4}, \"hot_bucket_pairs\": {}, \"total_pairs\": {}, \"shards\": {}, \"largest_shard_pairs\": {}, \"candidates\": {}, \"seq_per_sec\": {:.1}, \"par_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                s.records,
                s.hot_bucket_share,
                s.hot_bucket_pairs,
                s.total_pairs,
                s.shards,
                s.largest_shard_pairs,
                s.candidates,
                s.seq_per_sec,
                s.par_per_sec,
                s.speedup()
            )
        };
        let streaming = {
            let s = &self.streaming;
            format!(
                "{{\"batches\": {}, \"batch_records\": {}, \"final_records\": {}, \"final_epoch\": {}, \"ingest_records_per_sec\": {:.1}, \"carried_hit_rate\": {:.4}, \"probe_mean_ms\": {:.3}}}",
                s.batches,
                s.batch_records,
                s.final_records,
                s.final_epoch,
                s.ingest_records_per_sec,
                s.carried_hit_rate,
                s.probe_mean_ms
            )
        };
        let ingest_scaling = {
            let s = &self.ingest_scaling;
            let join_u64 = |v: &[u64]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!(
                "{{\"batches\": {}, \"batch_records\": {}, \"initial_records\": {}, \"final_records\": {}, \"per_batch_ns\": [{}], \"first_batch_ns\": {}, \"last_batch_ns\": {}, \"ns_ratio_last_over_first\": {:.3}, \"snapshot_clone_bytes\": [{}], \"corpus_bytes\": {}, \"sealed_segments\": {}, \"segment_records\": {}}}",
                s.batches,
                s.batch_records,
                s.initial_records,
                s.final_records,
                join_u64(&s.per_batch_ns),
                s.first_batch_ns(),
                s.last_batch_ns(),
                s.ns_ratio_last_over_first(),
                join_u64(&s.snapshot_clone_bytes),
                s.corpus_bytes,
                s.sealed_segments,
                s.segment_records
            )
        };
        let watch_scaling = {
            let s = &self.watch_scaling;
            let join_u64 = |v: &[u64]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!(
                "{{\"watches\": {}, \"batches\": {}, \"batch_records\": {}, \"initial_records\": {}, \"final_records\": {}, \"per_epoch_delta_ns\": [{}], \"per_epoch_delta_pairs\": [{}], \"total_delta_pairs\": {}}}",
                s.watches,
                s.batches,
                s.batch_records,
                s.initial_records,
                s.final_records,
                join_u64(&s.per_epoch_delta_ns),
                join_u64(&s.per_epoch_delta_pairs),
                s.total_delta_pairs
            )
        };
        let serving = {
            let s = &self.serving;
            format!(
                "{{\"requests\": {}, \"requests_per_sec\": {:.1}, \"attach_mean_us\": {:.1}, \"probe_mean_us\": {:.1}, \"ingest_mean_us\": {:.1}, \"memory_stats_mean_us\": {:.1}}}",
                s.requests,
                s.requests_per_sec,
                s.attach_mean_us,
                s.probe_mean_us,
                s.ingest_mean_us,
                s.memory_stats_mean_us
            )
        };
        let recovery = {
            let r = &self.recovery;
            format!(
                "{{\"initial_records\": {}, \"batches\": {}, \"batch_records\": {}, \"final_records\": {}, \"snapshot_bytes\": {}, \"wal_replay_records\": {}, \"wal_replay_records_per_sec\": {:.1}, \"cold_start_ms\": {:.3}, \"warm_restart_ms\": {:.3}, \"warm_cold_ratio\": {:.4}}}",
                r.initial_records,
                r.batches,
                r.batch_records,
                r.final_records,
                r.snapshot_bytes,
                r.wal_replay_records,
                r.wal_replay_records_per_sec,
                r.cold_start_ms,
                r.warm_restart_ms,
                r.warm_cold_ratio()
            )
        };
        format!(
            "{{\n  \"benchmark\": \"apss\",\n  \"cores\": {},\n  \"sketching\": {{\n    \"n_hashes\": 256,\n    \"minhash\": {},\n    \"simhash\": {}\n  }},\n  \"pair_evaluation\": {},\n  \"multi_session\": [\n    {}\n  ],\n  \"bounded_cache\": {},\n  \"banded_skew\": {},\n  \"streaming\": {},\n  \"ingest_scaling\": {},\n  \"watch_scaling\": {},\n  \"serving\": {},\n  \"recovery\": {}\n}}\n",
            self.cores,
            rates(&self.sketch_minhash),
            rates(&self.sketch_simhash),
            rates(&self.pair_evaluation),
            multi.join(",\n    "),
            bounded,
            skew,
            streaming,
            ingest_scaling,
            watch_scaling,
            serving,
            recovery
        )
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("APSS perf snapshot ({} cores)\n", self.cores));
        for (name, r) in [
            ("sketch/minhash256", &self.sketch_minhash),
            ("sketch/simhash256", &self.sketch_simhash),
            ("pairs/exhaustive", &self.pair_evaluation),
        ] {
            out.push_str(&format!(
                "  {name:<20} seq {:>12.0}/s   par {:>12.0}/s   speedup {:>5.2}x\n",
                r.seq_per_sec,
                r.par_per_sec,
                r.speedup()
            ));
        }
        for m in &self.multi_session {
            out.push_str(&format!(
                "  shared-cache x{:<10} {:>6.1} probes/s   mean {:>8.2} ms   hit-rate {:>5.1}%\n",
                m.sessions,
                m.probes_per_sec,
                m.mean_probe_ms,
                m.cache_hit_rate * 100.0
            ));
        }
        let b = &self.bounded_cache;
        out.push_str(&format!(
            "  bounded-cache (cap {:>8}B) peak {:>8}B (unbounded {:>8}B)   hit-rate {:>5.1}% (unbounded {:>5.1}%)   evicted {}\n",
            b.cap_bytes,
            b.peak_memo_bytes,
            b.peak_memo_bytes_unbounded,
            b.hit_rate * 100.0,
            b.hit_rate_unbounded * 100.0,
            b.evicted_entries
        ));
        let s = &self.banded_skew;
        out.push_str(&format!(
            "  banded-skew (hot bucket {:>4.1}%) {:>6} shards (largest {:>8} pairs)   seq {:>11.0}/s   par {:>11.0}/s   speedup {:>5.2}x\n",
            s.hot_bucket_share * 100.0,
            s.shards,
            s.largest_shard_pairs,
            s.seq_per_sec,
            s.par_per_sec,
            s.speedup()
        ));
        let st = &self.streaming;
        out.push_str(&format!(
            "  streaming ({} x {} records → epoch {}) ingest {:>9.0} rec/s   probe {:>8.2} ms   carried hit-rate {:>5.1}%\n",
            st.batches,
            st.batch_records,
            st.final_epoch,
            st.ingest_records_per_sec,
            st.probe_mean_ms,
            st.carried_hit_rate * 100.0
        ));
        let ig = &self.ingest_scaling;
        out.push_str(&format!(
            "  ingest-scaling ({} x {} records on {}) first {:>9} ns   last {:>9} ns   ratio {:>5.2}x   clone {:>8} B of {:>9} B corpus ({} segments x {})\n",
            ig.batches,
            ig.batch_records,
            ig.initial_records,
            ig.first_batch_ns(),
            ig.last_batch_ns(),
            ig.ns_ratio_last_over_first(),
            ig.snapshot_clone_bytes.last().copied().unwrap_or(0),
            ig.corpus_bytes,
            ig.sealed_segments,
            ig.segment_records
        ));
        let w = &self.watch_scaling;
        out.push_str(&format!(
            "  watch-scaling ({} watches, {} x {} records on {}) first {:>9} ns   last {:>9} ns   delta pairs {:>8} total\n",
            w.watches,
            w.batches,
            w.batch_records,
            w.initial_records,
            w.per_epoch_delta_ns.first().copied().unwrap_or(0),
            w.per_epoch_delta_ns.last().copied().unwrap_or(0),
            w.total_delta_pairs
        ));
        let sv = &self.serving;
        out.push_str(&format!(
            "  serving ({} requests over TCP) {:>8.0} req/s   attach {:>8.1} us   probe {:>8.1} us   ingest {:>8.1} us   stats {:>8.1} us\n",
            sv.requests,
            sv.requests_per_sec,
            sv.attach_mean_us,
            sv.probe_mean_us,
            sv.ingest_mean_us,
            sv.memory_stats_mean_us
        ));
        let rc = &self.recovery;
        out.push_str(&format!(
            "  recovery ({} records: {} B snapshot + {} x {} WAL records) warm {:>8.2} ms   cold {:>8.2} ms   ratio {:>5.2}x   replay {:>9.0} rec/s\n",
            rc.final_records,
            rc.snapshot_bytes,
            rc.batches,
            rc.batch_records,
            rc.warm_restart_ms,
            rc.cold_start_ms,
            rc.warm_cold_ratio(),
            rc.wal_replay_records_per_sec
        ));
        out
    }
}

/// Required keys of the `BENCH_apss.json` schema, including the
/// bounded-cache memory fields, the banded-skew sharding fields, the
/// streaming-ingest fields, the ingest-scaling fields, the
/// watch-scaling continuous-probe fields, the serving round-trip
/// fields, the recovery warm-restart fields, and the open-loop
/// `loadgen` harness fields (per-scenario counters, latency
/// percentiles, and the offered-vs-achieved saturation curve).
/// `repro check-bench` (the CI perf-smoke gate) fails when any goes
/// missing, so snapshot consumers can rely on them across commits.
const REQUIRED_SNAPSHOT_KEYS: [&str; 103] = [
    "benchmark",
    "cores",
    "sketching",
    "n_hashes",
    "minhash",
    "simhash",
    "pair_evaluation",
    "units",
    "seq_per_sec",
    "par_per_sec",
    "speedup",
    "multi_session",
    "sessions",
    "probes",
    "probes_per_sec",
    "mean_probe_ms",
    "cache_hit_rate",
    "bounded_cache",
    "cap_bytes",
    "peak_memo_bytes_unbounded",
    "peak_memo_bytes",
    "hit_rate_unbounded",
    "hit_rate",
    "evicted_entries",
    "banded_skew",
    "records",
    "hot_bucket_share",
    "hot_bucket_pairs",
    "total_pairs",
    "shards",
    "largest_shard_pairs",
    "candidates",
    "streaming",
    "batches",
    "batch_records",
    "final_records",
    "final_epoch",
    "ingest_records_per_sec",
    "carried_hit_rate",
    "probe_mean_ms",
    "ingest_scaling",
    "initial_records",
    "per_batch_ns",
    "first_batch_ns",
    "last_batch_ns",
    "ns_ratio_last_over_first",
    "snapshot_clone_bytes",
    "corpus_bytes",
    "sealed_segments",
    "segment_records",
    "watch_scaling",
    "watches",
    "per_epoch_delta_ns",
    "per_epoch_delta_pairs",
    "total_delta_pairs",
    "serving",
    "requests",
    "requests_per_sec",
    "attach_mean_us",
    "probe_mean_us",
    "ingest_mean_us",
    "memory_stats_mean_us",
    "recovery",
    "snapshot_bytes",
    "wal_replay_records",
    "wal_replay_records_per_sec",
    "cold_start_ms",
    "warm_restart_ms",
    "warm_cold_ratio",
    "loadgen",
    "seed",
    "smoke",
    "transport",
    "scenarios",
    "scenario",
    "watchers",
    "tenants",
    "planned_requests",
    "completed_requests",
    "error_requests",
    "verbs",
    "watch_deltas",
    "watch_deltas_expected",
    "wal_acked_appends",
    "wal_syncs",
    "registry_evictions",
    "registry_evictions_expected",
    "ingest_wakeups",
    "steps",
    "offered_per_sec",
    "achieved_per_sec",
    "saturation",
    "planned",
    "completed",
    "errors",
    "clients_started",
    "clients_spawned",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "max_ms",
    "mean_ms",
    "samples",
];

/// Validates a `BENCH_apss.json` document against the snapshot schema:
/// every required key present (quoted, colon-terminated), the benchmark
/// id correct, and braces/brackets structurally balanced. Returns every
/// violation found, so a CI failure names all missing fields at once.
pub fn validate_snapshot_json(json: &str) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    if !json.contains("\"benchmark\": \"apss\"") {
        problems.push("missing or wrong benchmark id (want \"benchmark\": \"apss\")".to_string());
    }
    for key in REQUIRED_SNAPSHOT_KEYS {
        if !json.contains(&format!("\"{key}\":")) {
            problems.push(format!("missing required key \"{key}\""));
        }
    }
    for (open, close, name) in [('{', '}', "braces"), ('[', ']', "brackets")] {
        let opens = json.matches(open).count();
        let closes = json.matches(close).count();
        if opens != closes {
            problems.push(format!(
                "unbalanced {name}: {opens} {open} vs {closes} {close}"
            ));
        }
    }
    if !json.trim_start().starts_with('{') {
        problems.push("document does not start with an object".to_string());
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Walks a dotted path with optional indices (`multi_session[1].probes`).
fn lookup<'a>(root: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = root;
    for part in path.split('.') {
        let (name, index) = match part.find('[') {
            Some(open) => (
                &part[..open],
                Some(part[open + 1..part.len() - 1].parse::<usize>().ok()?),
            ),
            None => (part, None),
        };
        cur = cur.get(name)?;
        if let Some(i) = index {
            cur = cur.as_arr()?.get(i)?;
        }
    }
    Some(cur)
}

fn num_at(doc: &Json, which: &str, path: &str, problems: &mut Vec<String>) -> Option<f64> {
    match lookup(doc, path).and_then(Json::as_f64) {
        Some(v) => Some(v),
        None => {
            problems.push(format!("{which} snapshot lacks numeric field {path}"));
            None
        }
    }
}

fn check_exact(fresh: &Json, committed: &Json, path: &str, problems: &mut Vec<String>) {
    let a = num_at(fresh, "fresh", path, problems);
    let b = num_at(committed, "committed", path, problems);
    if let (Some(a), Some(b)) = (a, b) {
        if (a - b).abs() > 1e-9 {
            problems.push(format!(
                "{path}: fresh {a} != committed {b} (deterministic counter drifted)"
            ));
        }
    }
}

fn check_abs_tol(fresh: &Json, committed: &Json, path: &str, tol: f64, problems: &mut Vec<String>) {
    let a = num_at(fresh, "fresh", path, problems);
    let b = num_at(committed, "committed", path, problems);
    if let (Some(a), Some(b)) = (a, b) {
        if (a - b).abs() > tol {
            problems.push(format!(
                "{path}: fresh {a} outside tolerance band ±{tol} around committed {b}"
            ));
        }
    }
}

/// Deterministic counters compared exactly against the committed
/// baseline. Everything here is a pure function of the benchmark's
/// seeded inputs — pair totals, record counts, epochs — never a rate.
const EXACT_GATES: &[&str] = &[
    "banded_skew.records",
    "banded_skew.total_pairs",
    "banded_skew.hot_bucket_pairs",
    "banded_skew.candidates",
    "banded_skew.shards",
    "banded_skew.largest_shard_pairs",
    "streaming.batches",
    "streaming.batch_records",
    "streaming.final_records",
    "streaming.final_epoch",
    "ingest_scaling.batches",
    "ingest_scaling.batch_records",
    "ingest_scaling.initial_records",
    "ingest_scaling.final_records",
    "ingest_scaling.corpus_bytes",
    "watch_scaling.watches",
    "watch_scaling.batches",
    "watch_scaling.final_records",
    "watch_scaling.total_delta_pairs",
    "recovery.initial_records",
    "recovery.batches",
    "recovery.final_records",
    "recovery.wal_replay_records",
];

/// Ratio gates with absolute tolerance bands: structural ratios that
/// are stable run to run but not bit-exact across parallelism modes.
const RATIO_GATES: &[(&str, f64)] = &[
    ("streaming.carried_hit_rate", 0.05),
    ("multi_session[0].cache_hit_rate", 0.05),
];

/// Per-scenario loadgen counters compared exactly (all plan-derived,
/// so deterministic from the seed).
const LOADGEN_SCENARIO_EXACT: &[&str] = &[
    "planned_requests",
    "completed_requests",
    "error_requests",
    "watch_deltas_expected",
    "registry_evictions_expected",
    "wal_acked_appends",
];

/// Compares a fresh `BENCH_apss.json` against the committed baseline —
/// the CI regression gate behind `repro check-bench --against`.
///
/// The gate never compares absolute throughput (machines differ); it
/// compares what determinism promises: exact counters that derive from
/// seeded inputs, ratio invariants within tolerance bands, and
/// intra-snapshot invariants of the fresh run (completed == planned,
/// watch deltas matching their plan-derived expectation, group-commit
/// syncs never exceeding acked appends, ordered latency percentiles).
/// Geometry-dependent counters (`sealed_segments`) are gated only when
/// both snapshots were measured under the same segment geometry, since
/// CI sweeps `PLASMA_SEGMENT_RECORDS` across matrix cells.
pub fn compare_snapshots(fresh_json: &str, committed_json: &str) -> Result<(), Vec<String>> {
    let fresh = match json::parse(fresh_json) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("fresh snapshot does not parse: {e}")]),
    };
    let committed = match json::parse(committed_json) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("committed snapshot does not parse: {e}")]),
    };
    let mut problems = Vec::new();

    for path in EXACT_GATES {
        check_exact(&fresh, &committed, path, &mut problems);
    }
    for (path, tol) in RATIO_GATES {
        check_abs_tol(&fresh, &committed, path, *tol, &mut problems);
    }

    // Segment geometry is a CI matrix axis; sealing counts only compare
    // within one geometry.
    let seg = |doc: &Json| lookup(doc, "ingest_scaling.segment_records").and_then(Json::as_u64);
    if seg(&fresh).is_some() && seg(&fresh) == seg(&committed) {
        check_exact(
            &fresh,
            &committed,
            "ingest_scaling.sealed_segments",
            &mut problems,
        );
    }

    // The session ladder itself (probe counts per rung) is fixed.
    let rungs = |doc: &Json| {
        lookup(doc, "multi_session")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len)
    };
    let fresh_rungs = rungs(&fresh);
    if fresh_rungs != rungs(&committed) {
        problems.push(format!(
            "multi_session ladder length drifted: fresh {fresh_rungs} vs committed {}",
            rungs(&committed)
        ));
    } else {
        for i in 0..fresh_rungs {
            check_exact(
                &fresh,
                &committed,
                &format!("multi_session[{i}].probes"),
                &mut problems,
            );
            check_exact(
                &fresh,
                &committed,
                &format!("multi_session[{i}].sessions"),
                &mut problems,
            );
        }
    }

    compare_loadgen(&fresh, &committed, &mut problems);

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn str_at<'a>(doc: &'a Json, path: &str) -> Option<&'a str> {
    lookup(doc, path).and_then(Json::as_str)
}

fn compare_loadgen(fresh: &Json, committed: &Json, problems: &mut Vec<String>) {
    // Plan-derived loadgen counters only compare when both runs derive
    // from the same plan: same seed, sizing, and transport.
    for path in ["loadgen.seed", "loadgen.smoke"] {
        let a = lookup(fresh, path).map(Json::encode);
        let b = lookup(committed, path).map(Json::encode);
        if a.is_none() || a != b {
            problems.push(format!(
                "loadgen baselines not comparable: {path} fresh {a:?} vs committed {b:?}"
            ));
            return;
        }
    }
    if str_at(fresh, "loadgen.transport") != str_at(committed, "loadgen.transport") {
        problems.push("loadgen baselines not comparable: transport differs".to_string());
        return;
    }

    let arr = |doc: &Json, which: &str, problems: &mut Vec<String>| -> usize {
        match lookup(doc, "loadgen.scenarios").and_then(Json::as_arr) {
            Some(scenarios) => scenarios.len(),
            None => {
                problems.push(format!("{which} snapshot lacks loadgen.scenarios"));
                0
            }
        }
    };
    let n = arr(fresh, "fresh", problems);
    if n != arr(committed, "committed", problems) || n == 0 {
        problems.push("loadgen scenario lists differ in length".to_string());
        return;
    }

    for i in 0..n {
        let prefix = format!("loadgen.scenarios[{i}]");
        let name = str_at(fresh, &format!("{prefix}.scenario"));
        if name != str_at(committed, &format!("{prefix}.scenario")) {
            problems.push(format!("{prefix}.scenario name drifted"));
            continue;
        }
        for field in LOADGEN_SCENARIO_EXACT {
            check_exact(fresh, committed, &format!("{prefix}.{field}"), problems);
        }
        // Verb mixes render sorted from a BTreeMap, so deterministic
        // plans give byte-equal objects.
        let verbs = |doc: &Json| lookup(doc, &format!("{prefix}.verbs")).map(Json::encode);
        if verbs(fresh) != verbs(committed) {
            problems.push(format!(
                "{prefix}.verbs mix drifted: fresh {:?} vs committed {:?}",
                verbs(fresh),
                verbs(committed)
            ));
        }

        // Intra-snapshot invariants of the fresh run.
        let fresh_num =
            |path: &str, problems: &mut Vec<String>| num_at(fresh, "fresh", path, problems);
        let pairs = [
            ("completed_requests", "planned_requests"),
            ("watch_deltas", "watch_deltas_expected"),
            ("registry_evictions", "registry_evictions_expected"),
        ];
        for (got, want) in pairs {
            let a = fresh_num(&format!("{prefix}.{got}"), problems);
            let b = fresh_num(&format!("{prefix}.{want}"), problems);
            if let (Some(a), Some(b)) = (a, b) {
                if (a - b).abs() > 1e-9 {
                    problems.push(format!(
                        "{prefix}: {got} ({a}) != {want} ({b}) — open-loop invariant broken"
                    ));
                }
            }
        }
        let acked = fresh_num(&format!("{prefix}.wal_acked_appends"), problems);
        let syncs = fresh_num(&format!("{prefix}.wal_syncs"), problems);
        if let (Some(acked), Some(syncs)) = (acked, syncs) {
            if syncs > acked {
                problems.push(format!(
                    "{prefix}: wal_syncs ({syncs}) exceeds wal_acked_appends ({acked})"
                ));
            }
            if acked > 0.0 && syncs < 1.0 {
                problems.push(format!(
                    "{prefix}: appends were acked without a single sync"
                ));
            }
        }
        if let Some(steps) = lookup(fresh, &format!("{prefix}.steps")).and_then(Json::as_arr) {
            for (si, _) in steps.iter().enumerate() {
                let sp = format!("{prefix}.steps[{si}]");
                let p50 = fresh_num(&format!("{sp}.p50_ms"), problems);
                let p99 = fresh_num(&format!("{sp}.p99_ms"), problems);
                let p999 = fresh_num(&format!("{sp}.p999_ms"), problems);
                let max = fresh_num(&format!("{sp}.max_ms"), problems);
                if let (Some(p50), Some(p99), Some(p999), Some(max)) = (p50, p99, p999, max) {
                    if !(p50 <= p99 && p99 <= p999 && p999 <= max + 1e-9) {
                        problems.push(format!(
                            "{sp}: percentiles out of order (p50 {p50}, p99 {p99}, p999 {p999}, max {max})"
                        ));
                    }
                }
                let planned = fresh_num(&format!("{sp}.planned"), problems);
                let samples = fresh_num(&format!("{sp}.samples"), problems);
                if let (Some(planned), Some(samples)) = (planned, samples) {
                    if (planned - samples).abs() > 1e-9 {
                        problems.push(format!(
                            "{sp}: {samples} latency samples for {planned} planned requests — open-loop runs sample every request"
                        ));
                    }
                }
            }
        } else {
            problems.push(format!("{prefix}.steps missing"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fully populated snapshot with internally consistent values,
    /// shared by the schema and regression-gate tests.
    fn test_snapshot() -> ApssPerfSnapshot {
        ApssPerfSnapshot {
            cores: 4,
            sketch_minhash: KernelRates {
                units: 200,
                seq_per_sec: 1000.0,
                par_per_sec: 3500.0,
            },
            sketch_simhash: KernelRates {
                units: 200,
                seq_per_sec: 800.0,
                par_per_sec: 3000.0,
            },
            pair_evaluation: KernelRates {
                units: 19900,
                seq_per_sec: 100_000.0,
                par_per_sec: 420_000.0,
            },
            multi_session: vec![
                MultiSessionRates {
                    sessions: 1,
                    probes: 5,
                    probes_per_sec: 20.0,
                    mean_probe_ms: 50.0,
                    cache_hit_rate: 0.42,
                },
                MultiSessionRates {
                    sessions: 4,
                    probes: 20,
                    probes_per_sec: 55.0,
                    mean_probe_ms: 60.0,
                    cache_hit_rate: 0.81,
                },
            ],
            bounded_cache: BoundedCacheRates {
                cap_bytes: 65536,
                peak_memo_bytes_unbounded: 262144,
                peak_memo_bytes: 65536,
                hit_rate_unbounded: 0.81,
                hit_rate: 0.55,
                evicted_entries: 1234,
            },
            banded_skew: BandedSkewRates {
                records: 1000,
                hot_bucket_share: 0.61,
                hot_bucket_pairs: 185_745,
                total_pairs: 1_600_000,
                shards: 60,
                largest_shard_pairs: 32_768,
                candidates: 250_000,
                seq_per_sec: 2_000_000.0,
                par_per_sec: 6_000_000.0,
            },
            streaming: StreamingRates {
                batches: 3,
                batch_records: 40,
                final_records: 220,
                final_epoch: 3,
                ingest_records_per_sec: 15_000.0,
                carried_hit_rate: 0.73,
                probe_mean_ms: 12.5,
            },
            ingest_scaling: IngestScalingRates {
                batches: 3,
                batch_records: 200,
                initial_records: 200,
                final_records: 800,
                per_batch_ns: vec![50_000, 52_000, 51_000],
                snapshot_clone_bytes: vec![4096, 4112, 4128],
                corpus_bytes: 1_638_400,
                sealed_segments: 1,
                segment_records: 512,
            },
            watch_scaling: WatchScalingRates {
                watches: 8,
                batches: 3,
                batch_records: 200,
                initial_records: 200,
                final_records: 800,
                per_epoch_delta_ns: vec![70_000, 72_000, 71_000],
                per_epoch_delta_pairs: vec![300, 410, 520],
                total_delta_pairs: 1230,
            },
            serving: ServingRates {
                requests: 64,
                requests_per_sec: 2400.0,
                attach_mean_us: 180.5,
                probe_mean_us: 95.25,
                ingest_mean_us: 1200.0,
                memory_stats_mean_us: 60.0,
            },
            recovery: RecoveryRates {
                initial_records: 160,
                batches: 3,
                batch_records: 40,
                final_records: 280,
                snapshot_bytes: 180_224,
                wal_replay_records: 120,
                wal_replay_records_per_sec: 24_000.0,
                cold_start_ms: 8.0,
                warm_restart_ms: 2.0,
            },
        }
    }

    /// The full document CI writes: the snapshot with the loadgen
    /// member spliced in.
    fn test_document() -> String {
        crate::loadgen::splice_into_snapshot(
            &test_snapshot().to_json(),
            &crate::loadgen::fixture_report().to_json(),
        )
    }

    #[test]
    fn json_shape_is_parseable_by_eye_and_machine() {
        let snap = test_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"benchmark\": \"apss\""));
        assert!(json.contains("\"cores\": 4"));
        assert!(json.contains("\"speedup\": 3.500"));
        assert!(json.contains("\"multi_session\": ["));
        assert!(json.contains("\"cache_hit_rate\": 0.8100"));
        assert!(json.contains("\"mean_probe_ms\": 50.000"));
        assert!(json.contains("\"bounded_cache\": {"));
        assert!(json.contains("\"cap_bytes\": 65536"));
        assert!(json.contains("\"peak_memo_bytes_unbounded\": 262144"));
        assert!(json.contains("\"evicted_entries\": 1234"));
        assert!(json.contains("\"banded_skew\": {"));
        assert!(json.contains("\"hot_bucket_share\": 0.6100"));
        assert!(json.contains("\"shards\": 60"));
        assert!(json.contains("\"largest_shard_pairs\": 32768"));
        assert!(json.contains("\"streaming\": {"));
        assert!(json.contains("\"final_epoch\": 3"));
        assert!(json.contains("\"carried_hit_rate\": 0.7300"));
        assert!(json.contains("\"ingest_records_per_sec\": 15000.0"));
        assert!(json.contains("\"ingest_scaling\": {"));
        assert!(json.contains("\"per_batch_ns\": [50000, 52000, 51000]"));
        assert!(json.contains("\"snapshot_clone_bytes\": [4096, 4112, 4128]"));
        assert!(json.contains("\"first_batch_ns\": 50000"));
        assert!(json.contains("\"last_batch_ns\": 51000"));
        assert!(json.contains("\"ns_ratio_last_over_first\": 1.020"));
        assert!(json.contains("\"sealed_segments\": 1"));
        assert!(json.contains("\"segment_records\": 512"));
        assert!(json.contains("\"watch_scaling\": {"));
        assert!(json.contains("\"watches\": 8"));
        assert!(json.contains("\"per_epoch_delta_ns\": [70000, 72000, 71000]"));
        assert!(json.contains("\"per_epoch_delta_pairs\": [300, 410, 520]"));
        assert!(json.contains("\"total_delta_pairs\": 1230"));
        assert!(json.contains("\"serving\": {"));
        assert!(json.contains("\"requests\": 64"));
        assert!(json.contains("\"requests_per_sec\": 2400.0"));
        assert!(json.contains("\"attach_mean_us\": 180.5"));
        assert!(json.contains("\"probe_mean_us\": 95.2"));
        assert!(json.contains("\"ingest_mean_us\": 1200.0"));
        assert!(json.contains("\"memory_stats_mean_us\": 60.0"));
        assert!(json.contains("\"recovery\": {"));
        assert!(json.contains("\"snapshot_bytes\": 180224"));
        assert!(json.contains("\"wal_replay_records\": 120"));
        assert!(json.contains("\"wal_replay_records_per_sec\": 24000.0"));
        assert!(json.contains("\"cold_start_ms\": 8.000"));
        assert!(json.contains("\"warm_restart_ms\": 2.000"));
        assert!(json.contains("\"warm_cold_ratio\": 0.2500"));
        assert!((snap.recovery.warm_cold_ratio() - 0.25).abs() < 1e-9);
        assert!((snap.banded_skew.speedup() - 3.0).abs() < 1e-9);
        // Balanced braces — cheap structural sanity.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert!((snap.pair_evaluation.speedup() - 4.2).abs() < 1e-9);
        // With the loadgen member spliced in, the document is exactly
        // what the CI schema gate wants.
        let doc = test_document();
        assert!(doc.contains("\"loadgen\": {"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        validate_snapshot_json(&doc).expect("rendered snapshot validates");
    }

    #[test]
    fn compare_accepts_a_faithful_rerun_of_the_baseline() {
        let doc = test_document();
        compare_snapshots(&doc, &doc).expect("a snapshot is never a regression of itself");
    }

    #[test]
    fn compare_flags_a_deliberate_counter_regression() {
        // The negative test the gate's wiring is judged by: perturb one
        // deterministic counter and the comparison must fail non-zero.
        let doc = test_document();
        let tampered = doc.replace("\"total_pairs\": 1600000", "\"total_pairs\": 1599998");
        assert_ne!(tampered, doc, "perturbation must hit the document");
        let problems = compare_snapshots(&tampered, &doc).expect_err("drift must be flagged");
        assert!(
            problems.iter().any(|p| p.contains("total_pairs")),
            "{problems:?}"
        );

        // Loadgen plan-derived counters are gated the same way.
        let tampered = doc.replace("\"wal_acked_appends\": 19", "\"wal_acked_appends\": 18");
        let problems = compare_snapshots(&tampered, &doc).expect_err("loadgen drift flagged");
        assert!(
            problems.iter().any(|p| p.contains("wal_acked_appends")),
            "{problems:?}"
        );
    }

    #[test]
    fn compare_tolerates_ratio_jitter_inside_the_band_only() {
        let doc = test_document();
        let nudged = doc.replace(
            "\"carried_hit_rate\": 0.7300",
            "\"carried_hit_rate\": 0.7150",
        );
        assert_ne!(nudged, doc);
        compare_snapshots(&nudged, &doc).expect("±0.015 sits inside the ±0.05 band");
        let broken = doc.replace(
            "\"carried_hit_rate\": 0.7300",
            "\"carried_hit_rate\": 0.5000",
        );
        let problems = compare_snapshots(&broken, &doc).expect_err("a hit-rate collapse is real");
        assert!(
            problems.iter().any(|p| p.contains("carried_hit_rate")),
            "{problems:?}"
        );
    }

    #[test]
    fn compare_enforces_intra_snapshot_invariants_of_the_fresh_run() {
        let doc = test_document();
        // A fresh run whose watch deltas miss their plan-derived
        // expectation is broken even if the committed baseline agrees.
        let short = doc.replace("\"watch_deltas\": 42,", "\"watch_deltas\": 40,");
        let problems = compare_snapshots(&short, &short).expect_err("lost deltas must be flagged");
        assert!(
            problems.iter().any(|p| p.contains("watch_deltas")),
            "{problems:?}"
        );
        // Group commit can never sync more often than it acks.
        let oversync = doc.replace("\"wal_syncs\": 11,", "\"wal_syncs\": 25,");
        let problems = compare_snapshots(&oversync, &oversync).expect_err("syncs > acks");
        assert!(
            problems.iter().any(|p| p.contains("wal_syncs")),
            "{problems:?}"
        );
    }

    #[test]
    fn compare_refuses_baselines_from_a_different_plan() {
        let doc = test_document();
        let reseeded = doc.replace("\"seed\": 42,", "\"seed\": 43,");
        let problems =
            compare_snapshots(&reseeded, &doc).expect_err("different seeds are not comparable");
        assert!(
            problems.iter().any(|p| p.contains("not comparable")),
            "{problems:?}"
        );
    }

    #[test]
    fn compare_ignores_segment_geometry_drift_across_matrix_cells() {
        let doc = test_document();
        // A different PLASMA_SEGMENT_RECORDS cell: sealing counts differ
        // legitimately, so the gate must stay quiet about them.
        let other_geometry = doc
            .replace("\"segment_records\": 512", "\"segment_records\": 8")
            .replace("\"sealed_segments\": 1", "\"sealed_segments\": 100");
        compare_snapshots(&other_geometry, &doc)
            .expect("cross-geometry sealing counts are not comparable, not regressions");
    }

    #[test]
    fn validator_names_every_violation() {
        assert!(validate_snapshot_json("").is_err());
        let problems =
            validate_snapshot_json("{\"benchmark\": \"apss\"}").expect_err("keys missing");
        assert!(problems.len() >= REQUIRED_SNAPSHOT_KEYS.len() - 1);
        assert!(problems.iter().any(|p| p.contains("bounded_cache")));
        assert!(problems.iter().any(|p| p.contains("peak_memo_bytes")));
        assert!(problems.iter().any(|p| p.contains("banded_skew")));
        assert!(problems.iter().any(|p| p.contains("largest_shard_pairs")));
        assert!(problems.iter().any(|p| p.contains("streaming")));
        assert!(problems.iter().any(|p| p.contains("carried_hit_rate")));
        assert!(problems
            .iter()
            .any(|p| p.contains("ingest_records_per_sec")));
        assert!(problems.iter().any(|p| p.contains("ingest_scaling")));
        assert!(problems.iter().any(|p| p.contains("per_batch_ns")));
        assert!(problems
            .iter()
            .any(|p| p.contains("ns_ratio_last_over_first")));
        assert!(problems.iter().any(|p| p.contains("sealed_segments")));
        assert!(problems.iter().any(|p| p.contains("watch_scaling")));
        assert!(problems.iter().any(|p| p.contains("per_epoch_delta_ns")));
        assert!(problems.iter().any(|p| p.contains("total_delta_pairs")));
        assert!(problems.iter().any(|p| p.contains("\"serving\"")));
        assert!(problems.iter().any(|p| p.contains("requests_per_sec")));
        assert!(problems.iter().any(|p| p.contains("attach_mean_us")));
        assert!(problems.iter().any(|p| p.contains("probe_mean_us")));
        assert!(problems.iter().any(|p| p.contains("ingest_mean_us")));
        assert!(problems.iter().any(|p| p.contains("memory_stats_mean_us")));
        assert!(problems.iter().any(|p| p.contains("\"recovery\"")));
        assert!(problems.iter().any(|p| p.contains("snapshot_bytes")));
        assert!(problems
            .iter()
            .any(|p| p.contains("wal_replay_records_per_sec")));
        assert!(problems.iter().any(|p| p.contains("warm_cold_ratio")));
        // Unbalanced structure is flagged even with all keys present.
        let mut json = String::from("{");
        for key in REQUIRED_SNAPSHOT_KEYS {
            json.push_str(&format!("\"{key}\": 0, "));
        }
        json.push_str("\"benchmark\": \"apss\"");
        // No closing brace.
        let problems = validate_snapshot_json(&json).expect_err("unbalanced");
        assert!(problems.iter().any(|p| p.contains("unbalanced braces")));
    }

    #[test]
    fn bounded_measurement_respects_its_own_cap() {
        let ds = GaussianSpec::new("bench-bounded", 40, 6, 2).generate(5);
        let (base_rates, base_stats) =
            sweep_shared_cache(&ds.records, ds.measure, 4, CacheCapacity::unbounded());
        let b = measure_bounded_cache(&ds.records, ds.measure, base_rates, base_stats);
        assert!(b.cap_bytes > 0);
        assert!(
            b.peak_memo_bytes_unbounded >= b.cap_bytes,
            "cap is derived as a fraction of the unbounded peak"
        );
        assert!(b.evicted_entries > 0, "a quarter-peak cap must evict");
        // The capped peak may transiently exceed the cap by at most one
        // publication (accounting precedes the eviction pass), never by a
        // whole probe's worth.
        let (_, resident) = sweep_shared_cache(
            &ds.records,
            ds.measure,
            2,
            CacheCapacity::bounded(b.cap_bytes),
        );
        assert!(resident.memo_bytes <= b.cap_bytes);
        assert!((0.0..=1.0).contains(&b.hit_rate));
        assert!((0.0..=1.0).contains(&b.hit_rate_unbounded));
    }

    #[test]
    fn skew_measurement_fans_the_hot_bucket_across_shards() {
        // The acceptance shape in miniature: a corpus whose hottest
        // bucket holds the majority of records must still fan out —
        // many shards, none above the policy's pair budget, so no single
        // worker is handed the whole hot bucket.
        let rates = measure_banded_skew_sized(4, 500, 5);
        assert!(
            rates.hot_bucket_share > 0.5,
            "the scenario must be genuinely skewed: {}",
            rates.hot_bucket_share
        );
        assert!(
            rates.hot_bucket_pairs > ShardPolicy::default().max_pairs_per_shard as u64,
            "hot bucket must exceed one shard's budget"
        );
        assert!(rates.shards > 1, "hot bucket must split: {rates:?}");
        assert!(
            rates.largest_shard_pairs <= ShardPolicy::default().max_pairs_per_shard as u64,
            "no shard may serialize the hot bucket: {rates:?}"
        );
        assert!(rates.candidates > 0 && rates.total_pairs >= rates.candidates);
        assert!(rates.seq_per_sec > 0.0 && rates.par_per_sec > 0.0);
    }

    #[test]
    fn streaming_measurement_carries_memos_across_epochs() {
        // Small sizes so the smoke measurement stays fast in tests: every
        // ingested batch bumps the epoch exactly once, the re-probed
        // threshold rides carried memos (hit rate strictly positive), and
        // ingest throughput is a real rate.
        let rates = measure_streaming_sized(30, 10, 2);
        assert_eq!(rates.batches, 2);
        assert_eq!(rates.final_records, 50);
        assert_eq!(rates.final_epoch, 2, "one epoch per ingested batch");
        assert!(
            rates.carried_hit_rate > 0.0,
            "carried memos must answer old pairs: {rates:?}"
        );
        assert!(rates.carried_hit_rate <= 1.0);
        assert!(rates.ingest_records_per_sec > 0.0);
        assert!(rates.probe_mean_ms > 0.0);
    }

    #[test]
    fn ingest_scaling_measurement_reports_segment_economy() {
        // Small sizes so the smoke measurement stays fast in tests. The
        // structural facts are asserted; the headline timing ratio is
        // recorded, not asserted, because smoke timings are noisy.
        let rates = measure_ingest_scaling_sized(40, 20, 4);
        assert_eq!(rates.batches, 4);
        assert_eq!(rates.batch_records, 20);
        assert_eq!(rates.initial_records, 40);
        assert_eq!(rates.final_records, 120);
        assert_eq!(rates.per_batch_ns.len(), 4);
        assert!(rates.per_batch_ns.iter().all(|&ns| ns > 0));
        assert_eq!(rates.snapshot_clone_bytes.len(), 4);
        assert!(rates.first_batch_ns() > 0 && rates.last_batch_ns() > 0);
        assert!(rates.ns_ratio_last_over_first() > 0.0);
        // Segment geometry comes from the environment-resolved default,
        // and sealing is eager: full segments only.
        let seg = plasma_lsh::resolve_segment_records(None) as u64;
        assert_eq!(rates.segment_records, seg);
        assert_eq!(rates.sealed_segments, rates.final_records / seg);
        // Every epoch's snapshot clone copies at most one segment's worth
        // of tail words plus the sealed-segment pointer list — never the
        // whole corpus.
        let stride_bytes = rates.corpus_bytes / rates.final_records;
        let arc_bytes = std::mem::size_of::<std::sync::Arc<[u64]>>() as u64;
        let bound = seg * stride_bytes + (rates.final_records / seg.max(1) + 1) * arc_bytes;
        for &bytes in &rates.snapshot_clone_bytes {
            assert!(
                bytes <= bound,
                "snapshot clone must be O(tail + segments): {bytes} > {bound}"
            );
        }
    }

    #[test]
    fn watch_scaling_measurement_counts_only_delta_pairs() {
        // Small sizes so the smoke measurement stays fast in tests. The
        // structural facts are asserted; timings are recorded, not
        // asserted, because smoke timings are noisy.
        let rates = measure_watch_scaling_sized(40, 20, 3, 4);
        assert_eq!(rates.watches, 4);
        assert_eq!(rates.batches, 3);
        assert_eq!(rates.batch_records, 20);
        assert_eq!(rates.initial_records, 40);
        assert_eq!(rates.final_records, 100);
        assert_eq!(rates.per_epoch_delta_ns.len(), 3);
        assert!(rates.per_epoch_delta_ns.iter().all(|&ns| ns > 0));
        assert_eq!(rates.per_epoch_delta_pairs.len(), 3);
        assert_eq!(
            rates.total_delta_pairs,
            rates.per_epoch_delta_pairs.iter().sum::<u64>()
        );
        // The delta pipeline must actually deliver pairs on this clustered
        // corpus: concatenated deltas are the cold answer, and a clustered
        // Gaussian corpus has similar pairs straddling every batch edge.
        assert!(
            rates.total_delta_pairs > 0,
            "watches must surface new pairs as the corpus grows: {rates:?}"
        );
    }

    #[test]
    fn multi_session_measurement_shares_the_cache() {
        // Tiny corpus so the smoke measurement stays fast in tests: with
        // 2 sessions sweeping the same ladder, the second tread of every
        // threshold is answered from the shared memo pool, so the
        // aggregate hit rate must beat the single-session baseline.
        let ds = GaussianSpec::new("bench-test", 40, 6, 2).generate(5);
        let unbounded = CacheCapacity::unbounded();
        let solo = sweep_shared_cache(&ds.records, ds.measure, 1, unbounded).0;
        let duo = sweep_shared_cache(&ds.records, ds.measure, 2, unbounded).0;
        assert_eq!(solo.probes, 5);
        assert_eq!(duo.probes, 10);
        // `>=`, not `>`: the duo's sessions genuinely race, and a
        // scheduler keeping them in lockstep (both reading a pair before
        // either publishes) can leave cross-session hits at zero. The
        // serialized-sharing guarantee itself is pinned race-free in
        // crates/core/tests/parallel_determinism.rs.
        assert!(
            duo.cache_hit_rate >= solo.cache_hit_rate,
            "sharing must not lower the hit rate: {} vs {}",
            duo.cache_hit_rate,
            solo.cache_hit_rate
        );
        assert!(solo.mean_probe_ms > 0.0 && solo.probes_per_sec > 0.0);
    }

    #[test]
    fn recovery_measurement_replays_the_logged_lineage() {
        // Small sizing so the smoke measurement stays fast in tests; the
        // shape is the real one — a publish-time snapshot on disk, every
        // batch WAL-logged, the warm timing a genuine `durable::recover`
        // (which asserts internally that every batch replayed). Timings
        // are recorded, not compared: smoke-sized corpora are too small
        // for the warm-vs-cold ratio to be stable.
        let rates = measure_recovery_sized(40, 10, 2);
        assert_eq!(rates.initial_records, 40);
        assert_eq!(rates.batches, 2);
        assert_eq!(rates.batch_records, 10);
        assert_eq!(rates.final_records, 60);
        assert!(rates.snapshot_bytes > 0, "snapshot must land on disk");
        assert_eq!(rates.wal_replay_records, 20);
        assert!(rates.wal_replay_records_per_sec > 0.0);
        assert!(rates.cold_start_ms > 0.0 && rates.warm_restart_ms > 0.0);
        assert!(rates.warm_cold_ratio() > 0.0);
    }

    #[test]
    fn serving_measurement_round_trips_over_tcp() {
        // Small sizing so the smoke measurement stays fast in tests; the
        // shape is the real one — a live loopback server, every timed
        // number a full request→reply cycle.
        let rates = measure_serving_sized(40, 10, 2, 3);
        assert!(rates.requests > 0);
        assert!(rates.requests_per_sec > 0.0);
        assert!(rates.attach_mean_us > 0.0);
        assert!(rates.probe_mean_us > 0.0);
        assert!(rates.ingest_mean_us > 0.0);
        assert!(rates.memory_stats_mean_us > 0.0);
    }
}
