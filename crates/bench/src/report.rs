//! Table formatting for paper-style output.

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (k, c) in r.iter().enumerate().take(cols) {
                widths[k] = widths[k].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (k, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$} | ", c, w = widths[k]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| format!("|{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "|";
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly (3 significant-ish decimals).
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats seconds.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2}s")
    } else {
        format!("{:.1}ms", x * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.1234), "0.123");
    }

    #[test]
    fn seconds_formats() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0123), "12.3ms");
    }
}
