//! The load harness must itself be reproducible before its counters can
//! gate regressions: the plan is a pure function of the seed, a serial
//! replay under the fake clock is bit-identical run to run (histogram
//! buckets included), and a real open-loop run hits every plan-derived
//! expectation exactly — watch deltas, WAL acks, registry evictions.

use plasma_bench::loadgen::{
    distinct_tenants_in, ingests_in, plan_for, run, run_plan_serial, verb_counts, LoadClock,
    LoadgenOpts, ScenarioKind, StepHarness,
};

/// Tiny sizing so the whole suite stays a few seconds on one core.
fn tiny_opts(seed: u64) -> LoadgenOpts {
    LoadgenOpts {
        step_requests: 24,
        base_rate_hz: 300.0,
        rate_multipliers: vec![1.0],
        sessions: 2,
        watchers: 1,
        tenants: 4,
        max_caches: 2,
        max_clients: 8,
        initial_records: 48,
        ingest_batch_records: 3,
        tenant_records: 16,
        ..LoadgenOpts::smoke(seed)
    }
}

#[test]
fn plans_and_their_derived_counters_replay_from_the_seed() {
    for kind in ScenarioKind::all() {
        let a = plan_for(kind, 11, 0, 120, 2_000, 4);
        let b = plan_for(kind, 11, 0, 120, 2_000, 4);
        assert_eq!(a, b);
        assert_eq!(verb_counts(&a), verb_counts(&b));
        assert_eq!(ingests_in(&a), ingests_in(&b));
        assert_eq!(distinct_tenants_in(&a), distinct_tenants_in(&b));
        // Different rate steps draw from different substreams.
        let c = plan_for(kind, 11, 1, 120, 2_000, 4);
        assert_ne!(a, c, "{kind:?}: steps must not reuse one substream");
    }
}

#[test]
fn serial_replay_under_the_fake_clock_is_bit_identical() {
    // interval << FAKE_TICK_NS: virtual time outruns the schedule, so
    // simulated latency grows request over request and the histogram
    // populates many buckets — a real determinism workout, not a
    // single-bucket triviality.
    for kind in ScenarioKind::all() {
        let opts = tiny_opts(5);
        let plan = plan_for(kind, opts.seed, 0, 40, 100, opts.tenants);
        let run_once = || {
            let harness = StepHarness::build(kind, &opts, &plan).expect("harness builds");
            let clock = LoadClock::fake();
            run_plan_serial(&harness, kind, true, &plan, &clock).expect("serial run")
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.completed, b.completed, "{kind:?}");
        assert_eq!(a.errors, 0, "{kind:?}: {:?}", a.first_error);
        assert_eq!(b.errors, 0, "{kind:?}");
        assert_eq!(a.verbs, b.verbs, "{kind:?}");
        assert_eq!(a.watch_deltas, b.watch_deltas, "{kind:?}");
        assert_eq!(a.hist.total(), b.hist.total(), "{kind:?}");
        assert_eq!(a.hist.max(), b.hist.max(), "{kind:?}");
        assert_eq!(
            a.hist.counts(),
            b.hist.counts(),
            "{kind:?}: bucket-exact replay"
        );
        assert_eq!(a.hist.total(), plan.len() as u64, "every request sampled");
        assert!(
            a.hist.counts().iter().filter(|&&c| c > 0).count() > 1,
            "{kind:?}: the workout must spread across buckets"
        );
    }
}

#[test]
fn serial_watcher_receives_registration_plus_one_delta_per_ingest() {
    let kind = ScenarioKind::IngestProbeWatch;
    let opts = tiny_opts(9);
    let plan = plan_for(kind, opts.seed, 0, 60, 100, opts.tenants);
    let ingests = ingests_in(&plan);
    assert!(ingests > 0, "the mixed plan must carry ingests");
    let harness = StepHarness::build(kind, &opts, &plan).expect("harness builds");
    let clock = LoadClock::fake();
    let out = run_plan_serial(&harness, kind, true, &plan, &clock).expect("serial run");
    assert_eq!(out.errors, 0, "{:?}", out.first_error);
    assert_eq!(out.watch_deltas, 1 + ingests);
}

#[test]
fn open_loop_run_hits_every_plan_derived_expectation() {
    let opts = tiny_opts(3);
    let report = run(&opts).expect("smoke run");
    assert_eq!(report.scenarios.len(), 3);
    for s in &report.scenarios {
        assert_eq!(
            s.completed_requests,
            s.planned_requests,
            "{}: open loop completes everything it offers",
            s.kind.name()
        );
        assert_eq!(s.error_requests, 0, "{}", s.kind.name());
        assert_eq!(
            s.verbs.values().sum::<u64>(),
            s.planned_requests,
            "{}",
            s.kind.name()
        );
        assert_eq!(
            s.watch_deltas,
            s.watch_deltas_expected,
            "{}: every watcher sees registration + one delta per ingest",
            s.kind.name()
        );
        assert_eq!(
            s.registry_evictions,
            s.registry_evictions_expected,
            "{}: evictions are distinct-tenants minus the cap",
            s.kind.name()
        );
        assert!(
            s.wal_syncs <= s.wal_acked_appends,
            "{}: group commit can only coalesce",
            s.kind.name()
        );
        for step in &s.steps {
            assert_eq!(step.samples, step.planned, "{}", s.kind.name());
            assert!(step.p50_ms <= step.p99_ms && step.p99_ms <= step.p999_ms);
            assert!(step.saturation > 0.0);
        }
    }
    let b = &report.scenarios[1];
    assert_eq!(b.kind, ScenarioKind::IngestProbeWatch);
    assert_eq!(
        b.wal_acked_appends, b.verbs["ingest"],
        "every executed ingest must be acked durable"
    );
    assert!(b.wal_syncs >= 1, "acked appends imply at least one fsync");

    // The deterministic half of the report replays exactly.
    let again = run(&opts).expect("second smoke run");
    for (x, y) in report.scenarios.iter().zip(&again.scenarios) {
        assert_eq!(x.planned_requests, y.planned_requests);
        assert_eq!(x.verbs, y.verbs);
        assert_eq!(x.watch_deltas, y.watch_deltas);
        assert_eq!(x.wal_acked_appends, y.wal_acked_appends);
        assert_eq!(x.registry_evictions, y.registry_evictions);
    }
}
