//! All-pairs similarity search (APSS) over BayesLSH.
//!
//! One probe at threshold `t`: generate candidate pairs, evaluate each with
//! BayesLSH's incremental pruning/concentration, and return the surviving
//! pairs plus every memoized estimate (fuel for the knowledge cache and the
//! Cumulative APSS Graph). Timing is split into *sketching* and
//! *processing* because Fig. 2.9's point is exactly that split.
//!
//! # Parallel engine
//!
//! Both halves of the probe scale with cores, controlled by one knob,
//! [`ApssConfig::parallelism`] (`None` = all cores, `Some(1)` =
//! sequential):
//!
//! * **Sketching** shards records into disjoint slices of the flat sketch
//!   buffer (see `plasma_lsh::sketch`).
//! * **Pair evaluation** chunks the candidate list; each worker evaluates
//!   its chunk with a private `ProbeTable` and accumulates a private
//!   [`ApssStats`] partial, merged in chunk order afterwards.
//!
//! Every path returns bit-identical pairs, estimates, and counters at
//! every thread count: per-pair evaluation is independent, and chunk
//! outputs concatenate back into candidate order.

use std::time::Instant;

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{BayesLsh, PairDecision, PairEstimate};
use plasma_lsh::candidates;
use plasma_lsh::family::LshFamily;
use plasma_lsh::resolve_parallelism;
use plasma_lsh::sketch::{SketchSet, Sketcher};
use plasma_lsh::{BayesParams, ShardPolicy};
use rayon::prelude::*;

/// How candidate pairs are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// All `n·(n−1)/2` pairs — exact recall, used for small data and
    /// ground-truth comparisons.
    Exhaustive,
    /// Banded LSH join: `bands` bands of `width` hashes.
    Banded {
        /// Number of bands.
        bands: usize,
        /// Hashes per band.
        width: usize,
    },
}

/// APSS configuration.
#[derive(Debug, Clone, Copy)]
pub struct ApssConfig {
    /// Hashes per sketch.
    pub n_hashes: usize,
    /// BayesLSH stopping parameters.
    pub bayes: BayesParams,
    /// Candidate generation strategy.
    pub candidates: CandidateStrategy,
    /// When true, accepted pairs get their similarity recomputed exactly
    /// (BayesLSH; false = BayesLSH-Lite style estimates only).
    pub exact_on_accept: bool,
    /// RNG/hash seed.
    pub seed: u64,
    /// Worker threads for sketching, candidate generation, and pair
    /// evaluation: `None` = all cores, `Some(1)` = sequential. Results are
    /// bit-identical regardless, so experiments stay reproducible at any
    /// setting.
    pub parallelism: Option<usize>,
    /// How the banded join distributes bucket pairing across workers
    /// (hot-bucket splitting thresholds, or
    /// [`ShardPolicy::adaptive`] to derive the pair budget from the
    /// measured load at plan time). Ignored by the exhaustive strategy.
    /// Never changes the candidate set — only how its generation
    /// parallelizes.
    pub shard: ShardPolicy,
}

impl Default for ApssConfig {
    fn default() -> Self {
        Self {
            n_hashes: 256,
            bayes: BayesParams::default(),
            candidates: CandidateStrategy::Exhaustive,
            exact_on_accept: false,
            seed: 0x9D_5A,
            parallelism: None,
            shard: ShardPolicy::default(),
        }
    }
}

/// A reported similar pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarPair {
    /// Record indices, `i < j`.
    pub i: u32,
    /// Second record index.
    pub j: u32,
    /// Similarity (estimate, or exact when `exact_on_accept`).
    pub similarity: f64,
}

/// Outcome of one APSS probe.
#[derive(Debug, Clone)]
pub struct ApssResult {
    /// The probe threshold.
    pub threshold: f64,
    /// Pairs whose (estimated or exact) similarity meets the threshold.
    pub pairs: Vec<SimilarPair>,
    /// Every candidate evaluated, with its memoized estimate — the
    /// knowledge-cache payload.
    pub estimates: Vec<(u32, u32, PairEstimate)>,
    /// Counters and timings.
    pub stats: ApssStats,
}

/// Probe statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApssStats {
    /// Candidate pairs generated.
    pub candidates: u64,
    /// Candidates pruned by Eq. 2.1.
    pub pruned: u64,
    /// Candidates accepted by Eq. 2.2 (estimate concentrated).
    pub accepted: u64,
    /// Candidates that exhausted their sketches undecided.
    pub exhausted: u64,
    /// Total hashes compared.
    pub hashes_compared: u64,
    /// Seconds spent generating sketches.
    pub sketch_seconds: f64,
    /// Seconds spent generating + evaluating candidates.
    pub process_seconds: f64,
    /// Pair evaluations answered *entirely* from a knowledge cache's
    /// memoized match profiles — zero new hash comparisons. Partially
    /// covered pairs (profile resumed, then deepened) count toward
    /// `hashes_compared` only. Always 0 for cache-less probes.
    pub cache_hits: u64,
}

impl ApssStats {
    /// Folds another partial's counters into this one (timings are owned
    /// by the caller driving the probe, not the partials).
    pub fn absorb(&mut self, other: &ApssStats) {
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.accepted += other.accepted;
        self.exhausted += other.exhausted;
        self.hashes_compared += other.hashes_compared;
        self.cache_hits += other.cache_hits;
    }
}

/// Builds sketches for a record set under a similarity measure.
pub fn build_sketches(
    records: &[SparseVector],
    measure: Similarity,
    cfg: &ApssConfig,
) -> (SketchSet, f64) {
    let start = Instant::now();
    let family = LshFamily::for_measure(measure);
    let sketcher = Sketcher::new(family, cfg.n_hashes, cfg.seed).with_parallelism(cfg.parallelism);
    let sketches = sketcher.sketch_all(records);
    (sketches, start.elapsed().as_secs_f64())
}

/// Generates candidate pairs per the configured strategy.
pub fn generate_candidates(sketches: &SketchSet, cfg: &ApssConfig) -> Vec<(u32, u32)> {
    match cfg.candidates {
        CandidateStrategy::Exhaustive => candidates::exhaustive(sketches.len()),
        CandidateStrategy::Banded { bands, width } => {
            candidates::banded_with_policy(sketches, bands, width, cfg.parallelism, cfg.shard)
        }
    }
}

/// Below this many candidates per worker, chunking costs more than it
/// saves and evaluation stays sequential.
const MIN_PAIRS_PER_WORKER: usize = 64;

/// Worker count for evaluating `pairs` candidates under `cfg`: never so
/// many that a worker gets fewer than [`MIN_PAIRS_PER_WORKER`] pairs.
pub(crate) fn eval_threads(cfg: &ApssConfig, pairs: usize) -> usize {
    resolve_parallelism(cfg.parallelism).min((pairs / MIN_PAIRS_PER_WORKER).max(1))
}

/// Runs a full APSS probe from scratch (sketch + candidates + evaluate).
pub fn apss(
    records: &[SparseVector],
    measure: Similarity,
    threshold: f64,
    cfg: &ApssConfig,
) -> ApssResult {
    let (sketches, sketch_seconds) = build_sketches(records, measure, cfg);
    let mut result = apss_with_sketches(records, measure, &sketches, threshold, cfg);
    result.stats.sketch_seconds = sketch_seconds;
    result
}

/// Runs a probe reusing prebuilt sketches (the knowledge-cache fast path
/// charges zero sketch time).
pub fn apss_with_sketches(
    records: &[SparseVector],
    measure: Similarity,
    sketches: &SketchSet,
    threshold: f64,
    cfg: &ApssConfig,
) -> ApssResult {
    let start = Instant::now();
    let engine = BayesLsh::new(sketches.family(), cfg.bayes);
    let cands = generate_candidates(sketches, cfg);
    let threads = eval_threads(cfg, cands.len());

    let mut stats = ApssStats {
        candidates: cands.len() as u64,
        ..Default::default()
    };
    let mut pairs = Vec::new();
    let mut estimates = Vec::with_capacity(cands.len());
    let chunk_outs: Vec<ChunkEval> = if threads <= 1 {
        vec![evaluate_chunk(
            &engine, sketches, records, measure, threshold, cfg, &cands,
        )]
    } else {
        // One private ProbeTable and stats partial per worker; chunk
        // outputs concatenate back into candidate order, so the merged
        // result is bit-identical to the sequential pass.
        let per_chunk = cands.len().div_ceil(threads);
        cands
            .par_chunks(per_chunk)
            .map(|chunk| evaluate_chunk(&engine, sketches, records, measure, threshold, cfg, chunk))
            .collect()
    };
    for out in chunk_outs {
        stats.absorb(&out.stats);
        pairs.extend(out.pairs);
        estimates.extend(out.estimates);
    }
    stats.process_seconds = start.elapsed().as_secs_f64();
    ApssResult {
        threshold,
        pairs,
        estimates,
        stats,
    }
}

/// One worker's share of a probe.
struct ChunkEval {
    pairs: Vec<SimilarPair>,
    estimates: Vec<(u32, u32, PairEstimate)>,
    stats: ApssStats,
}

/// Evaluates one chunk of candidates with a private `ProbeTable`,
/// returning results in chunk order.
fn evaluate_chunk(
    engine: &BayesLsh,
    sketches: &SketchSet,
    records: &[SparseVector],
    measure: Similarity,
    threshold: f64,
    cfg: &ApssConfig,
    chunk: &[(u32, u32)],
) -> ChunkEval {
    let mut table = engine.probe_table(threshold);
    let mut stats = ApssStats::default();
    let mut pairs = Vec::new();
    let mut estimates = Vec::with_capacity(chunk.len());
    for &(i, j) in chunk {
        let est = table.evaluate_pair(sketches, i as usize, j as usize);
        stats.hashes_compared += est.hashes as u64;
        match est.decision {
            PairDecision::Pruned => stats.pruned += 1,
            PairDecision::Accepted => stats.accepted += 1,
            PairDecision::Exhausted => stats.exhausted += 1,
        }
        if est.decision != PairDecision::Pruned {
            let similarity = if cfg.exact_on_accept {
                measure.compute(&records[i as usize], &records[j as usize])
            } else {
                est.map_similarity
            };
            if similarity >= threshold {
                pairs.push(SimilarPair { i, j, similarity });
            }
        }
        estimates.push((i, j, est));
    }
    ChunkEval {
        pairs,
        estimates,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::all_pairs_exact;

    fn small_dataset() -> Vec<SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("t", 60, 8, 3)
        }
        .generate(11)
        .records
    }

    #[test]
    fn apss_recall_and_precision_against_exact() {
        let records = small_dataset();
        let t = 0.7;
        let cfg = ApssConfig {
            exact_on_accept: true,
            ..ApssConfig::default()
        };
        let result = apss(&records, Similarity::Cosine, t, &cfg);
        let truth = all_pairs_exact(&records, Similarity::Cosine, t);
        let found: std::collections::HashSet<(u32, u32)> =
            result.pairs.iter().map(|p| (p.i, p.j)).collect();
        let truth_set: std::collections::HashSet<(u32, u32)> =
            truth.iter().map(|&(i, j, _)| (i, j)).collect();
        // Precision is exact (exact_on_accept); recall bounded by ε misses.
        assert!(found.is_subset(&truth_set), "no false positives allowed");
        let recall = found.len() as f64 / truth_set.len().max(1) as f64;
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn pruning_reduces_hash_comparisons() {
        let records = small_dataset();
        let cfg = ApssConfig::default();
        let result = apss(&records, Similarity::Cosine, 0.9, &cfg);
        let max_possible = result.stats.candidates * cfg.n_hashes as u64;
        assert!(
            result.stats.hashes_compared < max_possible / 2,
            "pruning should compare far fewer hashes ({} of {max_possible})",
            result.stats.hashes_compared
        );
        assert!(result.stats.pruned > 0);
    }

    #[test]
    fn estimates_cover_all_candidates() {
        let records = small_dataset();
        let result = apss(&records, Similarity::Cosine, 0.8, &ApssConfig::default());
        assert_eq!(result.estimates.len() as u64, result.stats.candidates);
        assert_eq!(
            result.stats.pruned + result.stats.accepted + result.stats.exhausted,
            result.stats.candidates
        );
    }

    #[test]
    fn banded_strategy_cuts_candidates() {
        let records = small_dataset();
        let exh = apss(&records, Similarity::Cosine, 0.9, &ApssConfig::default());
        let banded = apss(
            &records,
            Similarity::Cosine,
            0.9,
            &ApssConfig {
                candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
                ..ApssConfig::default()
            },
        );
        assert!(banded.stats.candidates < exh.stats.candidates);
    }

    #[test]
    fn sketch_time_recorded() {
        let records = small_dataset();
        let result = apss(&records, Similarity::Cosine, 0.5, &ApssConfig::default());
        assert!(result.stats.sketch_seconds > 0.0);
        assert!(result.stats.process_seconds > 0.0);
    }
}
