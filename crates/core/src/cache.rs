//! The knowledge cache — single-session and shared/concurrent forms.
//!
//! §2.2.1: "The memoization can also be viewed as a knowledge cache,
//! enabling one to speed up subsequent iterations of the algorithm by
//! re-using previously computed and memoized information." Two layers are
//! cached:
//!
//! 1. **Sketches** — built once per dataset; §2.3.3 shows initial sketch
//!    generation dominates perceived latency, so skipping it on re-probes
//!    is the big win.
//! 2. **Pair memos** — the per-pair hash-comparison knowledge. The memo is
//!    a [`MatchProfile`]: the match count at every batch boundary of the
//!    canonical evaluation schedule, up to the deepest step any probe has
//!    compared. A re-probe replays the schedule reading memoized counts
//!    (free) and compares hashes only past the deepest covered step.
//! 3. **Band buckets** — for the banded candidate strategy, the per-band
//!    bucket maps and canonical pair set persist across probes *and*
//!    growth epochs ([`plasma_lsh::candidates::BandBuckets`]): a record's
//!    band keys never change after ingest, so a post-ingest probe hashes
//!    only the new records against the cached buckets instead of
//!    rebuilding `O(corpus × bands)` state. Like every cached layer this
//!    is pure recomputable acceleration — the candidate set it yields is
//!    bit-identical to a cold rebuild, and dropping it (capacity
//!    pressure, strategy-shape change) only costs a cold rebuild.
//!
//! # Sharing and determinism
//!
//! [`SharedKnowledgeCache`] is the concurrent form: the memo maps are
//! **lock-striped** across [`STRIPES`] shards keyed by pair hash, probes
//! take `&self`, and workers publish memos into their stripe as they
//! evaluate — there is no global lock and no single-threaded fold. Many
//! sessions probing the same corpus at different thresholds share one
//! sketch set and one memo pool ([`Session::with_shared_cache`],
//! [`CacheRegistry`]).
//!
//! Sharing does not cost reproducibility, because profile-backed
//! evaluation is *confluent*: a probe's pairs, estimates, and decision
//! counters are bit-identical to the from-scratch sequential path no
//! matter the thread count, the number of concurrent sessions, or how
//! their probes interleave. Cache warmth only changes how much work
//! (`hashes_compared`, `cache_hits`) a probe pays, never what it returns.
//! See `tests/parallel_determinism.rs` for the property pins.
//!
//! # Bounded memory
//!
//! Long-lived serving processes bound the memo pool with a
//! [`CacheCapacity`]: every pair memo is byte-accounted
//! ([`MatchProfile::byte_size`] plus per-entry overhead) per stripe, and
//! publications that push a stripe over its share of the cap evict memos
//! — least-recently-used first, or shallowest-profile first
//! ([`EvictionPolicy`]). Because memos are pure recomputable knowledge,
//! **eviction never changes probe outputs**, only work counters; the
//! capped cache returns bit-identical results to an unbounded one at any
//! thread/session count (pinned in `tests/bounded_cache.rs`).
//! [`CacheRegistry`] adds the process-wide axis: a [`RegistryCapacity`]
//! caps how many dataset caches stay resident and their total bytes
//! (sketches + memos), dropping whole least-recently-used caches.
//! [`SharedKnowledgeCache::memory_stats`] exposes byte/eviction/hit
//! counters for operators.
//!
//! # Streamed growth (epoch carry-over)
//!
//! A cache is no longer pinned to one frozen corpus: streaming ingest
//! ([`crate::streaming::StreamingSession`]) grows the sketch set with
//! `Sketcher::extend_batch` and publishes it via
//! [`SharedKnowledgeCache::grow`]. Because a grown set is a byte-for-byte
//! prefix-extension at a bumped [`SketchSet::epoch`], every memo for a
//! pair of *old* records is provably still exact and **survives the
//! bump**; only pairs touching new records are evaluated fresh by later
//! probes. Probes pin an `Arc` sketch snapshot for their whole
//! evaluation, so growth never tears an in-flight probe. The
//! [`CacheRegistry`] treats a grown cache as the same lineage: its entry
//! stays keyed by the epoch-0 fingerprint, so growth never duplicates a
//! registry slot.
//!
//! [`Session::with_shared_cache`]: crate::session::Session::with_shared_cache
//! [`MatchProfile`]: plasma_lsh::bayes::MatchProfile

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use plasma_data::hash::{FxHashMap, FxHasher};
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{MatchProfile, PairDecision, PairEstimate};
use plasma_lsh::candidates::BandBuckets;
use plasma_lsh::sketch::SketchSet;
use rayon::prelude::*;

use crate::apss::{build_sketches, ApssConfig, ApssResult, ApssStats, SimilarPair};

/// Number of lock stripes in a [`SharedKnowledgeCache`]. A fixed power of
/// two well above typical core counts keeps contention negligible without
/// making `len()`/snapshot walks expensive.
pub const STRIPES: usize = 64;

/// Which memo a bounded cache sacrifices first when it must evict.
///
/// Whatever the policy, eviction only ever discards *memoized work* —
/// a re-probe of an evicted pair recomputes from the sketches and
/// republishes, so probe outputs are bit-identical to an unbounded cache
/// at any capacity (see [`CacheCapacity`]). The policy only shapes which
/// pairs stay warm, i.e. the hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the pair touched longest ago (reads and publications both
    /// refresh recency). Ties — possible only between pairs never touched
    /// since the same probe — fall back to dropping the shallowest
    /// profile first, the cheapest knowledge to rebuild.
    #[default]
    LeastRecentlyUsed,
    /// Evict the pair with the fewest covered batch steps first (recency
    /// breaks ties): keeps the deepest, most expensive-to-recompute
    /// profiles resident, at the cost of ignoring access patterns.
    ShallowestFirst,
}

/// Memory policy for a [`SharedKnowledgeCache`]'s memo pool.
///
/// The cap is a bound on **accounted memo bytes**: per-pair profile heap
/// bytes ([`MatchProfile::byte_size`]) plus a fixed per-entry overhead for
/// the key, decision record, exact-similarity slot, and recency stamp.
/// Sketches are *not* counted — they are immutable, sized up front, and
/// reported separately ([`SharedKnowledgeCache::total_bytes`]).
///
/// Enforcement is per stripe: each of the [`STRIPES`] lock stripes owns
/// `max_bytes / STRIPES` of the budget and evicts locally whenever a
/// publication pushes it over, so bounding never adds cross-stripe
/// locking. Summed over stripes the accounted footprint therefore never
/// exceeds `max_bytes` once any publication's eviction pass has run —
/// including mid-probe, since eviction happens inside the publishing
/// stripe's critical section.
///
/// ```
/// use plasma_core::cache::{CacheCapacity, EvictionPolicy};
///
/// let unbounded = CacheCapacity::unbounded();
/// assert_eq!(unbounded.max_bytes(), None);
///
/// let bounded = CacheCapacity::bounded(1 << 20) // 1 MiB
///     .with_policy(EvictionPolicy::ShallowestFirst);
/// assert_eq!(bounded.max_bytes(), Some(1 << 20));
/// assert_eq!(bounded.policy(), EvictionPolicy::ShallowestFirst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCapacity {
    max_bytes: Option<usize>,
    policy: EvictionPolicy,
}

impl CacheCapacity {
    /// No cap: the memo pool grows with the workload (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps accounted memo bytes at `max_bytes`, evicting least-recently
    /// used pairs first. `bounded(0)` is legal and means "memoize
    /// nothing": every probe stays correct, it just pays fresh-evaluation
    /// cost each time.
    pub fn bounded(max_bytes: usize) -> Self {
        Self {
            max_bytes: Some(max_bytes),
            policy: EvictionPolicy::default(),
        }
    }

    /// Selects the eviction policy (only meaningful when bounded).
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The byte cap, `None` when unbounded.
    pub fn max_bytes(&self) -> Option<usize> {
        self.max_bytes
    }

    /// The eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Each stripe's share of the cap. Flooring means up to
    /// `STRIPES - 1` bytes of the global cap go unused — never exceeded.
    fn stripe_budget(&self) -> Option<usize> {
        self.max_bytes.map(|b| b / STRIPES)
    }
}

/// Everything the cache remembers about one pair, under one stripe slot.
#[derive(Default)]
struct PairMemo {
    /// The confluent match-count memo (may be empty when only an exact
    /// similarity was published, e.g. by a mismatched-batch probe).
    profile: MatchProfile,
    /// Most-refined decision record seen (advisory; see
    /// [`SharedKnowledgeCache::get`]).
    estimate: Option<PairEstimate>,
    /// Exact similarity computed for an accepted pair (when a probe ran
    /// with `exact_on_accept`); re-probes reuse it instead of recomputing
    /// dot products. A pure function of the record pair, so publication
    /// is idempotent.
    exact: Option<f64>,
    /// Monotonic recency stamp from the cache's touch clock.
    last_used: u64,
}

impl PairMemo {
    /// Accounted bytes: fixed per-entry overhead (map slot, key, record,
    /// stamp) plus the profile's heap. An estimate of the real footprint
    /// — hash-map load-factor slack is not modeled — but a *consistent*
    /// one, so the capacity invariant is exact over what is accounted.
    fn byte_size(&self) -> usize {
        std::mem::size_of::<((u32, u32), PairMemo)>()
            + std::mem::size_of::<u64>()
            + self.profile.byte_size()
    }
}

/// One lock stripe of the shared memo pool: the per-pair memos plus this
/// stripe's exact accounted-byte tally.
#[derive(Default)]
struct Stripe {
    /// Per-pair memos (`i < j` keys).
    entries: FxHashMap<(u32, u32), PairMemo>,
    /// Sum of `entries[k].byte_size()` — maintained exactly under this
    /// stripe's lock.
    bytes: usize,
}

impl Stripe {
    /// Evicts until this stripe's accounted bytes fit `budget`, returning
    /// `(entries, bytes)` evicted. Victim order is the capacity policy's;
    /// the final total-order key makes eviction deterministic for any
    /// serialized publication history.
    fn evict_to_budget(&mut self, budget: usize, policy: EvictionPolicy) -> (u64, u64) {
        let mut evicted = (0u64, 0u64);
        while self.bytes > budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(key, memo)| match policy {
                    EvictionPolicy::LeastRecentlyUsed => {
                        (memo.last_used, memo.profile.covered_steps() as u64, **key)
                    }
                    EvictionPolicy::ShallowestFirst => {
                        (memo.profile.covered_steps() as u64, memo.last_used, **key)
                    }
                })
                .map(|(key, _)| *key)
                .expect("non-empty entry map has a minimum");
            let memo = self.entries.remove(&victim).expect("victim exists");
            let bytes = memo.byte_size();
            self.bytes -= bytes;
            evicted.0 += 1;
            evicted.1 += bytes as u64;
        }
        evicted
    }
}

/// Point-in-time memory and eviction statistics for a
/// [`SharedKnowledgeCache`] (see
/// [`memory_stats`](SharedKnowledgeCache::memory_stats)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheMemoryStats {
    /// Pair memos currently resident.
    pub entries: usize,
    /// Accounted memo bytes currently resident (excludes sketches).
    pub memo_bytes: usize,
    /// High-water mark of accounted memo bytes over the cache's life.
    /// With a cap configured this can transiently exceed the cap by at
    /// most one publication (accounting happens just before the eviction
    /// pass in the same critical section).
    pub peak_memo_bytes: usize,
    /// Immutable sketch bytes (not subject to the cap).
    pub sketch_bytes: usize,
    /// Estimated bytes held by the epoch-persistent band-bucket cache
    /// (0 when the strategy is exhaustive or the cache was dropped for
    /// capacity). Counted toward [`total_bytes`] and checked against the
    /// full [`CacheCapacity`] cap, but never against per-stripe budgets —
    /// the bucket cache is dropped whole, not evicted entry by entry.
    ///
    /// [`total_bytes`]: SharedKnowledgeCache::total_bytes
    pub bucket_cache_bytes: usize,
    /// Lifetime records hashed into the band-bucket cache (each record is
    /// bucketed once per cover, so a fully warm probe adds 0 and a
    /// post-ingest probe adds exactly the batch size). The work-counter
    /// proof that candidate generation is O(new × matches), not a
    /// per-probe rebuild.
    pub bucket_build_records: u64,
    /// The configured byte cap, `None` when unbounded.
    pub capacity_bytes: Option<usize>,
    /// Pair memos evicted over the cache's life.
    pub evicted_entries: u64,
    /// Accounted bytes reclaimed by eviction over the cache's life.
    pub evicted_bytes: u64,
    /// Lifetime pair evaluations answered entirely from the memo pool
    /// (the sum of every probe's `cache_hits`).
    pub cache_hits: u64,
}

/// Memoized probe state for one dataset, shareable across sessions and
/// threads.
///
/// All methods take `&self`; wrap the cache in an [`Arc`] and hand clones
/// to as many sessions as needed. Probes running concurrently against the
/// same cache return exactly what they would have returned against a
/// private cache — sharing only redistributes the hashing work (the first
/// prober of a pair pays, everyone else hits).
///
/// ```
/// use std::sync::Arc;
/// use plasma_core::apss::{build_sketches, ApssConfig};
/// use plasma_core::cache::SharedKnowledgeCache;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
/// let cache = Arc::new(SharedKnowledgeCache::new(sketches));
///
/// // Two "sessions" (here: two handles) probe different thresholds.
/// let a = cache.probe(&ds.records, Similarity::Cosine, 0.9, &cfg);
/// let b = cache.probe(&ds.records, Similarity::Cosine, 0.6, &cfg);
/// assert!(b.stats.cache_hits > 0, "second probe reuses the first's memos");
///
/// // Re-probing an already-probed threshold is answered entirely from
/// // the cache: zero new hash comparisons.
/// let again = cache.probe(&ds.records, Similarity::Cosine, 0.9, &cfg);
/// assert_eq!(again.stats.hashes_compared, 0);
/// assert_eq!(again.pairs, a.pairs);
/// assert_eq!(cache.probe_history(), vec![0.9, 0.6, 0.9]);
/// ```
pub struct SharedKnowledgeCache {
    /// The corpus sketches, swappable for streamed growth: probes pin an
    /// `Arc` snapshot for their whole evaluation, and [`grow`](Self::grow)
    /// publishes an epoch-bumped prefix-extension in its place. Old pair
    /// memos survive a swap because the old sketch bytes are unchanged.
    sketches: RwLock<Arc<SketchSet>>,
    stripes: Vec<Mutex<Stripe>>,
    /// Memory policy; stripes enforce their share of the cap at
    /// publication time.
    capacity: CacheCapacity,
    /// Batch size of the evaluation schedule the profiles are indexed by,
    /// pinned by the first probe. Probes whose `BayesParams::batch`
    /// disagrees still return correct (bit-identical-to-fresh) results but
    /// bypass the profile memos; see [`probe`](Self::probe).
    schedule_batch: OnceLock<usize>,
    /// Thresholds probed so far, in publication (append) order.
    history: Mutex<Vec<f64>>,
    /// Monotonic touch clock; every read or publication of a pair memo
    /// takes a fresh stamp, giving the LRU policy its order.
    clock: AtomicU64,
    /// Mirror of the summed per-stripe byte tallies, so `memo_bytes` and
    /// peak tracking are O(1) instead of [`STRIPES`] lock walks.
    bytes: AtomicUsize,
    /// High-water mark of [`bytes`](Self::bytes).
    peak_bytes: AtomicUsize,
    /// Lifetime eviction counters.
    evicted_entries: AtomicU64,
    evicted_bytes: AtomicU64,
    /// Lifetime cache hits (summed per-probe `cache_hits`).
    hits: AtomicU64,
    /// Epoch-persistent band buckets for the banded candidate strategy.
    /// The mutex serializes candidate generation across concurrent
    /// probes; a warm probe only clones an `Arc` under it, and the cold
    /// alternative would be every prober rebuilding the same buckets in
    /// parallel anyway.
    band_buckets: Mutex<Option<BandBuckets>>,
    /// Mirror of the bucket cache's estimated bytes, so
    /// [`total_bytes`](Self::total_bytes) stays O(1) and lock-free.
    bucket_bytes: AtomicUsize,
    /// Lifetime records hashed into the band-bucket cache (see
    /// [`CacheMemoryStats::bucket_build_records`]).
    bucket_build_records: AtomicU64,
    /// Lifetime delta-candidate generations (calls that actually built or
    /// fetched a fresh-candidate slice). The work-counter proof that K
    /// watches on one corpus share one slice per epoch instead of
    /// re-deriving it K times.
    delta_builds: AtomicU64,
}

impl SharedKnowledgeCache {
    /// Wraps freshly built sketches with an empty, shareable, *unbounded*
    /// memo pool (the PR-2 behavior).
    pub fn new(sketches: SketchSet) -> Self {
        Self::with_capacity(sketches, CacheCapacity::unbounded())
    }

    /// Wraps freshly built sketches with an empty memo pool governed by
    /// `capacity`. A bounded pool keeps its accounted bytes under the cap
    /// by evicting pair memos; every probe still returns exactly what an
    /// unbounded cache would — eviction trades hit rate for memory, never
    /// correctness.
    ///
    /// ```
    /// use plasma_core::apss::{build_sketches, ApssConfig};
    /// use plasma_core::cache::{CacheCapacity, SharedKnowledgeCache};
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    /// use plasma_data::similarity::Similarity;
    ///
    /// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
    /// let cfg = ApssConfig::default();
    /// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
    ///
    /// let unbounded = SharedKnowledgeCache::new(sketches.clone());
    /// let bounded =
    ///     SharedKnowledgeCache::with_capacity(sketches, CacheCapacity::bounded(64 << 10));
    ///
    /// let a = unbounded.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
    /// let b = bounded.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
    /// assert_eq!(a.pairs, b.pairs, "capacity never changes probe output");
    ///
    /// let stats = bounded.memory_stats();
    /// assert!(stats.memo_bytes <= 64 << 10, "accounted bytes respect the cap");
    /// ```
    pub fn with_capacity(sketches: SketchSet, capacity: CacheCapacity) -> Self {
        Self {
            sketches: RwLock::new(Arc::new(sketches)),
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            capacity,
            schedule_batch: OnceLock::new(),
            history: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            evicted_entries: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            band_buckets: Mutex::new(None),
            bucket_bytes: AtomicUsize::new(0),
            bucket_build_records: AtomicU64::new(0),
            delta_builds: AtomicU64::new(0),
        }
    }

    /// A snapshot of the cached sketches. The `Arc` pins one consistent
    /// corpus epoch: a probe holds its snapshot for its whole evaluation,
    /// so a concurrent [`grow`](Self::grow) never changes what an
    /// in-flight probe sees.
    pub fn sketches(&self) -> Arc<SketchSet> {
        self.sketches.read().expect("sketch lock").clone()
    }

    /// The corpus growth epoch of the current sketch snapshot: 0 until
    /// the first [`grow`](Self::grow), advanced by one per adopted batch.
    pub fn epoch(&self) -> u64 {
        self.sketches().epoch()
    }

    /// Adopts a grown sketch set — the knowledge-cache half of streaming
    /// ingest. `grown` must be a byte-for-byte prefix-extension of the
    /// current sketches (same family and hash count, old sketch words
    /// unchanged — [`SketchSet::is_prefix_of`]) at a strictly later
    /// epoch, i.e. the product of [`plasma_lsh::Sketcher::extend_batch`]
    /// on (a clone of) the current snapshot.
    ///
    /// **Memo carry-over:** every resident pair memo survives the swap.
    /// A memo for pair `(i, j)` only ever reads sketch positions of
    /// records `i` and `j`, and both predate the growth, so replaying the
    /// canonical schedule against the grown set reads exactly the bytes
    /// it was built from — the memo is provably still exact. Only pairs
    /// touching new records are evaluated fresh by later probes. Byte
    /// accounting, [`CacheCapacity`] enforcement, eviction counters, and
    /// the pinned batch schedule all carry through untouched; sketch
    /// bytes reported by [`total_bytes`](Self::total_bytes) grow.
    ///
    /// After growing, every prober must supply the grown corpus —
    /// [`probe`](Self::probe) asserts its `records` slice matches the
    /// sketch count, so a session holding a pre-growth record list fails
    /// loudly rather than receiving pairs that index records it never
    /// saw. [`crate::streaming::StreamingSession`] forks stay in sync by
    /// construction. Note that a [`CacheRegistry`] holding this cache
    /// accounts the added bytes at its next lookup ([`RegistryCapacity`]
    /// enforcement runs in `get_or_build`, for streamed sketch growth
    /// exactly as for memo growth during probes).
    ///
    /// # Panics
    ///
    /// Panics when `grown` is not a strict prefix-extension at a later
    /// epoch — adopting a *different* corpus would silently poison every
    /// memo, so lineage violations fail loudly.
    pub fn grow(&self, grown: SketchSet) {
        let mut g = self.sketches.write().expect("sketch lock");
        let old = &**g;
        assert!(
            grown.epoch() > old.epoch(),
            "grow needs an epoch-bumped set (old epoch {}, grown {}); \
             build it with Sketcher::extend_batch",
            old.epoch(),
            grown.epoch()
        );
        assert!(
            old.is_prefix_of(&grown),
            "grown sketches must extend the current corpus byte for byte \
             ({} records at epoch {} → {} records at epoch {})",
            old.len(),
            old.epoch(),
            grown.len(),
            grown.epoch()
        );
        *g = Arc::new(grown);
    }

    /// The memory policy this cache enforces.
    pub fn capacity(&self) -> CacheCapacity {
        self.capacity
    }

    /// Accounted memo-pool bytes currently resident (excludes sketches).
    /// O(1): reads the atomic mirror of the per-stripe tallies.
    pub fn memo_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Estimated bytes held by the epoch-persistent band-bucket cache
    /// (0 when absent). O(1): reads the atomic mirror.
    pub fn bucket_cache_bytes(&self) -> usize {
        self.bucket_bytes.load(Ordering::Relaxed)
    }

    /// Lifetime records hashed into the band-bucket cache. A second probe
    /// of an identical `(bands, width)` shape — from this or any other
    /// session sharing the cache — adds 0; a post-ingest probe adds
    /// exactly the batch size. Exhaustive probes never touch it.
    pub fn bucket_build_records(&self) -> u64 {
        self.bucket_build_records.load(Ordering::Relaxed)
    }

    /// Lifetime delta-candidate generations — one per `probe_delta`
    /// (the crate-private one-shot path) plus one per epoch×shape in the
    /// registry's single-pass multi-watch notification, however many
    /// watches share the slice.
    pub fn delta_builds(&self) -> u64 {
        self.delta_builds.load(Ordering::Relaxed)
    }

    /// Total accounted footprint: sketch bytes (of the current epoch's
    /// snapshot) plus resident memo bytes plus the band-bucket cache.
    /// This is what [`CacheRegistry`] sums when enforcing a process-wide
    /// byte cap.
    pub fn total_bytes(&self) -> usize {
        self.sketches().byte_size() + self.memo_bytes() + self.bucket_cache_bytes()
    }

    /// Snapshot of the cache's memory and eviction statistics. Counters
    /// are read individually (not under one lock), so concurrent probes
    /// can skew fields against each other slightly; each field is exact
    /// for any serialized probe history.
    pub fn memory_stats(&self) -> CacheMemoryStats {
        CacheMemoryStats {
            entries: self
                .stripes
                .iter()
                .map(|s| s.lock().expect("stripe lock").entries.len())
                .sum(),
            memo_bytes: self.memo_bytes(),
            peak_memo_bytes: self.peak_bytes.load(Ordering::Relaxed),
            sketch_bytes: self.sketches().byte_size(),
            bucket_cache_bytes: self.bucket_cache_bytes(),
            bucket_build_records: self.bucket_build_records(),
            capacity_bytes: self.capacity.max_bytes(),
            evicted_entries: self.evicted_entries.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Number of pairs with a memoized profile, summed across all lock
    /// stripes. Linear in [`STRIPES`] lock acquisitions; the count is a
    /// snapshot and may be stale by the time it returns if other sessions
    /// are probing concurrently.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .expect("stripe lock")
                    .entries
                    .values()
                    .filter(|m| !m.profile.is_empty())
                    .count()
            })
            .sum()
    }

    /// True when [`len`](Self::len) is 0: no pair carries a memoized
    /// profile in any stripe (same snapshot caveat as `len`; exact-only
    /// memos published by mismatched-batch probes don't count, exactly as
    /// they don't count toward `len`).
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| {
            s.lock()
                .expect("stripe lock")
                .entries
                .values()
                .all(|m| m.profile.is_empty())
        })
    }

    /// Thresholds probed so far, in append order: each probe appends its
    /// threshold exactly once, when its evaluation completes. Under
    /// concurrent sessions the order is the order probes finished (the
    /// history mutex serializes appends), so the list is always a
    /// permutation of the probes issued, never a torn interleaving.
    pub fn probe_history(&self) -> Vec<f64> {
        self.history.lock().expect("history lock").clone()
    }

    /// The most-refined decision record memoized for a pair, if any.
    ///
    /// Advisory: the record's *counts* (`matches`, `hashes`) and posterior
    /// summary are exact, but its `decision` is relative to whichever
    /// probe threshold evaluated the pair deepest. Re-deciding at a
    /// specific threshold is what [`probe`](Self::probe) does. Inspection
    /// does not refresh the pair's eviction recency — only probes and
    /// publications keep a memo warm.
    pub fn get(&self, i: u32, j: u32) -> Option<PairEstimate> {
        let key = (i.min(j), i.max(j));
        self.stripe(key)
            .lock()
            .expect("stripe lock")
            .entries
            .get(&key)
            .and_then(|m| m.estimate)
    }

    /// Owned snapshot of all memoized decision records, in unspecified
    /// order (stripe by stripe).
    pub fn snapshot_estimates(&self) -> Vec<((u32, u32), PairEstimate)> {
        let mut out = Vec::new();
        for s in &self.stripes {
            let g = s.lock().expect("stripe lock");
            out.extend(
                g.entries
                    .iter()
                    .filter_map(|(&k, m)| Some((k, m.estimate?))),
            );
        }
        out
    }

    /// The stripe owning a pair key.
    fn stripe(&self, key: (u32, u32)) -> &Mutex<Stripe> {
        let mixed = plasma_data::hash::mix64(((key.0 as u64) << 32) | key.1 as u64);
        &self.stripes[(mixed as usize) & (STRIPES - 1)]
    }

    /// Pins the evaluation schedule on first use; returns whether profile
    /// memos apply to a caller evaluating with `batch`.
    pub(crate) fn schedule_accepts(&self, batch: usize) -> bool {
        *self.schedule_batch.get_or_init(|| batch) == batch
    }

    /// Snapshot of a pair's memoized profile (empty when unknown),
    /// refreshing the pair's recency so LRU eviction sees the read.
    pub(crate) fn load_profile(&self, key: (u32, u32)) -> MatchProfile {
        let mut g = self.stripe(key).lock().expect("stripe lock");
        match g.entries.get_mut(&key) {
            Some(memo) => {
                memo.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                memo.profile.clone()
            }
            None => MatchProfile::new(),
        }
    }

    /// Publishes what one evaluation learned into the pair's stripe under
    /// a single lock acquisition: an extended profile + decision record
    /// (order-free deepest-wins merge) and/or a freshly computed exact
    /// similarity. No-op (lock-free) when there is nothing to publish.
    ///
    /// Publication is where the capacity policy bites: the stripe's byte
    /// tally is updated and, when over its share of the cap, memos are
    /// evicted ([`Stripe::evict_to_budget`]) before the lock drops — so
    /// the accounted footprint is back under the cap the moment any
    /// publication completes.
    pub(crate) fn publish(
        &self,
        key: (u32, u32),
        memo: Option<(MatchProfile, PairEstimate)>,
        exact: Option<f64>,
    ) {
        if memo.is_none() && exact.is_none() {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut g = self.stripe(key).lock().expect("stripe lock");
        let existed = g.entries.contains_key(&key);
        let entry = g.entries.entry(key).or_default();
        // A fresh entry contributes its whole footprint; an update only
        // its growth.
        let old_bytes = if existed { entry.byte_size() } else { 0 };
        if let Some((mut profile, est)) = memo {
            // Shrink before adopting so the stored capacity — what the
            // accounting charges — carries no push-growth slack.
            profile.shrink_to_fit();
            entry.profile.adopt_deeper(profile);
            match &mut entry.estimate {
                Some(old) if est.hashes >= old.hashes => *old = est,
                Some(_) => {}
                slot @ None => *slot = Some(est),
            }
        }
        if let Some(s) = exact {
            entry.exact = Some(s);
        }
        entry.last_used = stamp;
        let new_bytes = entry.byte_size();
        g.bytes = (g.bytes + new_bytes) - old_bytes;
        if new_bytes >= old_bytes {
            let total = self
                .bytes
                .fetch_add(new_bytes - old_bytes, Ordering::Relaxed)
                + (new_bytes - old_bytes);
            self.peak_bytes.fetch_max(total, Ordering::Relaxed);
        } else {
            self.bytes
                .fetch_sub(old_bytes - new_bytes, Ordering::Relaxed);
        }
        if let Some(budget) = self.capacity.stripe_budget() {
            let (entries, bytes) = g.evict_to_budget(budget, self.capacity.policy());
            if entries > 0 {
                self.bytes.fetch_sub(bytes as usize, Ordering::Relaxed);
                self.evicted_entries.fetch_add(entries, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Generates this probe's candidate set, serving the banded strategy
    /// from the epoch-persistent bucket cache when possible.
    ///
    /// The cached path is bit-identical to a cold
    /// [`crate::apss::generate_candidates`] run (see [`BandBuckets`]);
    /// only the work differs — a warm epoch is an `Arc` clone, a
    /// post-ingest epoch hashes only the new records. The cache rebuilds
    /// from scratch when the probe's `(bands, width)` shape differs from
    /// the cached one, is bypassed when the caller pinned a sketch
    /// snapshot *older* than the cache covers (possible under a
    /// concurrent [`grow`](Self::grow)), and walks the eviction ladder
    /// ([`enforce_bucket_capacity`](Self::enforce_bucket_capacity)) when
    /// its estimated footprint exceeds the [`CacheCapacity`] cap — it is
    /// recomputable knowledge, so eviction trades speed, never
    /// correctness.
    fn generate_candidates_cached(
        &self,
        sketches: &SketchSet,
        cfg: &ApssConfig,
    ) -> Arc<Vec<(u32, u32)>> {
        if let crate::apss::CandidateStrategy::Banded { bands, width } = cfg.candidates {
            let mut guard = self.band_buckets.lock().expect("bucket cache lock");
            let cache = guard.get_or_insert_with(|| BandBuckets::new(bands, width));
            if !cache.matches_shape(bands, width) {
                *cache = BandBuckets::new(bands, width);
            }
            if cache.covered() <= sketches.len() {
                let built = sketches.len() - cache.covered();
                let pairs = cache.extend_and_generate(sketches);
                self.bucket_build_records
                    .fetch_add(built as u64, Ordering::Relaxed);
                self.enforce_bucket_capacity(&mut guard);
                return pairs;
            }
            // This prober's snapshot predates the cache's watermark; the
            // cache cannot "un-cover" records, so serve the probe cold
            // and leave the cache for up-to-date probers.
        }
        Arc::new(crate::apss::generate_candidates(sketches, cfg))
    }

    /// Applies the byte cap to the bucket cache after an extension — the
    /// two-rung eviction ladder. Rung 1: partial eviction clears the
    /// *coldest* bands' maps ([`BandBuckets::evict_coldest_bands`]),
    /// keeping warm bands and the canonical pair/delta sets, so a corpus
    /// under memory pressure keeps its incremental probe path. Rung 2,
    /// only when even an all-maps-cleared cache cannot fit (the pair
    /// sets alone exceed the cap): drop the whole cache. Either rung
    /// trades rebuild work, never outputs — an evicted band's prefix
    /// re-buckets silently on the next growth. Refreshes the
    /// `bucket_bytes` mirror on every path.
    fn enforce_bucket_capacity(&self, slot: &mut Option<BandBuckets>) {
        let Some(cache) = slot.as_mut() else {
            self.bucket_bytes.store(0, Ordering::Relaxed);
            return;
        };
        if let Some(cap) = self.capacity.max_bytes() {
            if cache.byte_size() > cap {
                cache.evict_coldest_bands(cap);
                if cache.byte_size() > cap {
                    *slot = None;
                    self.bucket_bytes.store(0, Ordering::Relaxed);
                    return;
                }
            }
        }
        let bytes = slot.as_ref().map_or(0, BandBuckets::byte_size);
        self.bucket_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Generates the *delta* candidate set of a corpus growth: every pair
    /// `(i, j)` (canonical `i < j`, sorted unique) that touches a record
    /// in `[from, sketches.len())` — which, because a pair touches the new
    /// range exactly when its larger member does, is precisely the set of
    /// candidates the full probe gains over a probe of the `[0, from)`
    /// prefix. This is the candidate half of a watch evaluation
    /// (`crate::watch`).
    ///
    /// Exhaustive strategy: enumerated directly in lexicographic order.
    /// Banded strategy: served from the epoch-persistent [`BandBuckets`]
    /// when its watermark lines up — either this call extends the cache
    /// `from → n` (the common watch path, `O(new × bands)` keys, same
    /// byte-accounting and capacity drop as
    /// [`generate_candidates_cached`](Self::generate_candidates_cached)),
    /// or a prior call this epoch already did and recorded the same
    /// range. Any other watermark (shape change, capacity drop, cache
    /// never built) falls back to the cold
    /// [`plasma_lsh::candidates::banded_delta`], which never touches the
    /// shared cache — so the delta is bit-identical whether or not the
    /// bucket cache survived.
    pub(crate) fn generate_delta_candidates(
        &self,
        sketches: &SketchSet,
        cfg: &ApssConfig,
        from: usize,
    ) -> Arc<Vec<(u32, u32)>> {
        self.delta_builds.fetch_add(1, Ordering::Relaxed);
        let n = sketches.len();
        match cfg.candidates {
            crate::apss::CandidateStrategy::Exhaustive => {
                let mut out = Vec::new();
                for i in 0..n {
                    for j in (i + 1).max(from)..n {
                        out.push((i as u32, j as u32));
                    }
                }
                Arc::new(out)
            }
            crate::apss::CandidateStrategy::Banded { bands, width } => {
                if from >= n || bands == 0 {
                    // No growth (or a degenerate join shape) has no delta;
                    // `extend_and_generate` would not record a range for
                    // it either.
                    return Arc::new(Vec::new());
                }
                let mut guard = self.band_buckets.lock().expect("bucket cache lock");
                if let Some(cache) = guard.as_mut() {
                    if cache.matches_shape(bands, width) {
                        if cache.covered() == from {
                            self.bucket_build_records
                                .fetch_add((n - from) as u64, Ordering::Relaxed);
                            cache.extend_and_generate(sketches);
                            let delta = cache
                                .delta_covering(from, n)
                                .expect("extension covered exactly [from, n)");
                            self.enforce_bucket_capacity(&mut guard);
                            return delta;
                        }
                        if cache.covered() == n {
                            if let Some(delta) = cache.delta_covering(from, n) {
                                // Another watch (or probe) already paid for
                                // this epoch's extension; its recorded
                                // fresh slice is exactly our delta.
                                return delta;
                            }
                        }
                    }
                }
                drop(guard);
                Arc::new(plasma_lsh::candidates::banded_delta(
                    sketches, bands, width, from,
                ))
            }
        }
    }

    /// Runs a cached probe: candidates whose profile already covers every
    /// batch step the decision walk visits skip hash comparison entirely
    /// (`cache_hits`); partially covered pairs resume from their deepest
    /// memoized step; unknown pairs are evaluated fresh. Workers publish
    /// extended profiles (and freshly computed exact similarities) into
    /// their lock stripe as they go.
    ///
    /// **Determinism:** the returned pairs, estimates, and decision
    /// counters (`candidates`/`pruned`/`accepted`/`exhausted`) are bit
    /// identical to [`crate::apss::apss_with_sketches`] over the same
    /// sketches at every `parallelism` setting, whatever this cache has
    /// memoized, whatever other sessions do concurrently, and whatever
    /// the [`CacheCapacity`] has evicted. The work
    /// counters (`hashes_compared`, `cache_hits`) depend on cache warmth:
    /// they are deterministic for any serialized probe order and may
    /// redistribute between racing probes that evaluate the same pair
    /// simultaneously (both pay; the published memo is identical either
    /// way).
    ///
    /// Profiles are indexed by the batch schedule pinned at the first
    /// probe; a probe whose [`plasma_lsh::BayesParams::batch`] differs
    /// bypasses profile memos (still reusing sketches and exact
    /// similarities) rather than corrupting them. Keep `batch` consistent
    /// across sessions sharing a cache — [`CacheRegistry`] fingerprints it
    /// for exactly this reason.
    pub fn probe(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        let result = self.probe_silent(records, measure, threshold, cfg);
        self.history.lock().expect("history lock").push(threshold);
        result
    }

    /// [`probe`](Self::probe) without the probe-history append: the full
    /// evaluation a watch registration performs. Watch evaluations are
    /// system-driven, not client probes, so they must not perturb
    /// [`probe_history`](Self::probe_history) (which operators and the
    /// min-variance curve bookkeeping read as the list of *client*
    /// thresholds). They still deepen the shared memo pool and count
    /// toward lifetime `cache_hits`.
    pub(crate) fn probe_silent(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        let start = std::time::Instant::now();
        let sketches = self.pin_snapshot(records);
        let cands = self.generate_candidates_cached(&sketches, cfg);
        self.evaluate_candidates(records, measure, threshold, cfg, &sketches, cands, start)
    }

    /// Evaluates only the candidates a corpus growth added — every pair
    /// touching a record in `[from, len)` — exactly as
    /// [`probe`](Self::probe) would evaluate them inside a full run. Pair
    /// evaluation is pair-local (sketch prefixes never change, and the
    /// decision walk reads nothing but the two sketches and its own
    /// memo), so the result is bit-identical to the corresponding slice
    /// of a full probe: this is the delta half of a watch evaluation, and
    /// the equivalence `concat(deltas) == cold probe` is pinned by
    /// `crates/core/tests/watch_differential.rs`. Like
    /// [`probe_silent`](Self::probe_silent), it leaves the probe history
    /// untouched.
    // Production watches go through the shared-slice path
    // (`probe_delta_with`); this one-shot composition is kept as the
    // reference implementation their bit-identity is tested against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn probe_delta(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
        from: usize,
    ) -> ApssResult {
        let start = std::time::Instant::now();
        let sketches = self.pin_snapshot(records);
        let cands = self.generate_delta_candidates(&sketches, cfg, from);
        self.evaluate_candidates(records, measure, threshold, cfg, &sketches, cands, start)
    }

    /// The evaluation half of [`probe_delta`](Self::probe_delta) against
    /// an already-generated candidate slice — the registry's single-pass
    /// multi-watch path generates each epoch's slice once per candidate
    /// shape and evaluates every watch from it. Bit-identical to
    /// `probe_delta` with the same `cfg`: the slice is exactly what
    /// [`generate_delta_candidates`](Self::generate_delta_candidates)
    /// would return, and evaluation reads nothing else.
    pub(crate) fn probe_delta_with(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
        sketches: &Arc<SketchSet>,
        cands: Arc<Vec<(u32, u32)>>,
    ) -> ApssResult {
        let start = std::time::Instant::now();
        assert_eq!(
            records.len(),
            sketches.len(),
            "delta evaluation supplied {} records but the pinned snapshot sketches {}",
            records.len(),
            sketches.len()
        );
        self.evaluate_candidates(records, measure, threshold, cfg, sketches, cands, start)
    }

    /// Pins one corpus epoch for a whole evaluation: a concurrent `grow`
    /// swaps the shared snapshot but cannot change what this evaluation
    /// reads.
    ///
    /// Candidates come from the sketch snapshot, so a caller holding a
    /// pre-growth record slice would receive pairs indexing records it
    /// never supplied (or crash under `exact_on_accept`). Fail loudly
    /// instead: a grown cache must be probed with the grown corpus
    /// (drive growth through `crate::streaming::StreamingSession`,
    /// whose forks stay in sync by construction).
    pub(crate) fn pin_snapshot(&self, records: &[SparseVector]) -> Arc<SketchSet> {
        let sketches = self.sketches();
        assert_eq!(
            records.len(),
            sketches.len(),
            "probe supplied {} records but the cache sketches {} (epoch {}); \
             re-sync the corpus before probing a grown cache",
            records.len(),
            sketches.len(),
            sketches.epoch()
        );
        sketches
    }

    /// The evaluation core shared by full probes and watch deltas: runs
    /// the decision walk over an explicit candidate list against a pinned
    /// sketch snapshot, reading and publishing memos through the lock
    /// stripes. Output order is candidate order, so a sorted candidate
    /// list yields pairs and estimates in canonical `(i, j)` order.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_candidates(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
        sketches: &SketchSet,
        cands: Arc<Vec<(u32, u32)>>,
        start: std::time::Instant,
    ) -> ApssResult {
        let engine = plasma_lsh::bayes::BayesLsh::new(sketches.family(), cfg.bayes);
        let threads = crate::apss::eval_threads(cfg, cands.len());
        let profiled = self.schedule_accepts(cfg.bayes.batch);

        let eval_chunk = |chunk: &[(u32, u32)]| -> ChunkOut {
            let mut table = engine.probe_table(threshold);
            let mut stats = ApssStats::default();
            let mut pairs = Vec::new();
            let mut estimates = Vec::with_capacity(chunk.len());
            for &(i, j) in chunk {
                let key = (i, j);
                // Read phase: lift this pair's memos out of its stripe,
                // refreshing its recency stamp for the eviction policy.
                let (mut profile, known_exact) = {
                    let mut g = self.stripe(key).lock().expect("stripe lock");
                    match g.entries.get_mut(&key) {
                        Some(memo) => {
                            memo.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                            (
                                if profiled {
                                    memo.profile.clone()
                                } else {
                                    MatchProfile::new()
                                },
                                if cfg.exact_on_accept {
                                    memo.exact
                                } else {
                                    None
                                },
                            )
                        }
                        None => (MatchProfile::new(), None),
                    }
                };
                let had_profile = !profile.is_empty();
                // Evaluate without holding any lock.
                let (est, new_hashes) = if profiled {
                    let out =
                        table.evaluate_profiled(sketches, i as usize, j as usize, &mut profile);
                    (out.estimate, out.new_hashes)
                } else {
                    let est = table.evaluate_pair(sketches, i as usize, j as usize);
                    (est, est.hashes)
                };
                stats.hashes_compared += new_hashes as u64;
                if new_hashes == 0 {
                    stats.cache_hits += 1;
                }
                match est.decision {
                    PairDecision::Pruned => stats.pruned += 1,
                    PairDecision::Accepted => stats.accepted += 1,
                    PairDecision::Exhausted => stats.exhausted += 1,
                }
                let mut fresh_exact = None;
                if est.decision != PairDecision::Pruned {
                    let similarity = if cfg.exact_on_accept {
                        known_exact.unwrap_or_else(|| {
                            let s = measure.compute(&records[i as usize], &records[j as usize]);
                            fresh_exact = Some(s);
                            s
                        })
                    } else {
                        est.map_similarity
                    };
                    if similarity >= threshold {
                        pairs.push(SimilarPair { i, j, similarity });
                    }
                }
                // Publish phase: fold what this evaluation learned back
                // into the stripe. A full cache hit publishes nothing —
                // it re-derived only already-published knowledge.
                let memo = (profiled && (new_hashes > 0 || !had_profile)).then_some((profile, est));
                self.publish(key, memo, fresh_exact);
                estimates.push((i, j, est));
            }
            ChunkOut {
                pairs,
                estimates,
                stats,
            }
        };

        let chunk_outs: Vec<ChunkOut> = if threads <= 1 {
            vec![eval_chunk(&cands)]
        } else {
            let per_chunk = cands.len().div_ceil(threads);
            cands.par_chunks(per_chunk).map(eval_chunk).collect()
        };

        // Assemble in candidate order: chunk outputs concatenate back into
        // the deterministic sequential order.
        let mut stats = ApssStats {
            candidates: cands.len() as u64,
            ..Default::default()
        };
        let mut pairs = Vec::new();
        let mut estimates = Vec::with_capacity(cands.len());
        for out in chunk_outs {
            stats.absorb(&out.stats);
            pairs.extend(out.pairs);
            estimates.extend(out.estimates);
        }
        stats.process_seconds = start.elapsed().as_secs_f64();
        self.hits.fetch_add(stats.cache_hits, Ordering::Relaxed);
        ApssResult {
            threshold,
            pairs,
            estimates,
            stats,
        }
    }
}

/// One worker's share of a cached probe, in chunk order.
struct ChunkOut {
    pairs: Vec<SimilarPair>,
    estimates: Vec<(u32, u32, PairEstimate)>,
    stats: ApssStats,
}

/// Single-session façade over a [`SharedKnowledgeCache`].
///
/// Owns an `Arc` to the shared form, so a session-private cache can later
/// be handed to other sessions via [`shared`](Self::shared) without
/// rebuilding sketches. The `&mut self` probe signature is kept for
/// callers that want exclusive-use semantics; it delegates to the
/// lock-striped implementation.
///
/// ```
/// use plasma_core::apss::{build_sketches, ApssConfig};
/// use plasma_core::KnowledgeCache;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
/// let mut cache = KnowledgeCache::new(sketches);
/// let first = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
/// // Re-probing the same threshold is a pure cache hit: zero new hash
/// // comparisons, identical pairs.
/// let again = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
/// assert_eq!(again.stats.hashes_compared, 0);
/// assert_eq!(again.stats.cache_hits, again.stats.candidates);
/// assert_eq!(again.pairs, first.pairs);
/// assert!(!cache.is_empty());
/// ```
pub struct KnowledgeCache {
    shared: Arc<SharedKnowledgeCache>,
}

impl KnowledgeCache {
    /// Wraps freshly built sketches with an empty, unbounded memo pool.
    pub fn new(sketches: SketchSet) -> Self {
        Self::with_capacity(sketches, CacheCapacity::unbounded())
    }

    /// Wraps freshly built sketches with a memo pool governed by
    /// `capacity` (see [`SharedKnowledgeCache::with_capacity`]).
    ///
    /// ```
    /// use plasma_core::apss::{build_sketches, ApssConfig};
    /// use plasma_core::cache::CacheCapacity;
    /// use plasma_core::KnowledgeCache;
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    /// use plasma_data::similarity::Similarity;
    ///
    /// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
    /// let cfg = ApssConfig::default();
    /// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
    /// // A zero-byte cap memoizes nothing — probes still return the
    /// // exact unbounded-cache output, they just pay fresh cost.
    /// let mut cache = KnowledgeCache::with_capacity(sketches, CacheCapacity::bounded(0));
    /// let first = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
    /// let again = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
    /// assert_eq!(again.pairs, first.pairs);
    /// assert_eq!(cache.memory_stats().memo_bytes, 0);
    /// ```
    pub fn with_capacity(sketches: SketchSet, capacity: CacheCapacity) -> Self {
        Self {
            shared: Arc::new(SharedKnowledgeCache::with_capacity(sketches, capacity)),
        }
    }

    /// The memory policy in force.
    pub fn capacity(&self) -> CacheCapacity {
        self.shared.capacity()
    }

    /// Memory and eviction statistics (see
    /// [`SharedKnowledgeCache::memory_stats`]).
    pub fn memory_stats(&self) -> CacheMemoryStats {
        self.shared.memory_stats()
    }

    /// The underlying shareable cache; clone the `Arc` to attach more
    /// sessions ([`crate::session::Session::with_shared_cache`]).
    pub fn shared(&self) -> &Arc<SharedKnowledgeCache> {
        &self.shared
    }

    /// Consumes the façade, yielding the shareable cache.
    pub fn into_shared(self) -> Arc<SharedKnowledgeCache> {
        self.shared
    }

    /// A snapshot of the cached sketches (see
    /// [`SharedKnowledgeCache::sketches`]).
    pub fn sketches(&self) -> Arc<SketchSet> {
        self.shared.sketches()
    }

    /// Number of pairs with a memoized profile. Sums the lock stripes of
    /// the sharded storage — O([`STRIPES`]) lock acquisitions, not O(1).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// True when no pair memos are held in any stripe.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// Thresholds probed so far, in append order. Owned (not borrowed):
    /// the history lives behind the shared cache's mutex, and other
    /// holders of [`shared`](Self::shared) may append between calls.
    pub fn probe_history(&self) -> Vec<f64> {
        self.shared.probe_history()
    }

    /// The most-refined decision record memoized for a pair, if any (see
    /// [`SharedKnowledgeCache::get`] for the decision-threshold caveat).
    pub fn get(&self, i: u32, j: u32) -> Option<PairEstimate> {
        self.shared.get(i, j)
    }

    /// Owned snapshot of all memoized decision records.
    pub fn snapshot_estimates(&self) -> Vec<((u32, u32), PairEstimate)> {
        self.shared.snapshot_estimates()
    }

    /// Runs a cached probe; see [`SharedKnowledgeCache::probe`].
    pub fn probe(
        &mut self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        self.shared.probe(records, measure, threshold, cfg)
    }
}

/// Capacity limits for a [`CacheRegistry`]: how many dataset caches a
/// serving process keeps resident, and how many total bytes (sketches +
/// accounted memos, summed over every registered cache) they may hold.
///
/// Limits are enforced at lookup boundaries: every `get_or_build`
/// re-checks them after refreshing recency. Footprint added *between*
/// lookups — memo publication during probes, or streamed sketch growth
/// via [`SharedKnowledgeCache::grow`] — is accounted at the next lookup,
/// not instantaneously.
///
/// When a limit is exceeded after a lookup, the registry drops whole
/// caches least-recently-*looked-up* first. The cache returned by the
/// triggering lookup is never its own victim, so a single dataset larger
/// than `max_total_bytes` still serves (the cap then bounds everything
/// *else*). Dropping a cache from the registry does not free memory still
/// referenced by live sessions' `Arc`s; it stops the registry keeping it
/// alive and lets the next lookup rebuild.
///
/// ```
/// use plasma_core::cache::RegistryCapacity;
///
/// let cap = RegistryCapacity::unbounded()
///     .with_max_caches(8)
///     .with_max_total_bytes(512 << 20); // 512 MiB across all datasets
/// assert_eq!(cap.max_caches(), Some(8));
/// assert_eq!(cap.max_total_bytes(), Some(512 << 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryCapacity {
    max_caches: Option<usize>,
    max_total_bytes: Option<usize>,
}

impl RegistryCapacity {
    /// No limits (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps the number of resident dataset caches.
    pub fn with_max_caches(mut self, max: usize) -> Self {
        self.max_caches = Some(max);
        self
    }

    /// Caps total resident bytes (sketches + accounted memo bytes) across
    /// all dataset caches.
    pub fn with_max_total_bytes(mut self, max: usize) -> Self {
        self.max_total_bytes = Some(max);
        self
    }

    /// The cache-count cap, `None` when uncapped.
    pub fn max_caches(&self) -> Option<usize> {
        self.max_caches
    }

    /// The total-byte cap, `None` when uncapped.
    pub fn max_total_bytes(&self) -> Option<usize> {
        self.max_total_bytes
    }
}

/// One registered dataset cache: its build latch plus the recency stamp
/// registry-level eviction orders by.
struct RegistryEntry {
    /// The sketch build runs under this `OnceLock`, so first-comers for
    /// the *same* dataset serialize while other datasets' lookups never
    /// block.
    latch: Arc<OnceLock<Arc<SharedKnowledgeCache>>>,
    /// Stamp of the last `get_or_build` that touched this entry.
    last_used: u64,
}

/// State behind the registry mutex.
#[derive(Default)]
struct RegistryInner {
    caches: FxHashMap<u128, RegistryEntry>,
    /// Monotonic lookup clock feeding [`RegistryEntry::last_used`].
    clock: u64,
}

/// Registry of shared knowledge caches keyed by dataset fingerprint — the
/// serving-traffic entry point: every session over the same corpus and
/// sketch configuration gets the same [`SharedKnowledgeCache`], so sketch
/// building happens once and pair memos accumulate across all users.
///
/// A registry can bound its footprint on two axes: per-cache memo bytes
/// (a [`CacheCapacity`] applied to every cache it builds) and
/// process-wide totals (a [`RegistryCapacity`] evicting whole
/// least-recently-used caches). Both default to unbounded.
///
/// ```
/// use plasma_core::apss::ApssConfig;
/// use plasma_core::cache::CacheRegistry;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let registry = CacheRegistry::new();
/// let a = registry.get_or_build(&ds.records, Similarity::Cosine, &cfg);
/// let b = registry.get_or_build(&ds.records, Similarity::Cosine, &cfg);
/// // Same corpus + config → the very same cache.
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(registry.len(), 1);
/// ```
///
/// Bounding both axes for a long-lived server:
///
/// ```
/// use plasma_core::apss::ApssConfig;
/// use plasma_core::cache::{CacheCapacity, CacheRegistry, RegistryCapacity};
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let registry = CacheRegistry::with_capacity(
///     RegistryCapacity::unbounded().with_max_caches(1),
///     CacheCapacity::bounded(1 << 20),
/// );
/// let cfg = ApssConfig::default();
/// let first = GaussianSpec::new("a", 30, 6, 2).generate(1);
/// let second = GaussianSpec::new("b", 30, 6, 2).generate(2);
/// let a = registry.get_or_build(&first.records, Similarity::Cosine, &cfg);
/// assert_eq!(a.capacity().max_bytes(), Some(1 << 20));
/// // A second dataset evicts the first: max_caches is 1.
/// registry.get_or_build(&second.records, Similarity::Cosine, &cfg);
/// assert_eq!(registry.len(), 1);
/// assert_eq!(registry.evicted_caches(), 1);
/// // `a` keeps working — eviction only drops the registry's reference.
/// assert!(!a.sketches().is_empty());
/// ```
#[derive(Default)]
pub struct CacheRegistry {
    inner: Mutex<RegistryInner>,
    capacity: RegistryCapacity,
    /// Memory policy handed to every cache this registry builds.
    cache_capacity: CacheCapacity,
    /// Lifetime count of caches evicted to enforce [`capacity`](Self::capacity).
    evicted: AtomicU64,
}

impl CacheRegistry {
    /// An empty, unbounded registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry with process-wide limits (`capacity`) and a
    /// per-cache memo-byte policy applied to every cache it builds
    /// (`cache_capacity`).
    pub fn with_capacity(capacity: RegistryCapacity, cache_capacity: CacheCapacity) -> Self {
        Self {
            capacity,
            cache_capacity,
            ..Self::default()
        }
    }

    /// The process-wide limits in force.
    pub fn capacity(&self) -> RegistryCapacity {
        self.capacity
    }

    /// The per-cache memo policy applied to caches this registry builds.
    pub fn cache_capacity(&self) -> CacheCapacity {
        self.cache_capacity
    }

    /// Total resident bytes across all registered caches: sketch bytes
    /// plus accounted memo bytes, skipping entries whose first build is
    /// still in flight. A snapshot — concurrent probes keep publishing
    /// while it sums.
    pub fn total_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .caches
            .values()
            .filter_map(|e| e.latch.get())
            .map(|c| c.total_bytes())
            .sum()
    }

    /// Lifetime count of caches evicted by capacity enforcement (manual
    /// [`evict`](Self::evict)/[`clear`](Self::clear) calls not included).
    pub fn evicted_caches(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Fingerprint of `(records, measure, sketch/schedule config)`. Two
    /// workloads are meant to share a cache exactly when their
    /// fingerprints agree: same record contents, same measure, same
    /// `n_hashes`, same hash seed, and the same evaluation batch (profiles
    /// are indexed by the batch schedule). For a streamed corpus the
    /// registry key is the **epoch-0 fingerprint** — the corpus the cache
    /// was built over; growth ([`SharedKnowledgeCache::grow`]) mutates
    /// the registered cache in place rather than minting a new entry.
    /// Note the converse: looking up the *grown* corpus by value hashes
    /// to a different fingerprint and builds an independent cold cache —
    /// reach a grown lineage through the `Arc` its streaming sessions
    /// hold (or the epoch-0 lookup), not by re-fingerprinting the grown
    /// records. The BayesLSH accuracy knobs
    /// (ε/δ/γ) are *not* fingerprinted — profiles memoize raw match
    /// counts, which are valid under any stopping parameters.
    ///
    /// The fingerprint is 128 bits from two domain-separated passes of the
    /// workspace's Fx hasher. Fx is not collision-resistant against
    /// adversarial inputs; a registry fronting untrusted uploads should
    /// key on an external identity (dataset id / content digest) instead.
    /// [`get_or_build`](Self::get_or_build) additionally cross-checks the
    /// record count of whatever the lookup returns.
    pub fn fingerprint(records: &[SparseVector], measure: Similarity, cfg: &ApssConfig) -> u128 {
        use std::hash::Hasher;
        let pass = |domain: u64| {
            let mut h = FxHasher::default();
            h.write_u64(domain);
            h.write_u64(match measure {
                Similarity::Jaccard => 0x4a43,
                Similarity::Cosine => 0x434f,
            });
            h.write_usize(cfg.n_hashes);
            h.write_u64(cfg.seed);
            h.write_usize(cfg.bayes.batch);
            h.write_usize(records.len());
            for r in records {
                h.write_usize(r.nnz());
                for &d in r.dims() {
                    h.write_u32(d);
                }
                for &w in r.weights() {
                    h.write_u64(w.to_bits());
                }
            }
            h.finish()
        };
        ((pass(0x505A_u64) as u128) << 64) | pass(0xA0A5_u64) as u128
    }

    /// The cache for this workload, building sketches (and registering the
    /// new cache) on first sight of the fingerprint. Concurrent
    /// first-comers for the same dataset serialize on that dataset's
    /// build latch instead of duplicating the sketch work; callers for
    /// other datasets are never blocked by an in-flight build.
    ///
    /// Every lookup refreshes the dataset's registry recency, then
    /// enforces the [`RegistryCapacity`] limits: while the cache count or
    /// byte total is over its cap, the least-recently-looked-up *other*
    /// cache is dropped from the registry.
    pub fn get_or_build(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        cfg: &ApssConfig,
    ) -> Arc<SharedKnowledgeCache> {
        let fp = Self::fingerprint(records, measure, cfg);
        let latch = {
            let mut inner = self.inner.lock().expect("registry lock");
            inner.clock += 1;
            let stamp = inner.clock;
            let entry = inner.caches.entry(fp).or_insert_with(|| RegistryEntry {
                latch: Arc::default(),
                last_used: stamp,
            });
            entry.last_used = stamp;
            entry.latch.clone()
        };
        let cache = latch
            .get_or_init(|| {
                let (sketches, _) = build_sketches(records, measure, cfg);
                Arc::new(SharedKnowledgeCache::with_capacity(
                    sketches,
                    self.cache_capacity,
                ))
            })
            .clone();
        // Cheap guard against a fingerprint collision handing this caller
        // another dataset's cache. A registered cache that has since been
        // grown ([`SharedKnowledgeCache::grow`]) still serves its
        // lineage's epoch-0 fingerprint: it legitimately covers *more*
        // records than the corpus that built it, never fewer.
        let sketched = cache.sketches().len();
        assert!(
            sketched == records.len() || (cache.epoch() > 0 && sketched > records.len()),
            "cache registry fingerprint collision: cached sketches cover {} records at epoch {}, workload has {}",
            sketched,
            cache.epoch(),
            records.len()
        );
        self.enforce_capacity(fp);
        cache
    }

    /// Registers an already-built cache under an explicit fingerprint —
    /// the durable-recovery entry point: a cache restored warm from a
    /// snapshot re-enters the registry under its *publish-time* (epoch-0)
    /// fingerprint, so subsequent [`get_or_build`](Self::get_or_build)
    /// lookups for the original corpus find the recovered lineage instead
    /// of cold-building a duplicate. Returns the cache registered under
    /// the fingerprint — the existing one when it was already latched
    /// (first registration wins, the same race rule `get_or_build`
    /// applies to concurrent builders).
    pub fn install(
        &self,
        fingerprint: u128,
        cache: Arc<SharedKnowledgeCache>,
    ) -> Arc<SharedKnowledgeCache> {
        let latch = {
            let mut inner = self.inner.lock().expect("registry lock");
            inner.clock += 1;
            let stamp = inner.clock;
            let entry = inner
                .caches
                .entry(fingerprint)
                .or_insert_with(|| RegistryEntry {
                    latch: Arc::default(),
                    last_used: stamp,
                });
            entry.last_used = stamp;
            entry.latch.clone()
        };
        let installed = latch.get_or_init(|| cache).clone();
        self.enforce_capacity(fingerprint);
        installed
    }

    /// Drops least-recently-used caches until the registry fits its
    /// limits, never evicting `keep` (the fingerprint whose lookup is
    /// enforcing) or entries whose first build is still in flight.
    fn enforce_capacity(&self, keep: u128) {
        let cap_count = self.capacity.max_caches();
        let cap_bytes = self.capacity.max_total_bytes();
        if cap_count.is_none() && cap_bytes.is_none() {
            return;
        }
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            let count = inner.caches.len();
            let over_count = cap_count.is_some_and(|max| count > max);
            let over_bytes = cap_bytes.is_some_and(|max| {
                inner
                    .caches
                    .values()
                    .filter_map(|e| e.latch.get())
                    .map(|c| c.total_bytes())
                    .sum::<usize>()
                    > max
            });
            if !over_count && !over_bytes {
                return;
            }
            let victim = inner
                .caches
                .iter()
                .filter(|(&fp, e)| fp != keep && e.latch.get().is_some())
                .min_by_key(|(&fp, e)| (e.last_used, fp))
                .map(|(&fp, _)| fp);
            match victim {
                Some(fp) => {
                    inner.caches.remove(&fp);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                // Nothing evictable (only `keep` and in-flight builds
                // remain): the requested dataset may alone exceed the
                // caps; serve it anyway.
                None => return,
            }
        }
    }

    /// Opens a [`crate::session::Session`] attached to this registry's
    /// cache for the dataset (building it if needed) — the one-call path
    /// for "another user starts exploring the same corpus".
    pub fn session(
        &self,
        records: Vec<SparseVector>,
        measure: Similarity,
        cfg: ApssConfig,
    ) -> crate::session::Session {
        let cache = self.get_or_build(&records, measure, &cfg);
        crate::session::Session::from_records(records, measure, cfg).with_shared_cache(cache)
    }

    /// Number of registered caches (including any whose first build is
    /// still in flight).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").caches.len()
    }

    /// True when no cache is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("registry lock").caches.is_empty()
    }

    /// Drops the cache for a fingerprint, if registered. Sessions already
    /// holding the `Arc` keep working; the next `get_or_build` rebuilds.
    pub fn evict(&self, fingerprint: u128) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .caches
            .remove(&fingerprint)
            .is_some()
    }

    /// Drops every registered cache (same `Arc` semantics as
    /// [`evict`](Self::evict)).
    pub fn clear(&self) {
        self.inner.lock().expect("registry lock").caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apss::{apss, apss_with_sketches, build_sketches};
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::Similarity;

    fn dataset() -> Vec<plasma_data::vector::SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("t", 50, 8, 3)
        }
        .generate(21)
        .records
    }

    #[test]
    fn shared_slice_delta_is_bit_identical_to_probe_delta() {
        let all = dataset();
        let cfg = ApssConfig {
            candidates: crate::apss::CandidateStrategy::Banded { bands: 8, width: 8 },
            parallelism: Some(1),
            ..ApssConfig::default()
        };
        // Two cold caches over the same sketches, so work counters (not
        // just outputs) are comparable between the two delta paths.
        let (sketches, _) = build_sketches(&all, Similarity::Cosine, &cfg);
        let a_cache = SharedKnowledgeCache::new(sketches.clone());
        let b_cache = SharedKnowledgeCache::new(sketches);

        let a = a_cache.probe_delta(&all, Similarity::Cosine, 0.6, &cfg, 40);
        let pinned = b_cache.pin_snapshot(&all);
        let slice = b_cache.generate_delta_candidates(&pinned, &cfg, 40);
        let b = b_cache.probe_delta_with(&all, Similarity::Cosine, 0.6, &cfg, &pinned, slice);

        assert_same_output(&a, &b, "shared-slice delta");
        assert_eq!(a.stats.candidates, b.stats.candidates);
        assert_eq!(a.stats.pruned, b.stats.pruned);
        assert_eq!(a.stats.accepted, b.stats.accepted);
        assert_eq!(a.stats.hashes_compared, b.stats.hashes_compared);
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits);
        assert_eq!(a_cache.delta_builds(), 1);
        assert_eq!(b_cache.delta_builds(), 1);
    }

    fn assert_same_output(a: &ApssResult, b: &ApssResult, label: &str) {
        assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: pair count");
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!((x.i, x.j), (y.i, y.j), "{label}");
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "{label}");
        }
        assert_eq!(a.estimates.len(), b.estimates.len(), "{label}");
        for (x, y) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!((x.0, x.1), (y.0, y.1), "{label}");
            assert_eq!(x.2.decision, y.2.decision, "{label}");
            assert_eq!(x.2.matches, y.2.matches, "{label}");
            assert_eq!(x.2.hashes, y.2.hashes, "{label}");
            assert_eq!(
                x.2.map_similarity.to_bits(),
                y.2.map_similarity.to_bits(),
                "{label}"
            );
        }
    }

    #[test]
    fn cached_probe_is_bit_identical_to_fresh_probe() {
        // Stronger than the paper needs: profile-backed re-evaluation
        // replays the fresh schedule, so a warm cache returns *exactly*
        // the fresh result, not an approximation of it.
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches.clone());
        let first = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let second = cache.probe(&records, Similarity::Cosine, 0.6, &cfg);
        let fresh_hi = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.9, &cfg);
        let fresh_lo = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.6, &cfg);
        assert_same_output(&first, &fresh_hi, "cold probe vs fresh");
        assert_same_output(&second, &fresh_lo, "warm probe vs fresh");
        assert!(first.stats.cache_hits == 0);
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn cache_reduces_hash_work_on_reprobe() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.95, &cfg);
        let cached = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let fresh = apss(&records, Similarity::Cosine, 0.9, &cfg);
        assert!(
            cached.stats.hashes_compared < fresh.stats.hashes_compared,
            "cache should save hash comparisons: {} vs {}",
            cached.stats.hashes_compared,
            fresh.stats.hashes_compared
        );
    }

    #[test]
    fn probe_history_records_thresholds() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        cache.probe(&records, Similarity::Cosine, 0.5, &cfg);
        assert_eq!(cache.probe_history(), vec![0.9, 0.5]);
        assert!(!cache.is_empty());
        assert_eq!(cache.len(), cache.snapshot_estimates().len());
    }

    #[test]
    fn get_returns_memoized_estimate() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        let r = cache.probe(&records, Similarity::Cosine, 0.8, &cfg);
        let (i, j, est) = r.estimates[0];
        let cached = cache.get(i, j).expect("estimate must be memoized");
        assert_eq!(cached.hashes, est.hashes);
    }

    #[test]
    fn mismatched_batch_bypasses_profiles_but_stays_correct() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let cache = SharedKnowledgeCache::new(sketches.clone());
        cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        // A probe with a different batch schedule cannot use (or corrupt)
        // the memoized profiles, but its output is still exactly the
        // fresh result for its own schedule.
        let other = ApssConfig {
            bayes: plasma_lsh::BayesParams {
                batch: 16,
                ..cfg.bayes
            },
            ..cfg
        };
        let degraded = cache.probe(&records, Similarity::Cosine, 0.9, &other);
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.9, &other);
        assert_same_output(&degraded, &fresh, "mismatched batch vs fresh");
        assert_eq!(degraded.stats.cache_hits, 0);
        // And the pinned schedule still works afterwards.
        let again = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        assert_eq!(again.stats.hashes_compared, 0);
    }

    #[test]
    fn registry_dedupes_by_fingerprint() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let registry = CacheRegistry::new();
        let a = registry.get_or_build(&records, Similarity::Cosine, &cfg);
        let b = registry.get_or_build(&records, Similarity::Cosine, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
        // A different hash seed is a different sketch universe.
        let reseeded = ApssConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let c = registry.get_or_build(&records, Similarity::Cosine, &reseeded);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.len(), 2);
        let fp = CacheRegistry::fingerprint(&records, Similarity::Cosine, &cfg);
        assert!(registry.evict(fp));
        assert_eq!(registry.len(), 1);
        registry.clear();
        assert!(registry.is_empty());
    }
}
