//! The knowledge cache.
//!
//! §2.2.1: "The memoization can also be viewed as a knowledge cache,
//! enabling one to speed up subsequent iterations of the algorithm by
//! re-using previously computed and memoized information." Two layers are
//! cached:
//!
//! 1. **Sketches** — built once per dataset; §2.3.3 shows initial sketch
//!    generation dominates perceived latency, so skipping it on re-probes
//!    is the big win.
//! 2. **Pair estimates** — the `(m, n, MAP, variance)` record of every
//!    evaluated candidate; a re-probe at a new threshold re-decides from
//!    the cached hash prefix and only hashes further when inconclusive.

use plasma_data::hash::FxHashMap;
use plasma_lsh::bayes::{BayesLsh, PairDecision, PairEstimate};
use plasma_lsh::sketch::SketchSet;
use rayon::prelude::*;

use crate::apss::{ApssConfig, ApssResult, ApssStats, SimilarPair};

/// Memoized state shared across probes of one dataset.
pub struct KnowledgeCache {
    sketches: SketchSet,
    estimates: FxHashMap<(u32, u32), PairEstimate>,
    /// Exact similarities computed for accepted pairs (when the probe ran
    /// with `exact_on_accept`); re-probes reuse them instead of recomputing
    /// dot products.
    exact: FxHashMap<(u32, u32), f64>,
    probes: Vec<f64>,
}

impl KnowledgeCache {
    /// Wraps freshly built sketches with an empty estimate cache.
    pub fn new(sketches: SketchSet) -> Self {
        Self {
            sketches,
            estimates: FxHashMap::default(),
            exact: FxHashMap::default(),
            probes: Vec::new(),
        }
    }

    /// The cached sketches.
    pub fn sketches(&self) -> &SketchSet {
        &self.sketches
    }

    /// Number of memoized pair estimates.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// True when no estimates are memoized yet.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Thresholds probed so far, in order.
    pub fn probe_history(&self) -> &[f64] {
        &self.probes
    }

    /// Cached estimate for a pair, if any.
    pub fn get(&self, i: u32, j: u32) -> Option<&PairEstimate> {
        self.estimates.get(&(i.min(j), i.max(j)))
    }

    /// Iterates all memoized estimates.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &PairEstimate)> {
        self.estimates.iter()
    }

    /// Runs a cached probe: candidates answered from the cache skip
    /// sketch-prefix comparison entirely when the cached posterior already
    /// decides at the new threshold.
    ///
    /// Evaluation is chunk-parallel under [`ApssConfig::parallelism`]: the
    /// first phase reads the memo maps and sketches immutably with one
    /// `ProbeTable` per worker, and the second phase folds results back
    /// into the cache in candidate order — so the returned pairs,
    /// estimates, and counters are bit-identical at every thread count.
    pub fn probe(
        &mut self,
        records: &[plasma_data::vector::SparseVector],
        measure: plasma_data::similarity::Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        let start = std::time::Instant::now();
        let engine = BayesLsh::new(self.sketches.family(), cfg.bayes);
        let cands = crate::apss::generate_candidates(&self.sketches, cfg);
        let threads = crate::apss::eval_threads(cfg, cands.len());

        // Phase 1: evaluate every candidate against the cache, read-only.
        let rows: Vec<CachedRow> = {
            let eval_chunk = |chunk: &[(u32, u32)]| -> Vec<CachedRow> {
                let mut table = engine.probe_table(threshold);
                chunk
                    .iter()
                    .map(|&(i, j)| {
                        let (est, hash_cost, hit) = match self.estimates.get(&(i, j)) {
                            Some(&cached) => {
                                let resumed = table.reevaluate_cached(
                                    &self.sketches,
                                    i as usize,
                                    j as usize,
                                    cached,
                                );
                                // Only the newly compared hashes cost anything.
                                let cost = resumed.hashes.saturating_sub(cached.hashes) as u64;
                                (resumed, cost, true)
                            }
                            None => {
                                let fresh =
                                    table.evaluate_pair(&self.sketches, i as usize, j as usize);
                                (fresh, fresh.hashes as u64, false)
                            }
                        };
                        let similarity = if est.decision == PairDecision::Pruned {
                            None
                        } else if cfg.exact_on_accept {
                            // Exact similarities are the expensive part of
                            // probe verification; the knowledge cache
                            // memoizes them across probes.
                            match self.exact.get(&(i, j)) {
                                Some(&s) => Some((s, false)),
                                None => Some((
                                    measure.compute(&records[i as usize], &records[j as usize]),
                                    true,
                                )),
                            }
                        } else {
                            Some((est.map_similarity, false))
                        };
                        CachedRow {
                            i,
                            j,
                            est,
                            hash_cost,
                            hit,
                            similarity,
                        }
                    })
                    .collect()
            };
            if threads <= 1 {
                eval_chunk(&cands)
            } else {
                let per_chunk = cands.len().div_ceil(threads);
                let nested: Vec<Vec<CachedRow>> =
                    cands.par_chunks(per_chunk).map(eval_chunk).collect();
                nested.into_iter().flatten().collect()
            }
        };

        // Phase 2: fold results into the cache in candidate order.
        let mut stats = ApssStats {
            candidates: cands.len() as u64,
            ..Default::default()
        };
        let mut pairs = Vec::new();
        let mut estimates = Vec::with_capacity(rows.len());
        for row in rows {
            let (i, j, est) = (row.i, row.j, row.est);
            stats.hashes_compared += row.hash_cost;
            if row.hit {
                stats.cache_hits += 1;
            }
            match est.decision {
                PairDecision::Pruned => stats.pruned += 1,
                PairDecision::Accepted => stats.accepted += 1,
                PairDecision::Exhausted => stats.exhausted += 1,
            }
            if let Some((similarity, freshly_exact)) = row.similarity {
                if freshly_exact {
                    self.exact.insert((i, j), similarity);
                }
                if similarity >= threshold {
                    pairs.push(SimilarPair { i, j, similarity });
                }
            }
            estimates.push((i, j, est));
            self.estimates.insert((i, j), est);
        }
        stats.process_seconds = start.elapsed().as_secs_f64();
        self.probes.push(threshold);
        ApssResult {
            threshold,
            pairs,
            estimates,
            stats,
        }
    }
}

/// One candidate's outcome from the read-only evaluation phase.
/// `similarity` is `None` for pruned pairs; the flag marks exact
/// similarities computed this probe (to memoize during the merge).
struct CachedRow {
    i: u32,
    j: u32,
    est: PairEstimate,
    hash_cost: u64,
    hit: bool,
    similarity: Option<(f64, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apss::{apss, build_sketches};
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::Similarity;

    fn dataset() -> Vec<plasma_data::vector::SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("t", 50, 8, 3)
        }
        .generate(21)
        .records
    }

    #[test]
    fn cached_probe_agrees_with_fresh_probe() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        let first = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let second = cache.probe(&records, Similarity::Cosine, 0.6, &cfg);
        let fresh = apss(&records, Similarity::Cosine, 0.6, &cfg);
        // Same pairs found (both paths read the same sketches).
        let a: std::collections::HashSet<_> = second.pairs.iter().map(|p| (p.i, p.j)).collect();
        let b: std::collections::HashSet<_> = fresh.pairs.iter().map(|p| (p.i, p.j)).collect();
        let sym_diff = a.symmetric_difference(&b).count();
        assert!(
            sym_diff <= (a.len().max(b.len()) / 10).max(2),
            "cached vs fresh differ by {sym_diff} pairs"
        );
        assert!(first.stats.cache_hits == 0);
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn cache_reduces_hash_work_on_reprobe() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.95, &cfg);
        let cached = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let fresh = apss(&records, Similarity::Cosine, 0.9, &cfg);
        assert!(
            cached.stats.hashes_compared < fresh.stats.hashes_compared,
            "cache should save hash comparisons: {} vs {}",
            cached.stats.hashes_compared,
            fresh.stats.hashes_compared
        );
    }

    #[test]
    fn probe_history_records_thresholds() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        cache.probe(&records, Similarity::Cosine, 0.5, &cfg);
        assert_eq!(cache.probe_history(), &[0.9, 0.5]);
        assert!(!cache.is_empty());
    }

    #[test]
    fn get_returns_memoized_estimate() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        let r = cache.probe(&records, Similarity::Cosine, 0.8, &cfg);
        let (i, j, est) = r.estimates[0];
        let cached = cache.get(i, j).expect("estimate must be memoized");
        assert_eq!(cached.hashes, est.hashes);
    }
}
