//! The knowledge cache — single-session and shared/concurrent forms.
//!
//! §2.2.1: "The memoization can also be viewed as a knowledge cache,
//! enabling one to speed up subsequent iterations of the algorithm by
//! re-using previously computed and memoized information." Two layers are
//! cached:
//!
//! 1. **Sketches** — built once per dataset; §2.3.3 shows initial sketch
//!    generation dominates perceived latency, so skipping it on re-probes
//!    is the big win.
//! 2. **Pair memos** — the per-pair hash-comparison knowledge. The memo is
//!    a [`MatchProfile`]: the match count at every batch boundary of the
//!    canonical evaluation schedule, up to the deepest step any probe has
//!    compared. A re-probe replays the schedule reading memoized counts
//!    (free) and compares hashes only past the deepest covered step.
//!
//! # Sharing and determinism
//!
//! [`SharedKnowledgeCache`] is the concurrent form: the memo maps are
//! **lock-striped** across [`STRIPES`] shards keyed by pair hash, probes
//! take `&self`, and workers publish memos into their stripe as they
//! evaluate — there is no global lock and no single-threaded fold. Many
//! sessions probing the same corpus at different thresholds share one
//! sketch set and one memo pool ([`Session::with_shared_cache`],
//! [`CacheRegistry`]).
//!
//! Sharing does not cost reproducibility, because profile-backed
//! evaluation is *confluent*: a probe's pairs, estimates, and decision
//! counters are bit-identical to the from-scratch sequential path no
//! matter the thread count, the number of concurrent sessions, or how
//! their probes interleave. Cache warmth only changes how much work
//! (`hashes_compared`, `cache_hits`) a probe pays, never what it returns.
//! See `tests/parallel_determinism.rs` for the property pins.
//!
//! [`Session::with_shared_cache`]: crate::session::Session::with_shared_cache
//! [`MatchProfile`]: plasma_lsh::bayes::MatchProfile

use std::sync::{Arc, Mutex, OnceLock};

use plasma_data::hash::{FxHashMap, FxHasher};
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{MatchProfile, PairDecision, PairEstimate};
use plasma_lsh::sketch::SketchSet;
use rayon::prelude::*;

use crate::apss::{build_sketches, ApssConfig, ApssResult, ApssStats, SimilarPair};

/// Number of lock stripes in a [`SharedKnowledgeCache`]. A fixed power of
/// two well above typical core counts keeps contention negligible without
/// making `len()`/snapshot walks expensive.
pub const STRIPES: usize = 64;

/// One lock stripe of the shared memo pool.
#[derive(Default)]
struct Stripe {
    /// Per-pair match profiles — the confluent memo (`i < j` keys).
    profiles: FxHashMap<(u32, u32), MatchProfile>,
    /// Most-refined decision record seen per pair (advisory; see
    /// [`SharedKnowledgeCache::get`]).
    estimates: FxHashMap<(u32, u32), PairEstimate>,
    /// Exact similarities computed for accepted pairs (when a probe ran
    /// with `exact_on_accept`); re-probes reuse them instead of
    /// recomputing dot products. The value is a pure function of the
    /// record pair, so publication is idempotent.
    exact: FxHashMap<(u32, u32), f64>,
}

/// Memoized probe state for one dataset, shareable across sessions and
/// threads.
///
/// All methods take `&self`; wrap the cache in an [`Arc`] and hand clones
/// to as many sessions as needed. Probes running concurrently against the
/// same cache return exactly what they would have returned against a
/// private cache — sharing only redistributes the hashing work (the first
/// prober of a pair pays, everyone else hits).
///
/// ```
/// use std::sync::Arc;
/// use plasma_core::apss::{build_sketches, ApssConfig};
/// use plasma_core::cache::SharedKnowledgeCache;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
/// let cache = Arc::new(SharedKnowledgeCache::new(sketches));
///
/// // Two "sessions" (here: two handles) probe different thresholds.
/// let a = cache.probe(&ds.records, Similarity::Cosine, 0.9, &cfg);
/// let b = cache.probe(&ds.records, Similarity::Cosine, 0.6, &cfg);
/// assert!(b.stats.cache_hits > 0, "second probe reuses the first's memos");
///
/// // Re-probing an already-probed threshold is answered entirely from
/// // the cache: zero new hash comparisons.
/// let again = cache.probe(&ds.records, Similarity::Cosine, 0.9, &cfg);
/// assert_eq!(again.stats.hashes_compared, 0);
/// assert_eq!(again.pairs, a.pairs);
/// assert_eq!(cache.probe_history(), vec![0.9, 0.6, 0.9]);
/// ```
pub struct SharedKnowledgeCache {
    sketches: SketchSet,
    stripes: Vec<Mutex<Stripe>>,
    /// Batch size of the evaluation schedule the profiles are indexed by,
    /// pinned by the first probe. Probes whose `BayesParams::batch`
    /// disagrees still return correct (bit-identical-to-fresh) results but
    /// bypass the profile memos; see [`probe`](Self::probe).
    schedule_batch: OnceLock<usize>,
    /// Thresholds probed so far, in publication (append) order.
    history: Mutex<Vec<f64>>,
}

impl SharedKnowledgeCache {
    /// Wraps freshly built sketches with an empty, shareable memo pool.
    pub fn new(sketches: SketchSet) -> Self {
        Self {
            sketches,
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            schedule_batch: OnceLock::new(),
            history: Mutex::new(Vec::new()),
        }
    }

    /// The cached sketches.
    pub fn sketches(&self) -> &SketchSet {
        &self.sketches
    }

    /// Number of pairs with a memoized profile, summed across all lock
    /// stripes. Linear in [`STRIPES`] lock acquisitions; the count is a
    /// snapshot and may be stale by the time it returns if other sessions
    /// are probing concurrently.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe lock").profiles.len())
            .sum()
    }

    /// True when no pair memos exist in any stripe (same snapshot caveat
    /// as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.stripes
            .iter()
            .all(|s| s.lock().expect("stripe lock").profiles.is_empty())
    }

    /// Thresholds probed so far, in append order: each probe appends its
    /// threshold exactly once, when its evaluation completes. Under
    /// concurrent sessions the order is the order probes finished (the
    /// history mutex serializes appends), so the list is always a
    /// permutation of the probes issued, never a torn interleaving.
    pub fn probe_history(&self) -> Vec<f64> {
        self.history.lock().expect("history lock").clone()
    }

    /// The most-refined decision record memoized for a pair, if any.
    ///
    /// Advisory: the record's *counts* (`matches`, `hashes`) and posterior
    /// summary are exact, but its `decision` is relative to whichever
    /// probe threshold evaluated the pair deepest. Re-deciding at a
    /// specific threshold is what [`probe`](Self::probe) does.
    pub fn get(&self, i: u32, j: u32) -> Option<PairEstimate> {
        let key = (i.min(j), i.max(j));
        self.stripe(key)
            .lock()
            .expect("stripe lock")
            .estimates
            .get(&key)
            .copied()
    }

    /// Owned snapshot of all memoized decision records, in unspecified
    /// order (stripe by stripe).
    pub fn snapshot_estimates(&self) -> Vec<((u32, u32), PairEstimate)> {
        let mut out = Vec::new();
        for s in &self.stripes {
            let g = s.lock().expect("stripe lock");
            out.extend(g.estimates.iter().map(|(&k, &v)| (k, v)));
        }
        out
    }

    /// The stripe owning a pair key.
    fn stripe(&self, key: (u32, u32)) -> &Mutex<Stripe> {
        let mixed = plasma_data::hash::mix64(((key.0 as u64) << 32) | key.1 as u64);
        &self.stripes[(mixed as usize) & (STRIPES - 1)]
    }

    /// Pins the evaluation schedule on first use; returns whether profile
    /// memos apply to a caller evaluating with `batch`.
    pub(crate) fn schedule_accepts(&self, batch: usize) -> bool {
        *self.schedule_batch.get_or_init(|| batch) == batch
    }

    /// Snapshot of a pair's memoized profile (empty when unknown).
    pub(crate) fn load_profile(&self, key: (u32, u32)) -> MatchProfile {
        self.stripe(key)
            .lock()
            .expect("stripe lock")
            .profiles
            .get(&key)
            .cloned()
            .unwrap_or_default()
    }

    /// Publishes what one evaluation learned into the pair's stripe under
    /// a single lock acquisition: an extended profile + decision record
    /// (order-free deepest-wins merge) and/or a freshly computed exact
    /// similarity. No-op (lock-free) when there is nothing to publish.
    pub(crate) fn publish(
        &self,
        key: (u32, u32),
        memo: Option<(MatchProfile, PairEstimate)>,
        exact: Option<f64>,
    ) {
        if memo.is_none() && exact.is_none() {
            return;
        }
        let mut g = self.stripe(key).lock().expect("stripe lock");
        if let Some((profile, est)) = memo {
            g.profiles.entry(key).or_default().adopt_deeper(profile);
            g.estimates
                .entry(key)
                .and_modify(|old| {
                    if est.hashes >= old.hashes {
                        *old = est;
                    }
                })
                .or_insert(est);
        }
        if let Some(s) = exact {
            g.exact.insert(key, s);
        }
    }

    /// Runs a cached probe: candidates whose profile already covers every
    /// batch step the decision walk visits skip hash comparison entirely
    /// (`cache_hits`); partially covered pairs resume from their deepest
    /// memoized step; unknown pairs are evaluated fresh. Workers publish
    /// extended profiles (and freshly computed exact similarities) into
    /// their lock stripe as they go.
    ///
    /// **Determinism:** the returned pairs, estimates, and decision
    /// counters (`candidates`/`pruned`/`accepted`/`exhausted`) are bit
    /// identical to [`crate::apss::apss_with_sketches`] over the same
    /// sketches at every `parallelism` setting, whatever this cache has
    /// memoized and whatever other sessions do concurrently. The work
    /// counters (`hashes_compared`, `cache_hits`) depend on cache warmth:
    /// they are deterministic for any serialized probe order and may
    /// redistribute between racing probes that evaluate the same pair
    /// simultaneously (both pay; the published memo is identical either
    /// way).
    ///
    /// Profiles are indexed by the batch schedule pinned at the first
    /// probe; a probe whose [`plasma_lsh::BayesParams::batch`] differs
    /// bypasses profile memos (still reusing sketches and exact
    /// similarities) rather than corrupting them. Keep `batch` consistent
    /// across sessions sharing a cache — [`CacheRegistry`] fingerprints it
    /// for exactly this reason.
    pub fn probe(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        let start = std::time::Instant::now();
        let engine = plasma_lsh::bayes::BayesLsh::new(self.sketches.family(), cfg.bayes);
        let cands = crate::apss::generate_candidates(&self.sketches, cfg);
        let threads = crate::apss::eval_threads(cfg, cands.len());
        let profiled = self.schedule_accepts(cfg.bayes.batch);

        let eval_chunk = |chunk: &[(u32, u32)]| -> ChunkOut {
            let mut table = engine.probe_table(threshold);
            let mut stats = ApssStats::default();
            let mut pairs = Vec::new();
            let mut estimates = Vec::with_capacity(chunk.len());
            for &(i, j) in chunk {
                let key = (i, j);
                // Read phase: lift this pair's memos out of its stripe.
                let (mut profile, known_exact) = {
                    let g = self.stripe(key).lock().expect("stripe lock");
                    (
                        if profiled {
                            g.profiles.get(&key).cloned().unwrap_or_default()
                        } else {
                            MatchProfile::new()
                        },
                        if cfg.exact_on_accept {
                            g.exact.get(&key).copied()
                        } else {
                            None
                        },
                    )
                };
                let had_profile = !profile.is_empty();
                // Evaluate without holding any lock.
                let (est, new_hashes) = if profiled {
                    let out = table.evaluate_profiled(
                        &self.sketches,
                        i as usize,
                        j as usize,
                        &mut profile,
                    );
                    (out.estimate, out.new_hashes)
                } else {
                    let est = table.evaluate_pair(&self.sketches, i as usize, j as usize);
                    (est, est.hashes)
                };
                stats.hashes_compared += new_hashes as u64;
                if new_hashes == 0 {
                    stats.cache_hits += 1;
                }
                match est.decision {
                    PairDecision::Pruned => stats.pruned += 1,
                    PairDecision::Accepted => stats.accepted += 1,
                    PairDecision::Exhausted => stats.exhausted += 1,
                }
                let mut fresh_exact = None;
                if est.decision != PairDecision::Pruned {
                    let similarity = if cfg.exact_on_accept {
                        known_exact.unwrap_or_else(|| {
                            let s = measure.compute(&records[i as usize], &records[j as usize]);
                            fresh_exact = Some(s);
                            s
                        })
                    } else {
                        est.map_similarity
                    };
                    if similarity >= threshold {
                        pairs.push(SimilarPair { i, j, similarity });
                    }
                }
                // Publish phase: fold what this evaluation learned back
                // into the stripe. A full cache hit publishes nothing —
                // it re-derived only already-published knowledge.
                let memo = (profiled && (new_hashes > 0 || !had_profile)).then_some((profile, est));
                self.publish(key, memo, fresh_exact);
                estimates.push((i, j, est));
            }
            ChunkOut {
                pairs,
                estimates,
                stats,
            }
        };

        let chunk_outs: Vec<ChunkOut> = if threads <= 1 {
            vec![eval_chunk(&cands)]
        } else {
            let per_chunk = cands.len().div_ceil(threads);
            cands.par_chunks(per_chunk).map(eval_chunk).collect()
        };

        // Assemble in candidate order: chunk outputs concatenate back into
        // the deterministic sequential order.
        let mut stats = ApssStats {
            candidates: cands.len() as u64,
            ..Default::default()
        };
        let mut pairs = Vec::new();
        let mut estimates = Vec::with_capacity(cands.len());
        for out in chunk_outs {
            stats.absorb(&out.stats);
            pairs.extend(out.pairs);
            estimates.extend(out.estimates);
        }
        stats.process_seconds = start.elapsed().as_secs_f64();
        self.history.lock().expect("history lock").push(threshold);
        ApssResult {
            threshold,
            pairs,
            estimates,
            stats,
        }
    }
}

/// One worker's share of a cached probe, in chunk order.
struct ChunkOut {
    pairs: Vec<SimilarPair>,
    estimates: Vec<(u32, u32, PairEstimate)>,
    stats: ApssStats,
}

/// Single-session façade over a [`SharedKnowledgeCache`].
///
/// Owns an `Arc` to the shared form, so a session-private cache can later
/// be handed to other sessions via [`shared`](Self::shared) without
/// rebuilding sketches. The `&mut self` probe signature is kept for
/// callers that want exclusive-use semantics; it delegates to the
/// lock-striped implementation.
///
/// ```
/// use plasma_core::apss::{build_sketches, ApssConfig};
/// use plasma_core::KnowledgeCache;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let (sketches, _) = build_sketches(&ds.records, Similarity::Cosine, &cfg);
/// let mut cache = KnowledgeCache::new(sketches);
/// let first = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
/// // Re-probing the same threshold is a pure cache hit: zero new hash
/// // comparisons, identical pairs.
/// let again = cache.probe(&ds.records, Similarity::Cosine, 0.8, &cfg);
/// assert_eq!(again.stats.hashes_compared, 0);
/// assert_eq!(again.stats.cache_hits, again.stats.candidates);
/// assert_eq!(again.pairs, first.pairs);
/// assert!(!cache.is_empty());
/// ```
pub struct KnowledgeCache {
    shared: Arc<SharedKnowledgeCache>,
}

impl KnowledgeCache {
    /// Wraps freshly built sketches with an empty memo pool.
    pub fn new(sketches: SketchSet) -> Self {
        Self {
            shared: Arc::new(SharedKnowledgeCache::new(sketches)),
        }
    }

    /// The underlying shareable cache; clone the `Arc` to attach more
    /// sessions ([`crate::session::Session::with_shared_cache`]).
    pub fn shared(&self) -> &Arc<SharedKnowledgeCache> {
        &self.shared
    }

    /// Consumes the façade, yielding the shareable cache.
    pub fn into_shared(self) -> Arc<SharedKnowledgeCache> {
        self.shared
    }

    /// The cached sketches.
    pub fn sketches(&self) -> &SketchSet {
        self.shared.sketches()
    }

    /// Number of pairs with a memoized profile. Sums the lock stripes of
    /// the sharded storage — O([`STRIPES`]) lock acquisitions, not O(1).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// True when no pair memos are held in any stripe.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// Thresholds probed so far, in append order. Owned (not borrowed):
    /// the history lives behind the shared cache's mutex, and other
    /// holders of [`shared`](Self::shared) may append between calls.
    pub fn probe_history(&self) -> Vec<f64> {
        self.shared.probe_history()
    }

    /// The most-refined decision record memoized for a pair, if any (see
    /// [`SharedKnowledgeCache::get`] for the decision-threshold caveat).
    pub fn get(&self, i: u32, j: u32) -> Option<PairEstimate> {
        self.shared.get(i, j)
    }

    /// Owned snapshot of all memoized decision records.
    pub fn snapshot_estimates(&self) -> Vec<((u32, u32), PairEstimate)> {
        self.shared.snapshot_estimates()
    }

    /// Runs a cached probe; see [`SharedKnowledgeCache::probe`].
    pub fn probe(
        &mut self,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> ApssResult {
        self.shared.probe(records, measure, threshold, cfg)
    }
}

/// Registry of shared knowledge caches keyed by dataset fingerprint — the
/// serving-traffic entry point: every session over the same corpus and
/// sketch configuration gets the same [`SharedKnowledgeCache`], so sketch
/// building happens once and pair memos accumulate across all users.
///
/// ```
/// use plasma_core::apss::ApssConfig;
/// use plasma_core::cache::CacheRegistry;
/// use plasma_data::datasets::gaussian::GaussianSpec;
/// use plasma_data::similarity::Similarity;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let cfg = ApssConfig::default();
/// let registry = CacheRegistry::new();
/// let a = registry.get_or_build(&ds.records, Similarity::Cosine, &cfg);
/// let b = registry.get_or_build(&ds.records, Similarity::Cosine, &cfg);
/// // Same corpus + config → the very same cache.
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Default)]
pub struct CacheRegistry {
    /// Per-fingerprint build latches: the map mutex is held only for the
    /// entry lookup, and the sketch build runs under the entry's own
    /// `OnceLock` — so first-comers for the *same* dataset serialize, but
    /// lookups and builds for unrelated datasets never block each other.
    caches: Mutex<FxHashMap<u128, Arc<OnceLock<Arc<SharedKnowledgeCache>>>>>,
}

impl CacheRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of `(records, measure, sketch/schedule config)`. Two
    /// workloads are meant to share a cache exactly when their
    /// fingerprints agree: same record contents, same measure, same
    /// `n_hashes`, same hash seed, and the same evaluation batch (profiles
    /// are indexed by the batch schedule). The BayesLSH accuracy knobs
    /// (ε/δ/γ) are *not* fingerprinted — profiles memoize raw match
    /// counts, which are valid under any stopping parameters.
    ///
    /// The fingerprint is 128 bits from two domain-separated passes of the
    /// workspace's Fx hasher. Fx is not collision-resistant against
    /// adversarial inputs; a registry fronting untrusted uploads should
    /// key on an external identity (dataset id / content digest) instead.
    /// [`get_or_build`](Self::get_or_build) additionally cross-checks the
    /// record count of whatever the lookup returns.
    pub fn fingerprint(records: &[SparseVector], measure: Similarity, cfg: &ApssConfig) -> u128 {
        use std::hash::Hasher;
        let pass = |domain: u64| {
            let mut h = FxHasher::default();
            h.write_u64(domain);
            h.write_u64(match measure {
                Similarity::Jaccard => 0x4a43,
                Similarity::Cosine => 0x434f,
            });
            h.write_usize(cfg.n_hashes);
            h.write_u64(cfg.seed);
            h.write_usize(cfg.bayes.batch);
            h.write_usize(records.len());
            for r in records {
                h.write_usize(r.nnz());
                for &d in r.dims() {
                    h.write_u32(d);
                }
                for &w in r.weights() {
                    h.write_u64(w.to_bits());
                }
            }
            h.finish()
        };
        ((pass(0x505A_u64) as u128) << 64) | pass(0xA0A5_u64) as u128
    }

    /// The cache for this workload, building sketches (and registering the
    /// new cache) on first sight of the fingerprint. Concurrent
    /// first-comers for the same dataset serialize on that dataset's
    /// build latch instead of duplicating the sketch work; callers for
    /// other datasets are never blocked by an in-flight build.
    pub fn get_or_build(
        &self,
        records: &[SparseVector],
        measure: Similarity,
        cfg: &ApssConfig,
    ) -> Arc<SharedKnowledgeCache> {
        let fp = Self::fingerprint(records, measure, cfg);
        let latch = {
            let mut caches = self.caches.lock().expect("registry lock");
            caches.entry(fp).or_default().clone()
        };
        let cache = latch
            .get_or_init(|| {
                let (sketches, _) = build_sketches(records, measure, cfg);
                Arc::new(SharedKnowledgeCache::new(sketches))
            })
            .clone();
        // Cheap guard against a fingerprint collision handing this caller
        // another dataset's cache.
        assert_eq!(
            cache.sketches().len(),
            records.len(),
            "cache registry fingerprint collision: cached sketches cover {} records, workload has {}",
            cache.sketches().len(),
            records.len()
        );
        cache
    }

    /// Opens a [`crate::session::Session`] attached to this registry's
    /// cache for the dataset (building it if needed) — the one-call path
    /// for "another user starts exploring the same corpus".
    pub fn session(
        &self,
        records: Vec<SparseVector>,
        measure: Similarity,
        cfg: ApssConfig,
    ) -> crate::session::Session {
        let cache = self.get_or_build(&records, measure, &cfg);
        crate::session::Session::from_records(records, measure, cfg).with_shared_cache(cache)
    }

    /// Number of registered caches (including any whose first build is
    /// still in flight).
    pub fn len(&self) -> usize {
        self.caches.lock().expect("registry lock").len()
    }

    /// True when no cache is registered.
    pub fn is_empty(&self) -> bool {
        self.caches.lock().expect("registry lock").is_empty()
    }

    /// Drops the cache for a fingerprint, if registered. Sessions already
    /// holding the `Arc` keep working; the next `get_or_build` rebuilds.
    pub fn evict(&self, fingerprint: u128) -> bool {
        self.caches
            .lock()
            .expect("registry lock")
            .remove(&fingerprint)
            .is_some()
    }

    /// Drops every registered cache (same `Arc` semantics as
    /// [`evict`](Self::evict)).
    pub fn clear(&self) {
        self.caches.lock().expect("registry lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apss::{apss, apss_with_sketches, build_sketches};
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::Similarity;

    fn dataset() -> Vec<plasma_data::vector::SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("t", 50, 8, 3)
        }
        .generate(21)
        .records
    }

    fn assert_same_output(a: &ApssResult, b: &ApssResult, label: &str) {
        assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: pair count");
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!((x.i, x.j), (y.i, y.j), "{label}");
            assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "{label}");
        }
        assert_eq!(a.estimates.len(), b.estimates.len(), "{label}");
        for (x, y) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!((x.0, x.1), (y.0, y.1), "{label}");
            assert_eq!(x.2.decision, y.2.decision, "{label}");
            assert_eq!(x.2.matches, y.2.matches, "{label}");
            assert_eq!(x.2.hashes, y.2.hashes, "{label}");
            assert_eq!(
                x.2.map_similarity.to_bits(),
                y.2.map_similarity.to_bits(),
                "{label}"
            );
        }
    }

    #[test]
    fn cached_probe_is_bit_identical_to_fresh_probe() {
        // Stronger than the paper needs: profile-backed re-evaluation
        // replays the fresh schedule, so a warm cache returns *exactly*
        // the fresh result, not an approximation of it.
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches.clone());
        let first = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let second = cache.probe(&records, Similarity::Cosine, 0.6, &cfg);
        let fresh_hi = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.9, &cfg);
        let fresh_lo = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.6, &cfg);
        assert_same_output(&first, &fresh_hi, "cold probe vs fresh");
        assert_same_output(&second, &fresh_lo, "warm probe vs fresh");
        assert!(first.stats.cache_hits == 0);
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn cache_reduces_hash_work_on_reprobe() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.95, &cfg);
        let cached = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        let fresh = apss(&records, Similarity::Cosine, 0.9, &cfg);
        assert!(
            cached.stats.hashes_compared < fresh.stats.hashes_compared,
            "cache should save hash comparisons: {} vs {}",
            cached.stats.hashes_compared,
            fresh.stats.hashes_compared
        );
    }

    #[test]
    fn probe_history_records_thresholds() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        cache.probe(&records, Similarity::Cosine, 0.5, &cfg);
        assert_eq!(cache.probe_history(), vec![0.9, 0.5]);
        assert!(!cache.is_empty());
        assert_eq!(cache.len(), cache.snapshot_estimates().len());
    }

    #[test]
    fn get_returns_memoized_estimate() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let mut cache = KnowledgeCache::new(sketches);
        let r = cache.probe(&records, Similarity::Cosine, 0.8, &cfg);
        let (i, j, est) = r.estimates[0];
        let cached = cache.get(i, j).expect("estimate must be memoized");
        assert_eq!(cached.hashes, est.hashes);
    }

    #[test]
    fn mismatched_batch_bypasses_profiles_but_stays_correct() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let cache = SharedKnowledgeCache::new(sketches.clone());
        cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        // A probe with a different batch schedule cannot use (or corrupt)
        // the memoized profiles, but its output is still exactly the
        // fresh result for its own schedule.
        let other = ApssConfig {
            bayes: plasma_lsh::BayesParams {
                batch: 16,
                ..cfg.bayes
            },
            ..cfg
        };
        let degraded = cache.probe(&records, Similarity::Cosine, 0.9, &other);
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.9, &other);
        assert_same_output(&degraded, &fresh, "mismatched batch vs fresh");
        assert_eq!(degraded.stats.cache_hits, 0);
        // And the pinned schedule still works afterwards.
        let again = cache.probe(&records, Similarity::Cosine, 0.9, &cfg);
        assert_eq!(again.stats.hashes_compared, 0);
    }

    #[test]
    fn registry_dedupes_by_fingerprint() {
        let records = dataset();
        let cfg = ApssConfig::default();
        let registry = CacheRegistry::new();
        let a = registry.get_or_build(&records, Similarity::Cosine, &cfg);
        let b = registry.get_or_build(&records, Similarity::Cosine, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
        // A different hash seed is a different sketch universe.
        let reseeded = ApssConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let c = registry.get_or_build(&records, Similarity::Cosine, &reseeded);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(registry.len(), 2);
        let fp = CacheRegistry::fingerprint(&records, Similarity::Cosine, &cfg);
        assert!(registry.evict(fp));
        assert_eq!(registry.len(), 1);
        registry.clear();
        assert!(registry.is_empty());
    }
}
