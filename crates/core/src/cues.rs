//! Dimensionless visual cues (§2.2.3, Fig. 2.5).
//!
//! Once a probe has run, these cues are computed from the resulting
//! similarity graph without touching the source data `D`:
//!
//! * **Triangle vertex-cover histogram** — "the histogram of the number of
//!   triangles incident on each vertex gives the user an estimate of how
//!   clusterable the data is."
//! * **Triangle/clique density plot** — "the density plot is the clique
//!   distribution of the graph and flat peaks in the plot indicate
//!   potential cliques."

use plasma_graph::measures::{cliques, triangles};
use plasma_graph::Graph;

use crate::apss::SimilarPair;

/// Builds the similarity graph induced by a probe's accepted pairs.
pub fn pairs_to_graph(n: usize, pairs: &[SimilarPair]) -> Graph {
    let edges: Vec<(u32, u32)> = pairs.iter().map(|p| (p.i, p.j)).collect();
    Graph::from_edges(n, &edges)
}

/// The triangle-based cues of Fig. 2.5.
#[derive(Debug, Clone)]
pub struct TriangleCue {
    /// Total triangles in the thresholded graph (Fig. 2.5a's y-value).
    pub total_triangles: u64,
    /// Triangles incident on each vertex.
    pub per_vertex: Vec<u32>,
    /// Histogram over per-vertex triangle counts: `histogram[b]` = number
    /// of vertices whose incident-triangle count falls in bucket `b`.
    pub histogram: Vec<u64>,
    /// Upper edge of each histogram bucket (power-of-two buckets).
    pub bucket_edges: Vec<u32>,
}

/// Computes the triangle cues for a probe's graph.
pub fn triangle_cue(graph: &Graph) -> TriangleCue {
    let per_vertex = triangles::per_vertex_triangles(graph);
    let total = per_vertex.iter().map(|&t| t as u64).sum::<u64>() / 3;
    // Power-of-two buckets: 0, 1, 2-3, 4-7, 8-15, …
    let max = per_vertex.iter().copied().max().unwrap_or(0);
    let mut edges = vec![0u32, 1];
    let mut e = 2u32;
    while e <= max.max(1) {
        edges.push(e * 2 - 1);
        e *= 2;
    }
    let mut histogram = vec![0u64; edges.len()];
    for &t in &per_vertex {
        let b = edges
            .iter()
            .position(|&hi| t <= hi)
            .unwrap_or(edges.len() - 1);
        histogram[b] += 1;
    }
    TriangleCue {
        total_triangles: total,
        per_vertex,
        histogram,
        bucket_edges: edges,
    }
}

/// The clique-distribution density plot of Fig. 2.5c.
#[derive(Debug, Clone)]
pub struct DensityPlot {
    /// `counts[k]` = number of maximal cliques of size `k`.
    pub clique_sizes: Vec<u64>,
    /// Largest clique size found.
    pub max_clique: u32,
    /// Whether enumeration was truncated by its budget.
    pub truncated: bool,
}

impl DensityPlot {
    /// Sizes `k` whose counts form a local plateau-or-peak — the "flat
    /// peaks … indicate potential cliques" read-off.
    pub fn peaks(&self) -> Vec<usize> {
        let c = &self.clique_sizes;
        let mut out = Vec::new();
        for k in 1..c.len() {
            let left = if k >= 1 { c[k - 1] } else { 0 };
            let right = if k + 1 < c.len() { c[k + 1] } else { 0 };
            if c[k] > 0 && c[k] >= left && c[k] >= right {
                out.push(k);
            }
        }
        out
    }
}

/// Computes the density plot (budgeted maximal-clique enumeration).
pub fn density_plot(graph: &Graph) -> DensityPlot {
    let stats = cliques::maximal_cliques(graph, cliques::DEFAULT_BUDGET);
    DensityPlot {
        clique_sizes: stats.size_histogram,
        max_clique: stats.max_size,
        truncated: stats.truncated,
    }
}

/// Clusterability score in `[0, 1]`: fraction of vertices participating in
/// at least one triangle. A quick scalar summary of the histogram cue.
pub fn clusterability(cue: &TriangleCue) -> f64 {
    if cue.per_vertex.is_empty() {
        return 0.0;
    }
    let covered = cue.per_vertex.iter().filter(|&&t| t > 0).count();
    covered as f64 / cue.per_vertex.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(i: u32, j: u32) -> SimilarPair {
        SimilarPair {
            i,
            j,
            similarity: 1.0,
        }
    }

    #[test]
    fn pairs_to_graph_builds_edges() {
        let g = pairs_to_graph(4, &[pair(0, 1), pair(1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn triangle_cue_counts() {
        // Two triangles sharing vertex 2.
        let g = pairs_to_graph(
            5,
            &[
                pair(0, 1),
                pair(1, 2),
                pair(0, 2),
                pair(2, 3),
                pair(3, 4),
                pair(2, 4),
            ],
        );
        let cue = triangle_cue(&g);
        assert_eq!(cue.total_triangles, 2);
        assert_eq!(cue.per_vertex[2], 2);
        assert_eq!(cue.per_vertex[0], 1);
        assert_eq!(cue.histogram.iter().sum::<u64>(), 5);
    }

    #[test]
    fn clusterability_bounds() {
        let clustered = triangle_cue(&pairs_to_graph(3, &[pair(0, 1), pair(1, 2), pair(0, 2)]));
        assert!((clusterability(&clustered) - 1.0).abs() < 1e-12);
        let sparse = triangle_cue(&pairs_to_graph(3, &[pair(0, 1)]));
        assert_eq!(clusterability(&sparse), 0.0);
    }

    #[test]
    fn density_plot_of_clique() {
        let mut pairs = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                pairs.push(pair(i, j));
            }
        }
        let plot = density_plot(&pairs_to_graph(5, &pairs));
        assert_eq!(plot.max_clique, 5);
        assert_eq!(plot.clique_sizes[5], 1);
        assert!(plot.peaks().contains(&5));
    }

    #[test]
    fn histogram_buckets_cover_all_vertices() {
        let g = pairs_to_graph(2, &[pair(0, 1)]);
        let cue = triangle_cue(&g);
        assert_eq!(cue.histogram.iter().sum::<u64>(), 2);
        assert_eq!(cue.total_triangles, 0);
    }
}
