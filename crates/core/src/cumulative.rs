//! The Cumulative APSS Graph (§2.1).
//!
//! "…shows the number of similar pairs as the similarity threshold is
//! varied. The main utility … is that when the user studies the data at one
//! similarity threshold, we can compute and display bounded estimates of
//! the number of pairs at other thresholds not directly being studied."
//!
//! Each memoized pair contributes `Pr(S ≥ t | m, n)` at every grid
//! threshold `t`; the expected count is the sum of those probabilities and
//! the error bar is the standard deviation of the sum of independent
//! Bernoullis, `sqrt(Σ p(1−p))`. Pruned pairs carry wide posteriors, which
//! is exactly why the paper's error bars balloon *below* the probed
//! threshold.

use plasma_lsh::bayes::{BayesLsh, PairEstimate};
use plasma_lsh::family::LshFamily;
use plasma_lsh::BayesParams;

/// An estimated pair-count curve across thresholds, with error bars.
#[derive(Debug, Clone)]
pub struct CumulativeCurve {
    /// Threshold grid (ascending).
    pub thresholds: Vec<f64>,
    /// Expected number of pairs with similarity ≥ each threshold.
    pub expected: Vec<f64>,
    /// One standard deviation of each estimate.
    pub std_dev: Vec<f64>,
}

impl CumulativeCurve {
    /// Builds the curve from memoized pair estimates.
    pub fn from_estimates<'a, I>(
        family: LshFamily,
        params: BayesParams,
        estimates: I,
        thresholds: &[f64],
    ) -> Self
    where
        I: IntoIterator<Item = &'a PairEstimate>,
    {
        let engine = BayesLsh::new(family, params);
        let grid = engine.grid_points().to_vec();
        // Only ~1k distinct (m, n) cells occur per probe (batch schedule ×
        // match counts); group first so each posterior is computed once.
        let mut counts: plasma_data::hash::FxHashMap<(u32, u32), u64> =
            plasma_data::hash::FxHashMap::default();
        for est in estimates {
            *counts.entry((est.matches, est.hashes)).or_insert(0) += 1;
        }
        let mut expected = vec![0.0f64; thresholds.len()];
        let mut var = vec![0.0f64; thresholds.len()];
        // One reused posterior buffer across all cells keeps curve
        // assembly allocation-free after the first cell.
        let mut post = Vec::new();
        for ((m, n), count) in counts {
            engine.posterior_into(m, n, &mut post);
            // Tail mass at each threshold via a single backward sweep.
            let mut acc = 0.0;
            let mut gi = grid.len();
            // thresholds ascending → walk both descending.
            for (ti, &t) in thresholds.iter().enumerate().rev() {
                while gi > 0 && grid[gi - 1] >= t {
                    gi -= 1;
                    acc += post[gi];
                }
                let p = acc.clamp(0.0, 1.0);
                expected[ti] += count as f64 * p;
                var[ti] += count as f64 * p * (1.0 - p);
            }
        }
        CumulativeCurve {
            thresholds: thresholds.to_vec(),
            expected,
            std_dev: var.into_iter().map(f64::sqrt).collect(),
        }
    }

    /// Merges two curves over the same grid by keeping, per threshold, the
    /// estimate with the smaller error bar — how a user combines the
    /// high-threshold probe with a later low-threshold probe (Fig. 2.4's
    /// "combining the upper threshold estimates for 0.8 and the lower for
    /// 0.5").
    pub fn merge_min_variance(&self, other: &CumulativeCurve) -> CumulativeCurve {
        assert_eq!(self.thresholds, other.thresholds, "grids must match");
        let mut expected = Vec::with_capacity(self.thresholds.len());
        let mut std_dev = Vec::with_capacity(self.thresholds.len());
        for k in 0..self.thresholds.len() {
            if self.std_dev[k] <= other.std_dev[k] {
                expected.push(self.expected[k]);
                std_dev.push(self.std_dev[k]);
            } else {
                expected.push(other.expected[k]);
                std_dev.push(other.std_dev[k]);
            }
        }
        CumulativeCurve {
            thresholds: self.thresholds.clone(),
            expected,
            std_dev,
        }
    }

    /// Index of the steepest relative drop — the "knee" the interactive
    /// scenario in §2.2.2 has the user investigate next.
    pub fn knee(&self) -> Option<usize> {
        if self.thresholds.len() < 3 {
            return None;
        }
        let mut best = None;
        let mut best_drop = 0.0;
        for k in 1..self.thresholds.len() {
            let hi = self.expected[k - 1].max(1.0);
            let drop = (self.expected[k - 1] - self.expected[k]) / hi;
            if drop > best_drop {
                best_drop = drop;
                best = Some(k);
            }
        }
        best
    }

    /// Mean relative error against ground-truth counts on the same grid.
    pub fn relative_error(&self, truth: &[u64]) -> f64 {
        assert_eq!(truth.len(), self.expected.len());
        plasma_data::stats::mean_relative_error(
            &self.expected,
            &truth.iter().map(|&c| c as f64).collect::<Vec<_>>(),
        )
    }
}

/// The default threshold grid used by sessions: 0.05 steps from `lo`
/// to 0.95 plus the endpoints.
pub fn default_grid(lo: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut t = lo;
    while t < 0.999 {
        out.push((t * 1000.0).round() / 1000.0);
        t += 0.05;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_lsh::bayes::PairDecision;

    fn est(m: u32, n: u32) -> PairEstimate {
        PairEstimate {
            decision: PairDecision::Accepted,
            matches: m,
            hashes: n,
            map_similarity: m as f64 / n as f64,
            variance: 0.0,
        }
    }

    #[test]
    fn curve_is_nonincreasing() {
        let ests = [est(250, 256), est(128, 256), est(30, 256), est(200, 256)];
        let grid = default_grid(0.1);
        let curve = CumulativeCurve::from_estimates(
            LshFamily::MinHash,
            BayesParams::default(),
            ests.iter(),
            &grid,
        );
        for w in curve.expected.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "must be non-increasing: {w:?}");
        }
    }

    #[test]
    fn confident_pairs_counted_where_expected() {
        // One pair at ~0.97 similarity: counts at 0.5, not at 0.999.
        let ests = [est(250, 256)];
        let grid = vec![0.5, 0.9, 0.999];
        let curve = CumulativeCurve::from_estimates(
            LshFamily::MinHash,
            BayesParams::default(),
            ests.iter(),
            &grid,
        );
        assert!(curve.expected[0] > 0.95, "at 0.5: {}", curve.expected[0]);
        assert!(curve.expected[2] < 0.6, "at 0.999: {}", curve.expected[2]);
    }

    #[test]
    fn error_bars_grow_with_uncertainty() {
        // Few hashes → wide posterior → more probability mass leaking past
        // a threshold below the mode, so larger Bernoulli variance there.
        let precise = [est(192, 256)];
        let vague = [est(24, 32)];
        let grid = vec![0.7];
        let c1 = CumulativeCurve::from_estimates(
            LshFamily::MinHash,
            BayesParams::default(),
            precise.iter(),
            &grid,
        );
        let c2 = CumulativeCurve::from_estimates(
            LshFamily::MinHash,
            BayesParams::default(),
            vague.iter(),
            &grid,
        );
        assert!(
            c2.std_dev[0] > c1.std_dev[0],
            "vague {} vs precise {}",
            c2.std_dev[0],
            c1.std_dev[0]
        );
    }

    #[test]
    fn merge_takes_lower_variance_side() {
        let grid = vec![0.3, 0.8];
        let a = CumulativeCurve {
            thresholds: grid.clone(),
            expected: vec![10.0, 5.0],
            std_dev: vec![0.1, 2.0],
        };
        let b = CumulativeCurve {
            thresholds: grid,
            expected: vec![12.0, 4.0],
            std_dev: vec![1.0, 0.2],
        };
        let m = a.merge_min_variance(&b);
        assert_eq!(m.expected, vec![10.0, 4.0]);
    }

    #[test]
    fn knee_detects_steep_drop() {
        let curve = CumulativeCurve {
            thresholds: vec![0.2, 0.4, 0.6, 0.8],
            expected: vec![1000.0, 950.0, 100.0, 90.0],
            std_dev: vec![0.0; 4],
        };
        assert_eq!(curve.knee(), Some(2));
    }

    #[test]
    fn default_grid_ascending() {
        let g = default_grid(0.2);
        assert!(g.len() > 10);
        for w in g.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
