//! Durable corpus state: versioned snapshots plus an ingest WAL, so a
//! serving process restarts *warm* instead of re-sketching every corpus.
//!
//! # Layout
//!
//! One directory per corpus lineage holds:
//!
//! * `snapshot-<epoch>.bin` — a full image of the segmented sketch store
//!   at one epoch: sketch words, seed, epoch, segment geometry, dataset
//!   fingerprint, and the raw records. Length-prefixed binary, one
//!   checksum per section, written to a temp file and atomically renamed.
//! * `wal.bin` — an append-only log of ingest batches since the last
//!   snapshot. Each entry is length-prefixed and checksummed; the serving
//!   layer appends (and syncs) *before* acking an ingest, so an acked
//!   batch is never lost to a crash.
//!
//! # Recovery
//!
//! [`recover`] loads the newest parseable snapshot, refuses a WAL whose
//! header fingerprint disagrees ([`DurableError::FingerprintMismatch`]),
//! and replays the log. Entries at epochs the snapshot already covers are
//! the crash-between-snapshot-and-truncate overlap: they are re-sketched
//! onto the snapshot's own prefix and the result must satisfy
//! [`SketchSet::is_prefix_of`] against the snapshot — the PR 5 lineage
//! check doing exactly the job it was built for; divergence is refused
//! loudly ([`DurableError::DivergedSnapshot`]), never served. Entries past
//! the snapshot's epoch replay through the normal
//! [`StreamingSession::ingest`] path (`extend_batch` + cache `grow`), so
//! the recovered process reaches the same sketch bytes, epoch, and bucket
//! state a live process would have — which is why a warm restart cannot
//! change any probe or watch output. A torn final entry (crash mid-append)
//! is discarded silently: it was never acked.
//!
//! Checksums are FNV-1a 64 — not cryptographic, exactly like the
//! registry's Fx fingerprint: this guards against torn writes and bit
//! rot, not adversarial tampering.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::{LshFamily, SketchSet, Sketcher};

use crate::apss::ApssConfig;
use crate::cache::{CacheCapacity, SharedKnowledgeCache};
use crate::streaming::StreamingSession;

const SNAPSHOT_MAGIC: &[u8; 8] = b"PLSMSNAP";
const WAL_MAGIC: &[u8; 8] = b"PLSMWAL\0";
const FORMAT_VERSION: u32 = 1;

/// Bytes of the fixed WAL header (magic + version + fingerprint): a WAL
/// at exactly this size holds no entries. Serving-layer snapshot
/// schedulers compare [`CorpusStore::wal_bytes`] against this to decide
/// whether anything has accumulated since the last snapshot.
pub const WAL_HEADER_BYTES: u64 = 28;

/// Section tags inside a snapshot file.
const SECTION_META: u32 = 1;
const SECTION_WORDS: u32 = 2;
const SECTION_RECORDS: u32 = 3;

/// Why durable state could not be written or recovered. Every variant is
/// a *loud, structured* refusal — recovery never silently serves state it
/// cannot prove is the acked lineage.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem trouble talking to the data directory.
    Io(std::io::Error),
    /// The corpus directory holds no parseable snapshot at all.
    MissingSnapshot {
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// A snapshot file failed framing or checksum verification.
    CorruptSnapshot {
        /// The offending file.
        path: PathBuf,
        /// What failed (section, checksum, length).
        detail: String,
    },
    /// The WAL header's dataset fingerprint disagrees with the
    /// snapshot's — the two files are not from the same lineage.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot META section.
        snapshot: u128,
        /// Fingerprint recorded in the WAL header.
        wal: u128,
    },
    /// Replaying the WAL's overlap does not reproduce the snapshot's
    /// sketch words: `SketchSet::is_prefix_of` rejected the snapshot as
    /// diverged from the logged lineage.
    DivergedSnapshot {
        /// The snapshot epoch that failed verification.
        epoch: u64,
        /// What diverged.
        detail: String,
    },
    /// A checksum-valid WAL is not a contiguous epoch/record lineage
    /// (gap, overlap misalignment, or an entry at an impossible epoch).
    CorruptWal {
        /// The log file.
        path: PathBuf,
        /// What broke contiguity.
        detail: String,
    },
    /// The on-disk state was written under a different sketch
    /// configuration than the one supplied for recovery.
    ConfigMismatch {
        /// Which knob disagrees, with both values.
        detail: String,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "durable i/o error: {e}"),
            Self::MissingSnapshot { dir } => {
                write!(f, "no parseable snapshot in {}", dir.display())
            }
            Self::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            Self::FingerprintMismatch { snapshot, wal } => write!(
                f,
                "snapshot/WAL fingerprint mismatch: snapshot {snapshot:032x}, wal {wal:032x}"
            ),
            Self::DivergedSnapshot { epoch, detail } => write!(
                f,
                "snapshot at epoch {epoch} diverged from the WAL lineage: {detail}"
            ),
            Self::CorruptWal { path, detail } => {
                write!(f, "corrupt WAL {}: {detail}", path.display())
            }
            Self::ConfigMismatch { detail } => {
                write!(f, "recovery config mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a 64 over a byte slice — the per-section / per-entry checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian cursor over untrusted bytes; every read is bounds-checked
/// and `None` means "truncated here".
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }
}

/// Serializes records as `count · (nnz, dims, weight bits)` — the shared
/// payload shape of the snapshot RECORDS section and every WAL entry.
fn encode_records(buf: &mut Vec<u8>, records: &[SparseVector]) {
    push_u64(buf, records.len() as u64);
    for r in records {
        push_u32(buf, r.nnz() as u32);
        for &d in r.dims() {
            push_u32(buf, d);
        }
        for &w in r.weights() {
            push_u64(buf, w.to_bits());
        }
    }
}

/// Inverse of [`encode_records`]; `None` on any truncation. Round-trips
/// exactly: dims are stored sorted-unique, so `from_pairs` rebuilds a
/// bit-identical vector (same dims, same weight bits) and therefore the
/// same registry fingerprint.
fn decode_records(r: &mut Reader<'_>) -> Option<Vec<SparseVector>> {
    let count = r.u64()? as usize;
    // Cheap sanity bound: each record needs at least its nnz word.
    if count > r.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let nnz = r.u32()? as usize;
        if nnz.checked_mul(12)? > r.remaining() {
            return None;
        }
        let mut dims = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            dims.push(r.u32()?);
        }
        let mut pairs = Vec::with_capacity(nnz);
        for &d in &dims {
            pairs.push((d, f64::from_bits(r.u64()?)));
        }
        out.push(SparseVector::from_pairs(pairs));
    }
    Some(out)
}

fn family_tag(family: LshFamily) -> u8 {
    match family {
        LshFamily::MinHash => 0,
        LshFamily::SimHash => 1,
    }
}

fn family_from_tag(tag: u8) -> Option<LshFamily> {
    match tag {
        0 => Some(LshFamily::MinHash),
        1 => Some(LshFamily::SimHash),
        _ => None,
    }
}

/// A fully decoded snapshot: everything needed to restore the segmented
/// sketch store and its records bit-identically.
struct SnapshotState {
    fingerprint: u128,
    family: LshFamily,
    n_hashes: usize,
    seed: u64,
    segment_records: usize,
    epoch: u64,
    records: Vec<SparseVector>,
    words: Vec<u64>,
}

/// Serializes one snapshot: header, then META / WORDS / RECORDS sections,
/// each framed `tag · len · payload · checksum(payload)`.
fn encode_snapshot(fingerprint: u128, records: &[SparseVector], sketches: &SketchSet) -> Vec<u8> {
    assert_eq!(
        records.len(),
        sketches.len(),
        "snapshot records and sketches must cover the same corpus"
    );
    let stride = SketchSet::words_per_record(sketches.family(), sketches.n_hashes());
    let mut meta = Vec::with_capacity(64);
    push_u128(&mut meta, fingerprint);
    meta.push(family_tag(sketches.family()));
    push_u64(&mut meta, sketches.n_hashes() as u64);
    push_u64(&mut meta, sketches.seed());
    push_u64(&mut meta, sketches.segment_records() as u64);
    push_u64(&mut meta, sketches.epoch());
    push_u64(&mut meta, sketches.len() as u64);
    push_u64(&mut meta, (sketches.len() * stride) as u64);

    let mut words = Vec::with_capacity(sketches.len() * stride * 8);
    for run in sketches.word_segments() {
        for &w in run {
            push_u64(&mut words, w);
        }
    }

    let mut recs = Vec::new();
    encode_records(&mut recs, records);

    let mut out = Vec::with_capacity(words.len() + recs.len() + 128);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    for (tag, payload) in [
        (SECTION_META, &meta),
        (SECTION_WORDS, &words),
        (SECTION_RECORDS, &recs),
    ] {
        push_u32(&mut out, tag);
        push_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(payload);
        push_u64(&mut out, checksum(payload));
    }
    out
}

/// Parses and verifies one snapshot file's bytes.
fn parse_snapshot(path: &Path, bytes: &[u8]) -> Result<SnapshotState, DurableError> {
    let corrupt = |detail: String| DurableError::CorruptSnapshot {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(bytes);
    match r.take(8) {
        Some(magic) if magic == SNAPSHOT_MAGIC => {}
        _ => return Err(corrupt("bad magic".into())),
    }
    match r.u32() {
        Some(FORMAT_VERSION) => {}
        Some(v) => return Err(corrupt(format!("unsupported version {v}"))),
        None => return Err(corrupt("truncated header".into())),
    }
    let mut section = |want: u32| -> Result<&[u8], DurableError> {
        let tag = r
            .u32()
            .ok_or_else(|| corrupt("truncated section tag".into()))?;
        if tag != want {
            return Err(corrupt(format!("expected section {want}, found {tag}")));
        }
        let len = r
            .u64()
            .ok_or_else(|| corrupt("truncated section length".into()))? as usize;
        let payload = r
            .take(len)
            .ok_or_else(|| corrupt(format!("section {want} truncated at {len} bytes")))?;
        let want_sum = r
            .u64()
            .ok_or_else(|| corrupt(format!("section {want} missing checksum")))?;
        if checksum(payload) != want_sum {
            return Err(corrupt(format!("section {want} checksum mismatch")));
        }
        Ok(payload)
    };

    let meta = section(SECTION_META)?;
    let words_raw = section(SECTION_WORDS)?;
    let recs_raw = section(SECTION_RECORDS)?;

    let mut m = Reader::new(meta);
    let parse =
        |field: &str, v: Option<u64>| v.ok_or_else(|| corrupt(format!("META missing {field}")));
    let fingerprint = m
        .u128()
        .ok_or_else(|| corrupt("META missing fingerprint".into()))?;
    let family_tag = m
        .take(1)
        .ok_or_else(|| corrupt("META missing family".into()))?[0];
    let family = family_from_tag(family_tag)
        .ok_or_else(|| corrupt(format!("unknown hash family tag {family_tag}")))?;
    let n_hashes = parse("n_hashes", m.u64())? as usize;
    let seed = parse("seed", m.u64())?;
    let segment_records = parse("segment_records", m.u64())? as usize;
    let epoch = parse("epoch", m.u64())?;
    let record_count = parse("records", m.u64())? as usize;
    let word_count = parse("word count", m.u64())? as usize;

    let stride = SketchSet::words_per_record(family, n_hashes);
    if word_count != record_count * stride {
        return Err(corrupt(format!(
            "META claims {word_count} words for {record_count} records of stride {stride}"
        )));
    }
    if words_raw.len() != word_count * 8 {
        return Err(corrupt(format!(
            "WORDS section holds {} bytes, META claims {word_count} words",
            words_raw.len()
        )));
    }
    let words: Vec<u64> = words_raw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();

    let mut rr = Reader::new(recs_raw);
    let records =
        decode_records(&mut rr).ok_or_else(|| corrupt("RECORDS section truncated".into()))?;
    if rr.remaining() != 0 {
        return Err(corrupt("RECORDS section has trailing bytes".into()));
    }
    if records.len() != record_count {
        return Err(corrupt(format!(
            "RECORDS holds {} records, META claims {record_count}",
            records.len()
        )));
    }
    Ok(SnapshotState {
        fingerprint,
        family,
        n_hashes,
        seed,
        segment_records,
        epoch,
        records,
        words,
    })
}

/// One decoded WAL entry: the batch one acked ingest appended.
pub struct WalEntry {
    /// The corpus epoch *after* this batch was adopted (epoch 0 is the
    /// published corpus, so entries start at 1).
    pub epoch: u64,
    /// Record index the batch starts at — `len()` before the ingest.
    pub start_record: u64,
    /// The batch's records, bit-exact.
    pub batch: Vec<SparseVector>,
}

/// A decoded WAL: header fingerprint, parseable entries, and whether a
/// torn tail was discarded.
pub struct WalContents {
    /// Lineage fingerprint from the header.
    pub fingerprint: u128,
    /// Every checksum-valid entry, in append order.
    pub entries: Vec<WalEntry>,
    /// True when trailing bytes failed framing/checksum and were dropped —
    /// a crash mid-append; the torn entry was never acked, so discarding
    /// it is the correct recovery.
    pub tail_discarded: bool,
}

fn wal_header(fingerprint: u128) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_BYTES as usize);
    out.extend_from_slice(WAL_MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u128(&mut out, fingerprint);
    out
}

/// Decodes a WAL file's bytes. Framing or checksum failure part-way
/// through is a *torn tail*: everything before it is returned, everything
/// from it on is discarded. A bad header is [`DurableError::CorruptWal`].
fn parse_wal(path: &Path, bytes: &[u8]) -> Result<WalContents, DurableError> {
    let corrupt = |detail: String| DurableError::CorruptWal {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(bytes);
    match r.take(8) {
        Some(magic) if magic == WAL_MAGIC => {}
        _ => return Err(corrupt("bad magic".into())),
    }
    match r.u32() {
        Some(FORMAT_VERSION) => {}
        Some(v) => return Err(corrupt(format!("unsupported version {v}"))),
        None => return Err(corrupt("truncated header".into())),
    }
    let fingerprint = r
        .u128()
        .ok_or_else(|| corrupt("truncated header fingerprint".into()))?;
    let mut entries = Vec::new();
    let mut tail_discarded = false;
    while r.remaining() > 0 {
        let entry = (|| {
            let len = r.u64()? as usize;
            let want_sum = r.u64()?;
            let payload = r.take(len)?;
            if checksum(payload) != want_sum {
                return None;
            }
            let mut p = Reader::new(payload);
            let epoch = p.u64()?;
            let start_record = p.u64()?;
            let batch = decode_records(&mut p)?;
            if p.remaining() != 0 {
                return None;
            }
            Some(WalEntry {
                epoch,
                start_record,
                batch,
            })
        })();
        match entry {
            Some(e) => entries.push(e),
            None => {
                tail_discarded = true;
                break;
            }
        }
    }
    Ok(WalContents {
        fingerprint,
        entries,
        tail_discarded,
    })
}

/// Reads and decodes a corpus directory's WAL, or `None` when no log
/// exists yet.
pub fn read_wal(dir: &Path) -> Result<Option<WalContents>, DurableError> {
    let path = dir.join("wal.bin");
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    parse_wal(&path, &bytes).map(Some)
}

/// The durable half of one served corpus: its directory, lineage
/// fingerprint, and open WAL handle. All methods are individually
/// thread-safe; callers that need ingest/snapshot *atomicity with the
/// in-memory engine* (the serving layer) must additionally serialize
/// those two operations against each other — see
/// `ProbeService::snapshot_corpora`.
pub struct CorpusStore {
    dir: PathBuf,
    fingerprint: u128,
    wal: Mutex<WalHandle>,
    /// Duplicate handle to `wal.bin` (same file description) used for
    /// `sync_data` *outside* the append lock, so a leader's fsync never
    /// blocks concurrent appenders from writing into the page cache.
    sync_file: File,
    sync: Mutex<SyncProgress>,
    synced_cv: Condvar,
    acked_appends: AtomicU64,
    append_syncs: AtomicU64,
}

struct WalHandle {
    file: File,
    bytes: u64,
}

/// Group-commit bookkeeping: monotone byte marks independent of WAL
/// truncation, so a snapshot restarting the log cannot confuse a waiter.
struct SyncProgress {
    /// Total WAL entry bytes ever appended (never reset).
    appended: u64,
    /// Prefix of `appended` known durable — covered by an fsync or by a
    /// snapshot that subsumed the log.
    synced: u64,
    /// A leader's fsync is in flight; late arrivals wait instead of
    /// issuing their own.
    leader: bool,
}

/// Group-commit counters: how many ingest batches were acked durable and
/// how many `sync_data` calls paid for them. Coalescing shows up as
/// `syncs < acked_appends` under concurrent writers; a strictly serial
/// writer sees them equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSyncStats {
    /// Ingest batches acked after a covering sync.
    pub acked_appends: u64,
    /// `sync_data` calls issued on behalf of those acks.
    pub syncs: u64,
}

impl CorpusStore {
    /// Opens (creating if needed) a corpus directory and its WAL. A
    /// pre-existing WAL must carry the same fingerprint —
    /// [`DurableError::FingerprintMismatch`] otherwise.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u128) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let path = dir.join("wal.bin");
        let fresh = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut bytes = file.metadata()?.len();
        if fresh || bytes == 0 {
            let header = wal_header(fingerprint);
            file.write_all(&header)?;
            file.sync_data()?;
            bytes = header.len() as u64;
        } else {
            // Validate only the header here (entries are parsed at
            // recovery); a short or alien header is a loud error.
            let mut head = vec![0u8; (WAL_HEADER_BYTES as usize).min(bytes as usize)];
            let mut reader = File::open(&path)?;
            reader.read_exact(&mut head)?;
            let contents = parse_wal(&path, &head)?;
            if contents.fingerprint != fingerprint {
                return Err(DurableError::FingerprintMismatch {
                    snapshot: fingerprint,
                    wal: contents.fingerprint,
                });
            }
        }
        let sync_file = file.try_clone()?;
        Ok(Self {
            dir,
            fingerprint,
            wal: Mutex::new(WalHandle { file, bytes }),
            sync_file,
            sync: Mutex::new(SyncProgress {
                appended: 0,
                synced: 0,
                leader: false,
            }),
            synced_cv: Condvar::new(),
            acked_appends: AtomicU64::new(0),
            append_syncs: AtomicU64::new(0),
        })
    }

    /// The lineage fingerprint this store was opened under.
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL size in bytes (header included) — the background
    /// snapshotter's truncation trigger.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock").bytes
    }

    /// Appends one adopted ingest batch to the WAL and waits until a sync
    /// covers it. The serving layer calls this *before* acking the
    /// ingest, so every acked batch survives a crash.
    ///
    /// Concurrent appenders **group-commit**: the first waiter becomes
    /// the sync leader and issues one `sync_data` covering every byte
    /// appended so far; the rest wait on the synced offset instead of
    /// paying their own fsync. [`Self::sync_stats`] exposes the
    /// coalescing ratio.
    pub fn append_ingest(
        &self,
        epoch: u64,
        start_record: usize,
        batch: &[SparseVector],
    ) -> Result<(), DurableError> {
        let mark = self.log_ingest(epoch, start_record, batch)?;
        self.wait_durable(mark)
    }

    /// Writes one ingest entry into the WAL *without* syncing, returning
    /// a mark to hand to [`Self::wait_durable`]. Split out so a caller
    /// holding a broader exclusion (the serving layer's per-corpus
    /// persist lock) can log under the lock but wait for the covering
    /// sync outside it — which is what lets concurrent ingests coalesce
    /// into one fsync at all.
    pub fn log_ingest(
        &self,
        epoch: u64,
        start_record: usize,
        batch: &[SparseVector],
    ) -> Result<u64, DurableError> {
        let mut payload = Vec::new();
        push_u64(&mut payload, epoch);
        push_u64(&mut payload, start_record as u64);
        encode_records(&mut payload, batch);
        let mut entry = Vec::with_capacity(payload.len() + 16);
        push_u64(&mut entry, payload.len() as u64);
        push_u64(&mut entry, checksum(&payload));
        entry.extend_from_slice(&payload);
        let mut wal = self.wal.lock().expect("wal lock");
        wal.file.write_all(&entry)?;
        wal.bytes += entry.len() as u64;
        // Count the bytes into the monotone append mark while still
        // holding the append lock, so `appended` only ever covers bytes
        // already written into the page cache.
        let mut sync = self.sync.lock().expect("wal sync state");
        sync.appended += entry.len() as u64;
        Ok(sync.appended)
    }

    /// Blocks until every byte up to `mark` (from [`Self::log_ingest`])
    /// is durable: covered by an fsync — ours or a concurrent leader's —
    /// or subsumed by a snapshot that truncated the log.
    pub fn wait_durable(&self, mark: u64) -> Result<(), DurableError> {
        let mut sync = self.sync.lock().expect("wal sync state");
        loop {
            if sync.synced >= mark {
                self.acked_appends.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if !sync.leader {
                sync.leader = true;
                let target = sync.appended;
                drop(sync);
                let res = self.sync_file.sync_data();
                self.append_syncs.fetch_add(1, Ordering::Relaxed);
                sync = self.sync.lock().expect("wal sync state");
                sync.leader = false;
                if res.is_ok() {
                    sync.synced = sync.synced.max(target);
                }
                self.synced_cv.notify_all();
                res?;
            } else {
                sync = self.synced_cv.wait(sync).expect("wal sync state poisoned");
            }
        }
    }

    /// Group-commit counters accumulated over this store's lifetime.
    pub fn sync_stats(&self) -> WalSyncStats {
        WalSyncStats {
            acked_appends: self.acked_appends.load(Ordering::Relaxed),
            syncs: self.append_syncs.load(Ordering::Relaxed),
        }
    }

    /// Writes a snapshot of `(records, sketches)` — temp file, sync,
    /// atomic rename — then truncates the WAL (those epochs are now in
    /// the snapshot) and prunes all but the two newest snapshot files.
    /// Returns the snapshot's size in bytes.
    ///
    /// The WAL lock is held across the whole operation so no concurrent
    /// append can land in the about-to-be-truncated log and be lost;
    /// callers must pass a `(records, sketches)` view taken under the
    /// same exclusion (the serving layer's per-corpus persist lock).
    pub fn write_snapshot(
        &self,
        records: &[SparseVector],
        sketches: &SketchSet,
    ) -> Result<u64, DurableError> {
        let mut wal = self.wal.lock().expect("wal lock");
        let bytes = encode_snapshot(self.fingerprint, records, sketches);
        let len = bytes.len() as u64;
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        let name = format!("snapshot-{:020}.bin", sketches.epoch());
        fs::rename(&tmp, self.dir.join(&name))?;
        // The snapshot now covers every logged epoch: restart the WAL.
        wal.file.set_len(0)?;
        let header = wal_header(self.fingerprint);
        wal.file.write_all(&header)?;
        wal.file.sync_data()?;
        wal.bytes = header.len() as u64;
        // Every byte logged so far is now durable via the snapshot; wake
        // any appender still waiting on a covering sync. (Under the
        // documented caller contract the view passed in was taken under
        // the same exclusion, so no unacked entry can be truncated away.)
        {
            let mut sync = self.sync.lock().expect("wal sync state");
            sync.synced = sync.appended;
            self.synced_cv.notify_all();
        }
        drop(wal);
        // Keep the newest two snapshots: the one just written plus one
        // fallback for a corrupt-newest recovery.
        let mut names = snapshot_names(&self.dir)?;
        names.sort();
        for stale in names.iter().rev().skip(2) {
            let _ = fs::remove_file(self.dir.join(stale));
        }
        Ok(len)
    }
}

/// Snapshot filenames in `dir` (unsorted). Zero-padded epochs make the
/// lexical sort numeric.
fn snapshot_names(dir: &Path) -> Result<Vec<String>, DurableError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("snapshot-") && name.ends_with(".bin") {
            out.push(name);
        }
    }
    Ok(out)
}

/// A corpus brought back warm: the restored session/cache pair plus
/// recovery provenance for logs and benchmarks.
pub struct RecoveredCorpus {
    /// A streaming session over the recovered corpus, its cache seeded
    /// from the snapshot words — no corpus re-sketch happened.
    pub session: StreamingSession,
    /// The shared cache, ready to [`install`](crate::cache::CacheRegistry::install)
    /// under [`fingerprint`](Self::fingerprint).
    pub cache: Arc<SharedKnowledgeCache>,
    /// The lineage's publish-time fingerprint, from the snapshot META.
    pub fingerprint: u128,
    /// Epoch of the snapshot that seeded recovery.
    pub snapshot_epoch: u64,
    /// Records the snapshot held.
    pub snapshot_records: usize,
    /// Epoch after WAL replay — what the corpus now serves.
    pub epoch: u64,
    /// WAL entries replayed past the snapshot.
    pub replayed_entries: usize,
    /// Records those entries added.
    pub replayed_records: usize,
    /// True when a torn (never-acked) WAL tail was discarded.
    pub wal_tail_discarded: bool,
}

/// Recovers one corpus directory: newest parseable snapshot, fingerprint
/// cross-check, overlap verification via [`SketchSet::is_prefix_of`],
/// then tail replay through the normal ingest path. See the module docs
/// for the full state machine; every failure is a structured
/// [`DurableError`].
pub fn recover(
    dir: &Path,
    measure: Similarity,
    cfg: ApssConfig,
    capacity: CacheCapacity,
) -> Result<RecoveredCorpus, DurableError> {
    // Newest parseable snapshot wins; a corrupt newest falls back to the
    // previous one; nothing parseable is a loud refusal.
    let mut names = snapshot_names(dir)?;
    names.sort();
    let mut snap: Option<SnapshotState> = None;
    let mut last_err: Option<DurableError> = None;
    for name in names.iter().rev() {
        let path = dir.join(name);
        let bytes = fs::read(&path)?;
        match parse_snapshot(&path, &bytes) {
            Ok(state) => {
                snap = Some(state);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let snap = match (snap, last_err) {
        (Some(s), _) => s,
        (None, Some(e)) => return Err(e),
        (None, None) => {
            return Err(DurableError::MissingSnapshot {
                dir: dir.to_path_buf(),
            })
        }
    };

    // The supplied serving config must be the one the state was written
    // under — a silent mismatch would re-sketch ingests differently.
    let family = LshFamily::for_measure(measure);
    if snap.family != family {
        return Err(DurableError::ConfigMismatch {
            detail: format!(
                "snapshot family {:?} vs measure {measure:?} (family {family:?})",
                snap.family
            ),
        });
    }
    if snap.n_hashes != cfg.n_hashes {
        return Err(DurableError::ConfigMismatch {
            detail: format!(
                "snapshot n_hashes {} vs config {}",
                snap.n_hashes, cfg.n_hashes
            ),
        });
    }
    if snap.seed != cfg.seed {
        return Err(DurableError::ConfigMismatch {
            detail: format!("snapshot seed {} vs config {}", snap.seed, cfg.seed),
        });
    }

    let wal_path = dir.join("wal.bin");
    let wal = read_wal(dir)?;
    let (entries, tail_discarded) = match wal {
        Some(contents) => {
            if contents.fingerprint != snap.fingerprint {
                return Err(DurableError::FingerprintMismatch {
                    snapshot: snap.fingerprint,
                    wal: contents.fingerprint,
                });
            }
            (contents.entries, contents.tail_discarded)
        }
        None => (Vec::new(), false),
    };
    let corrupt_wal = |detail: String| DurableError::CorruptWal {
        path: wal_path.clone(),
        detail,
    };
    for pair in entries.windows(2) {
        if pair[1].epoch != pair[0].epoch + 1 {
            return Err(corrupt_wal(format!(
                "epoch gap: entry at epoch {} follows {}",
                pair[1].epoch, pair[0].epoch
            )));
        }
        if pair[1].start_record != pair[0].start_record + pair[0].batch.len() as u64 {
            return Err(corrupt_wal(format!(
                "record gap at epoch {}: starts at {}, previous entry ends at {}",
                pair[1].epoch,
                pair[1].start_record,
                pair[0].start_record + pair[0].batch.len() as u64
            )));
        }
    }
    if entries.iter().any(|e| e.epoch == 0) {
        return Err(corrupt_wal(
            "entry at epoch 0 (the published corpus)".into(),
        ));
    }
    let split = entries.partition_point(|e| e.epoch <= snap.epoch);
    let (overlap, tail) = entries.split_at(split);

    // Overlap entries exist only after a crash between snapshot-write and
    // WAL-truncate. Re-sketch exactly those batches onto the snapshot's
    // own prefix and demand the lineage check passes — this is the
    // designed `is_prefix_of` integrity gate.
    let stride = SketchSet::words_per_record(snap.family, snap.n_hashes);
    if let Some(first) = overlap.first() {
        let k = first.start_record as usize;
        if k > snap.records.len() {
            return Err(corrupt_wal(format!(
                "overlap starts at record {k}, snapshot has {}",
                snap.records.len()
            )));
        }
        let last = overlap.last().expect("nonempty overlap");
        if last.epoch != snap.epoch {
            return Err(corrupt_wal(format!(
                "overlap ends at epoch {}, snapshot is at {}",
                last.epoch, snap.epoch
            )));
        }
        let mut replay = SketchSet::from_words(
            snap.family,
            snap.n_hashes,
            snap.seed,
            snap.segment_records,
            first.epoch - 1,
            k,
            &snap.words[..k * stride],
        );
        let sketcher =
            Sketcher::new(snap.family, snap.n_hashes, snap.seed).with_parallelism(cfg.parallelism);
        for entry in overlap {
            if entry.start_record as usize != replay.len() {
                return Err(corrupt_wal(format!(
                    "overlap entry at epoch {} starts at record {}, replay is at {}",
                    entry.epoch,
                    entry.start_record,
                    replay.len()
                )));
            }
            sketcher.extend_batch(&entry.batch, &mut replay);
        }
        if replay.len() != snap.records.len() {
            return Err(DurableError::DivergedSnapshot {
                epoch: snap.epoch,
                detail: format!(
                    "overlap replay covers {} records, snapshot holds {}",
                    replay.len(),
                    snap.records.len()
                ),
            });
        }
        if !replay.is_prefix_of(&SketchSet::from_words(
            snap.family,
            snap.n_hashes,
            snap.seed,
            snap.segment_records,
            snap.epoch,
            snap.records.len(),
            &snap.words,
        )) {
            return Err(DurableError::DivergedSnapshot {
                epoch: snap.epoch,
                detail: "replayed WAL batches produce different sketch words".into(),
            });
        }
    }
    if overlap.is_empty() {
        if let Some(first) = tail.first() {
            if first.epoch != snap.epoch + 1 {
                return Err(corrupt_wal(format!(
                    "first tail entry at epoch {}, snapshot at {} — missing entries",
                    first.epoch, snap.epoch
                )));
            }
        }
    }

    // Restore the store bit-identically (words, epoch, geometry), seed
    // the shared cache from it — no corpus re-sketch — and replay the
    // tail through the normal ingest path so memos/buckets grow exactly
    // as a live process's would have.
    let restored = SketchSet::from_words(
        snap.family,
        snap.n_hashes,
        snap.seed,
        snap.segment_records,
        snap.epoch,
        snap.records.len(),
        &snap.words,
    );
    let snapshot_records = snap.records.len();
    let cache = Arc::new(SharedKnowledgeCache::with_capacity(restored, capacity));
    let mut session =
        StreamingSession::from_records(snap.records, measure, cfg).with_shared_cache(cache.clone());
    let mut replayed_records = 0usize;
    for entry in tail {
        if entry.start_record as usize != session.len() {
            return Err(corrupt_wal(format!(
                "tail entry at epoch {} starts at record {}, corpus is at {}",
                entry.epoch,
                entry.start_record,
                session.len()
            )));
        }
        let report = session.ingest(&entry.batch);
        if report.epoch != entry.epoch {
            return Err(corrupt_wal(format!(
                "tail replay reached epoch {}, entry claims {}",
                report.epoch, entry.epoch
            )));
        }
        replayed_records += entry.batch.len();
    }
    Ok(RecoveredCorpus {
        epoch: session.epoch(),
        session,
        cache,
        fingerprint: snap.fingerprint,
        snapshot_epoch: snap.epoch,
        snapshot_records,
        replayed_entries: tail.len(),
        replayed_records,
        wal_tail_discarded: tail_discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_fnv1a_64() {
        // Known FNV-1a vectors: empty input is the offset basis.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn records_round_trip_bit_exact() {
        let records = vec![
            SparseVector::from_pairs(vec![(3, 1.5), (9, -2.25), (40, 0.125)]),
            SparseVector::from_pairs(vec![]),
            SparseVector::from_pairs(vec![(0, f64::MIN_POSITIVE)]),
        ];
        let mut buf = Vec::new();
        encode_records(&mut buf, &records);
        let mut r = Reader::new(&buf);
        let back = decode_records(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            assert_eq!(a.dims(), b.dims());
            let bits =
                |v: &SparseVector| v.weights().iter().map(|w| w.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn truncated_record_payload_is_rejected_not_panicked() {
        let records = vec![SparseVector::from_pairs(vec![(1, 1.0), (2, 2.0)])];
        let mut buf = Vec::new();
        encode_records(&mut buf, &records);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_records(&mut r).is_none(), "cut at {cut}");
        }
    }
}
