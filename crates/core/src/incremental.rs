//! Incremental (streaming) pair-count estimates — Figs. 2.6–2.8.
//!
//! PLASMA-HD presents partial results while the probe runs: records are
//! processed one at a time, each joined against all previously seen
//! records, and after every reporting step the pair counts observed so far
//! are extrapolated to the full dataset. The figures show these running
//! estimates converging to within a few percent of the final value after
//! only 10–20% of the data — the "five- to ten-fold reduction in processing
//! time to deliver a good estimate".

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{BayesLsh, ProbeTable};
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::SketchSet;
use rayon::prelude::*;

use crate::apss::{build_sketches, ApssConfig};
use crate::cache::SharedKnowledgeCache;

/// Frontier width from which the per-record join shards across workers;
/// below it, thread spawn overhead (and the per-worker `ProbeTable`
/// rebuild) dominates the `k` pair evaluations.
const PAR_JOIN_MIN: usize = 4096;

/// `Pr(S ≥ t2)` for every report threshold, from the `(matches, hashes)`
/// cell one evaluation stopped at.
fn tail_masses(
    engine: &BayesLsh,
    grid: &[f64],
    report_thresholds: &[f64],
    matches: u32,
    hashes: u32,
) -> Vec<f64> {
    let post = engine.posterior(matches, hashes);
    report_thresholds
        .iter()
        .map(|&t2| {
            let mut tail = 0.0;
            for (gi, &w) in post.iter().enumerate() {
                if grid[gi] >= t2 {
                    tail += w;
                }
            }
            tail
        })
        .collect()
}

/// One reporting step of an incremental run.
#[derive(Debug, Clone)]
pub struct IncrementalStep {
    /// Fraction of records processed, in `(0, 1]`.
    pub fraction: f64,
    /// Extrapolated estimate of the final expected pair count at each of
    /// the requested report thresholds.
    pub estimates: Vec<f64>,
}

/// Result of an incremental APSS run.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// Probe threshold `t1` driving pruning.
    pub t1: f64,
    /// Report thresholds `t2` (each gets one estimate series).
    pub report_thresholds: Vec<f64>,
    /// One entry per reporting step.
    pub steps: Vec<IncrementalStep>,
    /// Final (100%) expected counts per report threshold.
    pub final_estimates: Vec<f64>,
}

/// Runs APSS record-at-a-time at probe threshold `t1`, reporting
/// extrapolated estimates for each `report_thresholds` entry at every
/// `report_points` fraction of the data.
///
/// Extrapolation: after `k` records, `C(k,2)` of `C(n,2)` pairs have been
/// evaluated; the running expected count at `t2` scales by the inverse of
/// that coverage. Record order is the dataset order, so callers wanting an
/// unbiased stream should shuffle first (the synthetic generators already
/// emit records in random order).
pub fn incremental_apss(
    records: &[SparseVector],
    measure: Similarity,
    t1: f64,
    report_thresholds: &[f64],
    report_points: &[f64],
    cfg: &ApssConfig,
) -> IncrementalRun {
    incremental_apss_gated(
        records,
        measure,
        t1,
        report_thresholds,
        report_points,
        cfg,
        PAR_JOIN_MIN,
    )
}

/// Test hook: [`incremental_apss`] with an explicit wide-frontier gate
/// (the frontier width from which the per-record join shards across
/// workers), so integration tests can exercise the parallel join on
/// datasets small enough for CI. Results are bit-identical at every gate.
#[doc(hidden)]
pub fn incremental_apss_gated(
    records: &[SparseVector],
    measure: Similarity,
    t1: f64,
    report_thresholds: &[f64],
    report_points: &[f64],
    cfg: &ApssConfig,
    par_join_min: usize,
) -> IncrementalRun {
    let (sketches, _) = build_sketches(records, measure, cfg);
    run_incremental(
        records,
        measure,
        &sketches,
        None,
        t1,
        report_thresholds,
        report_points,
        cfg,
        par_join_min,
    )
}

/// [`incremental_apss`] wired into a [`SharedKnowledgeCache`]: sketches
/// come from the cache (zero sketch cost), pair evaluations read memoized
/// match profiles, and every comparison this run performs is published
/// back — so a streaming pass warms the cache for interactive sessions
/// and vice versa. Estimates are bit-identical to [`incremental_apss`]
/// over the same sketches: profile-backed evaluation replays the fresh
/// schedule, so cache warmth changes only the work done, never the
/// numbers reported.
///
/// The cache's [`crate::cache::CacheCapacity`] applies to this run's
/// publications like any probe's: a bounded pool may evict memos this
/// pass published (or wanted to read), which costs recomputation on later
/// touches but never changes any reported estimate.
pub fn incremental_apss_with_cache(
    records: &[SparseVector],
    measure: Similarity,
    cache: &SharedKnowledgeCache,
    t1: f64,
    report_thresholds: &[f64],
    report_points: &[f64],
    cfg: &ApssConfig,
) -> IncrementalRun {
    incremental_apss_with_cache_gated(
        records,
        measure,
        cache,
        t1,
        report_thresholds,
        report_points,
        cfg,
        PAR_JOIN_MIN,
    )
}

/// Test hook: [`incremental_apss_with_cache`] with an explicit
/// wide-frontier gate (see [`incremental_apss_gated`]). Results are
/// bit-identical at every gate.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn incremental_apss_with_cache_gated(
    records: &[SparseVector],
    measure: Similarity,
    cache: &SharedKnowledgeCache,
    t1: f64,
    report_thresholds: &[f64],
    report_points: &[f64],
    cfg: &ApssConfig,
    par_join_min: usize,
) -> IncrementalRun {
    assert_eq!(
        cache.sketches().len(),
        records.len(),
        "shared cache sketches {} records, incremental run has {}",
        cache.sketches().len(),
        records.len()
    );
    assert_eq!(
        cache.sketches().family(),
        LshFamily::for_measure(measure),
        "shared cache hash family does not serve this run's measure"
    );
    let memos = cache.schedule_accepts(cfg.bayes.batch).then_some(cache);
    // Pin one corpus epoch for the whole run (the cache may be growing
    // under concurrent streaming ingest).
    let sketches = cache.sketches();
    run_incremental(
        records,
        measure,
        &sketches,
        memos,
        t1,
        report_thresholds,
        report_points,
        cfg,
        par_join_min,
    )
}

/// Evaluates one pair, through the shared cache's memos when available.
fn eval_pair(
    table: &mut ProbeTable<'_>,
    sketches: &SketchSet,
    cache: Option<&SharedKnowledgeCache>,
    j: usize,
    k: usize,
) -> (u32, u32) {
    match cache {
        Some(cache) => {
            let key = (j as u32, k as u32);
            let mut profile = cache.load_profile(key);
            let had_profile = !profile.is_empty();
            let out = table.evaluate_profiled(sketches, j, k, &mut profile);
            let memo = (out.new_hashes > 0 || !had_profile).then_some((profile, out.estimate));
            cache.publish(key, memo, None);
            (out.estimate.matches, out.estimate.hashes)
        }
        None => {
            let est = table.evaluate_pair(sketches, j, k);
            (est.matches, est.hashes)
        }
    }
}

/// The shared driver behind [`incremental_apss`] and
/// [`incremental_apss_with_cache`].
#[allow(clippy::too_many_arguments)]
fn run_incremental(
    records: &[SparseVector],
    measure: Similarity,
    sketches: &SketchSet,
    cache: Option<&SharedKnowledgeCache>,
    t1: f64,
    report_thresholds: &[f64],
    report_points: &[f64],
    cfg: &ApssConfig,
    par_join_min: usize,
) -> IncrementalRun {
    let n = records.len();
    let engine = BayesLsh::new(LshFamily::for_measure(measure), cfg.bayes);
    let mut table = engine.probe_table(t1);
    let grid = engine.grid_points().to_vec();
    let threads = crate::apss::eval_threads(cfg, n);

    // Tail masses per report threshold, memoized by the (m, n) cell the
    // pair evaluation stopped at (only ~1k distinct cells occur).
    let mut tail_memo: plasma_data::hash::FxHashMap<(u32, u32), Vec<f64>> =
        plasma_data::hash::FxHashMap::default();

    // Running sums of Pr(S ≥ t2) per report threshold.
    let mut running = vec![0.0f64; report_thresholds.len()];
    let mut steps = Vec::with_capacity(report_points.len());
    let mut next_report = 0usize;

    for k in 1..n {
        if threads > 1 && k >= par_join_min.max(1) {
            // Wide frontier: shard the join of record k against 0..k.
            // Workers only evaluate pairs, writing each evaluation's
            // (m, n) stopping cell into a j-indexed buffer; the fold
            // below walks that buffer in j order against the shared
            // cross-k tail memo. Additions therefore happen in exactly
            // the sequential order — results are bit-identical at every
            // thread count — and tail masses stay memoized across the
            // whole run instead of per worker.
            let shard = k.div_ceil(threads);
            let mut cells: Vec<(u32, u32)> = vec![(0, 0); k];
            cells.par_chunks_mut(shard).enumerate_for_each(|c, slice| {
                let mut table = engine.probe_table(t1);
                let lo = c * shard;
                for (off, cell) in slice.iter_mut().enumerate() {
                    *cell = eval_pair(&mut table, sketches, cache, lo + off, k);
                }
            });
            for &(m, h) in &cells {
                let tails = tail_memo
                    .entry((m, h))
                    .or_insert_with(|| tail_masses(&engine, &grid, report_thresholds, m, h));
                for (ti, tail) in tails.iter().enumerate() {
                    running[ti] += tail;
                }
            }
        } else {
            // Join record k against records 0..k.
            for j in 0..k {
                let (m, h) = eval_pair(&mut table, sketches, cache, j, k);
                let tails = tail_memo
                    .entry((m, h))
                    .or_insert_with(|| tail_masses(&engine, &grid, report_thresholds, m, h));
                for (ti, tail) in tails.iter().enumerate() {
                    running[ti] += tail;
                }
            }
        }
        let frac = (k + 1) as f64 / n as f64;
        while next_report < report_points.len() && frac >= report_points[next_report] {
            let pairs_done = (k + 1) * k / 2;
            let pairs_total = n * (n - 1) / 2;
            let scale = pairs_total as f64 / pairs_done as f64;
            steps.push(IncrementalStep {
                fraction: frac,
                estimates: running.iter().map(|&r| r * scale).collect(),
            });
            next_report += 1;
        }
    }
    IncrementalRun {
        t1,
        report_thresholds: report_thresholds.to_vec(),
        steps,
        final_estimates: running,
    }
}

impl IncrementalRun {
    /// Fraction of data after which every report threshold's estimate stays
    /// within `tol` (relative) of its final value — the convergence point
    /// the paper reads off the figures.
    pub fn convergence_fraction(&self, tol: f64) -> f64 {
        'steps: for (si, step) in self.steps.iter().enumerate() {
            for later in &self.steps[si..] {
                for (ti, &fin) in self.final_estimates.iter().enumerate() {
                    let denom = fin.max(1.0);
                    if (later.estimates[ti] - fin).abs() / denom > tol {
                        continue 'steps;
                    }
                }
            }
            return step.fraction;
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;

    fn dataset(n: usize) -> Vec<SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.7,
            ..GaussianSpec::new("t", n, 8, 4)
        }
        .generate(31)
        .records
    }

    #[test]
    fn estimates_converge_to_final() {
        let records = dataset(80);
        let run = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.75, 0.85],
            &[0.2, 0.4, 0.6, 0.8, 1.0],
            &ApssConfig::default(),
        );
        assert_eq!(run.steps.len(), 5);
        let last = run.steps.last().expect("has steps");
        for (ti, &fin) in run.final_estimates.iter().enumerate() {
            let rel = (last.estimates[ti] - fin).abs() / fin.max(1.0);
            assert!(rel < 0.02, "final step should equal final estimate ({rel})");
        }
    }

    #[test]
    fn early_estimates_are_in_the_ballpark() {
        let records = dataset(120);
        let run = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.7],
            &[0.3, 1.0],
            &ApssConfig::default(),
        );
        let early = run.steps[0].estimates[0];
        let fin = run.final_estimates[0];
        assert!(
            (early - fin).abs() / fin.max(1.0) < 0.5,
            "30% estimate {early} vs final {fin}"
        );
    }

    #[test]
    fn cached_incremental_run_is_bit_identical_and_warms_the_cache() {
        let records = dataset(80);
        let cfg = ApssConfig::default();
        let plain = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.75, 0.85],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        let (sketches, _) = crate::apss::build_sketches(&records, Similarity::Cosine, &cfg);
        let cache = SharedKnowledgeCache::new(sketches);
        let cached = incremental_apss_with_cache(
            &records,
            Similarity::Cosine,
            &cache,
            0.5,
            &[0.75, 0.85],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        for (a, b) in plain.steps.iter().zip(&cached.steps) {
            assert_eq!(a.fraction.to_bits(), b.fraction.to_bits());
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.to_bits(), y.to_bits(), "estimates must match exactly");
            }
        }
        for (x, y) in plain.final_estimates.iter().zip(&cached.final_estimates) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The streaming pass published every pair's profile: a session
        // probe at the same threshold now needs zero new hash work.
        assert!(!cache.is_empty());
        let probe = cache.probe(&records, Similarity::Cosine, 0.5, &cfg);
        assert_eq!(probe.stats.hashes_compared, 0);
        assert_eq!(probe.stats.cache_hits, probe.stats.candidates);
    }

    #[test]
    fn capped_cache_never_changes_incremental_estimates() {
        let records = dataset(70);
        let cfg = ApssConfig::default();
        let plain = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.75],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        let (sketches, _) = crate::apss::build_sketches(&records, Similarity::Cosine, &cfg);
        // A tiny byte cap evicts aggressively throughout the run…
        let cap = 2048;
        let cache = SharedKnowledgeCache::with_capacity(
            sketches,
            crate::cache::CacheCapacity::bounded(cap),
        );
        let capped = incremental_apss_with_cache(
            &records,
            Similarity::Cosine,
            &cache,
            0.5,
            &[0.75],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        // …but estimates are still bit-identical to the cacheless run,
        // and accounting stayed under the cap.
        for (a, b) in plain.steps.iter().zip(&capped.steps) {
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (x, y) in plain.final_estimates.iter().zip(&capped.final_estimates) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = cache.memory_stats();
        assert!(stats.memo_bytes <= cap, "{} > {cap}", stats.memo_bytes);
        assert!(stats.evicted_entries > 0, "a 2 KiB cap must have evicted");
    }

    #[test]
    fn incremental_run_on_a_grown_cache_matches_plain() {
        // A cache grown by streaming ingest serves incremental runs over
        // the full corpus: estimates bit-identical to a cacheless run,
        // with the carried old-pair memos saving work.
        let records = dataset(70);
        let cfg = ApssConfig::default();
        let mut streaming = crate::streaming::StreamingSession::from_records(
            records[..40].to_vec(),
            Similarity::Cosine,
            cfg,
        );
        streaming.probe(0.5);
        streaming.ingest(&records[40..]);
        let cache = streaming.shared_cache().expect("probed above");
        assert_eq!(cache.epoch(), 1);
        let plain = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.75],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        let grown = incremental_apss_with_cache(
            &records,
            Similarity::Cosine,
            &cache,
            0.5,
            &[0.75],
            &[0.25, 0.5, 1.0],
            &cfg,
        );
        for (a, b) in plain.steps.iter().zip(&grown.steps) {
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.to_bits(), y.to_bits(), "grown cache changed an estimate");
            }
        }
        for (x, y) in plain.final_estimates.iter().zip(&grown.final_estimates) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn convergence_fraction_is_sane() {
        let records = dataset(100);
        let run = incremental_apss(
            &records,
            Similarity::Cosine,
            0.5,
            &[0.75],
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            &ApssConfig::default(),
        );
        let frac = run.convergence_fraction(0.25);
        assert!(frac <= 1.0);
        assert!(frac > 0.0);
    }
}
