//! The PLASMA-HD engine.
//!
//! PLASMA-HD lets a user interactively probe the intrinsic connectivity and
//! clusterability of a high-dimensional dataset across the whole spectrum
//! of similarity thresholds (Ch. 2). The pieces:
//!
//! * [`apss`] — BayesLSH-backed all-pairs similarity search at a threshold,
//!   with candidate generation, pruning/concentration, and timing breakdown
//!   (sketching vs processing).
//! * [`cache`] — the knowledge cache: sketches plus memoized per-pair
//!   match profiles, reused across probes at different thresholds. The
//!   lock-striped [`SharedKnowledgeCache`] lets many concurrent sessions
//!   share one memo pool ([`CacheRegistry`] keys caches by dataset
//!   fingerprint), with probe outputs bit-identical to a private cache.
//!   Memory is boundable end to end: per-cache byte caps with LRU /
//!   shallowest-first eviction ([`CacheCapacity`]) and registry-wide
//!   cache-count/byte limits ([`cache::RegistryCapacity`]) — eviction
//!   never changes probe outputs, only work counters.
//! * [`cumulative`] — the Cumulative APSS Graph: estimated number of
//!   similar pairs at every threshold, with error bars, assembled from
//!   memoized estimates.
//! * [`incremental`] — streaming pair-count estimates after each fraction
//!   of the dataset processed (Figs. 2.6–2.8).
//! * [`streaming`] — the streaming ingest engine: a [`StreamingSession`]
//!   interleaves `ingest` (epoch-versioned batch-extend sketching) and
//!   `probe` over a growing corpus, with the knowledge cache carrying
//!   every old-pair memo across each epoch bump. Streamed probes are
//!   bit-identical to cold batch runs over the same corpus.
//! * [`watch`] — continuous probes: `watch(threshold)` subscriptions that
//!   receive only the per-epoch *delta* on every ingest ([`WatchDelta`]),
//!   with concatenated deltas bit-identical to a cold probe at every
//!   epoch.
//! * [`durable`] — snapshot + ingest-WAL persistence: a serving process
//!   restarts *warm* (sketch words restored, memos and buckets rebuilt by
//!   replaying the log through the normal ingest path), with
//!   `SketchSet::is_prefix_of` as the recovery integrity gate. Recovery
//!   either reproduces the exact live state or refuses with a structured
//!   [`durable::DurableError`] — it can never change probe outputs.
//! * [`cues`] — dimensionless visual cues: triangle vertex-cover histogram
//!   and clique/triangle density plots (Fig. 2.5).
//! * [`session`] — the interactive driver tying it all together.
//! * [`plot`] — ASCII and SVG renderers for the cues and curves.
//!
//! # Parallel engine
//!
//! The APSS hot path is parallel end to end, governed by one knob —
//! [`apss::ApssConfig::parallelism`] (`None` = all cores, `Some(1)` =
//! sequential):
//!
//! * sketching shards records into disjoint slices of the flat sketch
//!   buffer (`plasma_lsh::sketch`);
//! * banded candidate generation shards end to end — parallel bucket
//!   build plus hot-bucket pair-range splitting under
//!   [`apss::ApssConfig::shard`] ([`ShardPolicy`]) — and k-way merges
//!   per-shard sorted runs (`plasma_lsh::candidates`), so skewed key
//!   distributions cannot serialize a probe;
//! * pair evaluation chunks the candidate list with a private
//!   `ProbeTable` and stats partial per worker ([`apss`], [`cache`],
//!   [`topk`]), merging in candidate order.
//!
//! Probe outputs — pairs, estimates, and counter stats — are
//! bit-identical at every thread count, so experiments stay reproducible
//! while latency scales with cores. The only timing-dependent fields are
//! the `*_seconds` stats.

pub mod apss;
pub mod cache;
pub mod cues;
pub mod cumulative;
pub mod durable;
pub mod incremental;
pub mod plot;
pub mod session;
pub mod streaming;
pub mod topk;
pub mod watch;

pub use apss::{ApssConfig, ApssResult, CandidateStrategy};
pub use cache::{
    CacheCapacity, CacheMemoryStats, CacheRegistry, EvictionPolicy, KnowledgeCache,
    RegistryCapacity, SharedKnowledgeCache,
};
pub use cumulative::CumulativeCurve;
pub use durable::{CorpusStore, DurableError, RecoveredCorpus, WalSyncStats, WAL_HEADER_BYTES};
pub use plasma_lsh::ShardPolicy;
pub use session::{ProbeReport, Session};
pub use streaming::{IngestReport, StreamingSession};
pub use watch::{WatchDelta, WatchHandle, WatchRegistry};
