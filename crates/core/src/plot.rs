//! Plot rendering: ASCII charts for terminal output and SVG line charts.
//!
//! The demo system's GUI is replaced by headless renderers (see DESIGN.md's
//! substitution table): every visual cue is a data structure, and these
//! functions turn them into something a human can look at.

use std::fmt::Write as _;

/// Renders one or more named series as a fixed-size ASCII chart.
///
/// All series share the x-grid `xs`; y values are scaled together. NaN/∞
/// values are skipped.
pub fn ascii_chart(xs: &[f64], series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    let mut out = String::new();
    if xs.is_empty() || series.is_empty() {
        return out;
    }
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, ys) in series {
        for &y in ys.iter().filter(|y| y.is_finite()) {
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !ymin.is_finite() || ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let marks = ['*', '+', 'o', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (k, &y) in ys.iter().enumerate() {
            if !y.is_finite() || k >= xs.len() {
                continue;
            }
            let col = ((k as f64 / (xs.len().max(2) - 1) as f64) * (width - 1) as f64) as usize;
            let row = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }
    let _ = writeln!(out, "  {ymax:>12.4e} ┐");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "               │{line}");
    }
    let _ = writeln!(out, "  {ymin:>12.4e} ┘");
    let _ = writeln!(
        out,
        "               x: [{:.3} … {:.3}]",
        xs[0],
        xs[xs.len() - 1]
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "               {} {}", marks[si % marks.len()], name);
    }
    out
}

/// Renders named series as an SVG line chart with axis labels.
pub fn svg_chart(title: &str, xs: &[f64], series: &[(&str, &[f64])], log_y: bool) -> String {
    const W: f64 = 640.0;
    const H: f64 = 400.0;
    const ML: f64 = 70.0; // left margin
    const MB: f64 = 50.0; // bottom margin
    const MT: f64 = 40.0;
    const MR: f64 = 20.0;
    let colors = [
        "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
    ];

    let map_y = |y: f64| -> f64 {
        if log_y {
            y.max(1e-12).log10()
        } else {
            y
        }
    };
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, ys) in series {
        for &y in ys.iter().filter(|y| y.is_finite()) {
            let v = map_y(y);
            ymin = ymin.min(v);
            ymax = ymax.max(v);
        }
    }
    if !ymin.is_finite() || ymax <= ymin {
        ymin = 0.0;
        ymax = 1.0;
    }
    let (xmin, xmax) = (
        xs.first().copied().unwrap_or(0.0),
        xs.last().copied().unwrap_or(1.0),
    );
    let xspan = (xmax - xmin).max(1e-12);
    let px = |x: f64| ML + (x - xmin) / xspan * (W - ML - MR);
    let py = |y: f64| H - MB - (map_y(y) - ymin) / (ymax - ymin) * (H - MB - MT);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        W / 2.0,
        xml_escape(title)
    );
    // Axes.
    let _ = writeln!(
        svg,
        r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
        H - MB,
        W - MR,
        H - MB,
        H - MB
    );
    // Y tick labels.
    for k in 0..=4 {
        let v = ymin + (ymax - ymin) * k as f64 / 4.0;
        let label = if log_y {
            format!("1e{v:.1}")
        } else {
            format!("{v:.3}")
        };
        let y = H - MB - (H - MB - MT) * k as f64 / 4.0;
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" font-size="10" text-anchor="end" font-family="sans-serif">{label}</text>"#,
            ML - 6.0,
            y + 3.0
        );
    }
    // X tick labels.
    for k in 0..=4 {
        let v = xmin + (xmax - xmin) * k as f64 / 4.0;
        let x = ML + (W - ML - MR) * k as f64 / 4.0;
        let _ = writeln!(
            svg,
            r#"<text x="{x}" y="{}" font-size="10" text-anchor="middle" font-family="sans-serif">{v:.2}</text>"#,
            H - MB + 16.0
        );
    }
    for (si, (name, ys)) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        let mut d = String::new();
        let mut first = true;
        for (k, &y) in ys.iter().enumerate() {
            if !y.is_finite() || k >= xs.len() {
                continue;
            }
            let cmd = if first { 'M' } else { 'L' };
            first = false;
            let _ = write!(d, "{cmd}{:.1},{:.1} ", px(xs[k]), py(y));
        }
        let _ = writeln!(
            svg,
            r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.6"/>"#
        );
        let ly = MT + 14.0 * si as f64;
        let _ = writeln!(
            svg,
            r#"<rect x="{}" y="{}" width="10" height="3" fill="{color}"/><text x="{}" y="{}" font-size="11" font-family="sans-serif">{}</text>"#,
            W - MR - 150.0,
            ly,
            W - MR - 135.0,
            ly + 5.0,
            xml_escape(name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a histogram as ASCII bars, one line per bucket.
pub fn ascii_histogram(labels: &[String], counts: &[u64], width: usize) -> String {
    let mut out = String::new();
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (label, &c) in labels.iter().zip(counts) {
        let bar = "█".repeat(((c as f64 / max as f64) * width as f64).round() as usize);
        let _ = writeln!(out, "{label:>12} │{bar} {c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_chart_contains_marks_and_legend() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let s = ascii_chart(&xs, &[("up", &ys)], 40, 10);
        assert!(s.contains('*'));
        assert!(s.contains("up"));
    }

    #[test]
    fn ascii_chart_empty_inputs() {
        assert_eq!(ascii_chart(&[], &[], 10, 5), "");
    }

    #[test]
    fn svg_chart_is_wellformed_ish() {
        let xs = [0.0, 0.5, 1.0];
        let ys = [1.0, 10.0, 100.0];
        let svg = svg_chart("test & chart", &xs, &[("series<1>", &ys)], true);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("&amp;"));
        assert!(svg.contains("&lt;"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn histogram_scales_bars() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let s = ascii_histogram(&labels, &[1, 10], 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('█').count() > lines[0].matches('█').count());
    }
}
