//! The interactive session driver (Fig. 2.1's workflow).
//!
//! A [`Session`] owns a dataset and (a handle to) its knowledge cache.
//! Each [`probe`](Session::probe) runs BayesLSH APSS at a threshold,
//! memoizes everything, and returns a [`ProbeReport`] carrying the pair
//! count, the updated Cumulative APSS Graph (with error bars), the
//! triangle/density cues, and timing — the full feedback loop a user
//! iterates on. Probes after the first reuse sketches and pair memos, so
//! they are cheap; that asymmetry is the knowledge-caching result of
//! §2.3.3.
//!
//! # Multi-session probing
//!
//! The cache behind a session is a [`SharedKnowledgeCache`]: hand its
//! `Arc` to [`Session::with_shared_cache`] (or open sessions through a
//! [`crate::cache::CacheRegistry`]) and any number of sessions — on any
//! number of threads — probe the same corpus while sharing one sketch set
//! and one memo pool. Each session keeps its *own* cumulative curve and
//! threshold grid; only the expensive knowledge is shared. Probe results
//! are bit-identical to what a private cache would return (see
//! [`SharedKnowledgeCache::probe`]), and stay so when the pool is
//! memory-bounded ([`Session::with_cache_capacity`],
//! [`crate::cache::CacheCapacity`]) — eviction trades cache hits for
//! memory, never results.
//!
//! A `Session` serves a corpus that is fixed for its lifetime; when
//! records arrive *while* users probe, use the epoch-versioned streaming
//! driver ([`crate::streaming::StreamingSession`]), which interleaves
//! `ingest`/`probe` over a growing corpus and carries old-pair memos
//! across every growth epoch.

use std::sync::Arc;
use std::time::Instant;

use plasma_data::datasets::Dataset;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::family::LshFamily;

use crate::apss::{build_sketches, ApssConfig, SimilarPair};
use crate::cache::{CacheCapacity, SharedKnowledgeCache};
use crate::cues::{self, DensityPlot, TriangleCue};
use crate::cumulative::CumulativeCurve;

/// An interactive PLASMA-HD session over one dataset.
///
/// ```
/// use plasma_core::{ApssConfig, Session};
/// use plasma_data::datasets::gaussian::GaussianSpec;
///
/// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
/// let mut session = Session::new(&ds, ApssConfig::default());
///
/// // The first probe pays for sketching; re-probes ride the cache.
/// let first = session.probe(0.8);
/// assert!(first.sketch_seconds > 0.0);
///
/// // Re-probing the same threshold is answered entirely from the
/// // knowledge cache: zero new hash comparisons, identical pairs.
/// let again = session.probe(0.8);
/// assert_eq!(again.sketch_seconds, 0.0);
/// assert_eq!(again.hashes_compared, 0);
/// assert_eq!(again.cache_hits, again.candidates);
/// assert_eq!(again.pairs, first.pairs);
/// ```
pub struct Session {
    records: Vec<SparseVector>,
    measure: Similarity,
    cfg: ApssConfig,
    cache: Option<Arc<SharedKnowledgeCache>>,
    /// Memory policy for the cache this session builds on first probe
    /// (ignored when a shared cache is attached — the pool's owner chose).
    cache_capacity: CacheCapacity,
    grid: Vec<f64>,
    sketch_seconds: f64,
    curve: Option<CumulativeCurve>,
}

/// What one probe returns to the user.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The probed threshold.
    pub threshold: f64,
    /// Pairs meeting the threshold.
    pub pairs: Vec<SimilarPair>,
    /// Updated Cumulative APSS Graph estimate (merged across probes).
    pub curve: CumulativeCurve,
    /// Seconds spent on this probe (sketching charged to the first).
    pub seconds: f64,
    /// Sketch seconds charged to this probe (non-zero only on the first).
    pub sketch_seconds: f64,
    /// Candidates evaluated / pruned / cache hits.
    pub candidates: u64,
    /// Candidates pruned by Eq. 2.1.
    pub pruned: u64,
    /// Pair evaluations answered entirely from the knowledge cache
    /// (zero new hash comparisons for that pair).
    pub cache_hits: u64,
    /// Hashes compared during this probe.
    pub hashes_compared: u64,
}

impl Session {
    /// Opens a session over a dataset.
    pub fn new(dataset: &Dataset, cfg: ApssConfig) -> Self {
        Self::from_records(dataset.records.clone(), dataset.measure, cfg)
    }

    /// Opens a session over raw records.
    pub fn from_records(records: Vec<SparseVector>, measure: Similarity, cfg: ApssConfig) -> Self {
        let lo = match measure {
            Similarity::Jaccard => 0.05,
            Similarity::Cosine => 0.05,
        };
        Self {
            records,
            measure,
            cfg,
            cache: None,
            cache_capacity: CacheCapacity::unbounded(),
            grid: crate::cumulative::default_grid(lo),
            sketch_seconds: 0.0,
            curve: None,
        }
    }

    /// Overrides the threshold grid for the cumulative curve.
    pub fn with_grid(mut self, grid: Vec<f64>) -> Self {
        self.grid = grid;
        self
    }

    /// Pins the worker-thread count for this session's probes (`None` =
    /// all cores, `Some(1)` = sequential). Probe results are bit-identical
    /// at every setting; only latency changes.
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Sets the banded join's [`plasma_lsh::ShardPolicy`] — how hot band buckets are
    /// split across workers when this session's candidate strategy is
    /// [`crate::apss::CandidateStrategy::Banded`]. Probe results are
    /// bit-identical at every policy; only how candidate generation
    /// parallelizes changes. Pass
    /// [`ShardPolicy::adaptive()`](plasma_lsh::ShardPolicy::adaptive) to
    /// derive the per-shard pair budget from the join's measured load at
    /// plan time instead of picking numbers by hand.
    ///
    /// ```
    /// use plasma_core::apss::CandidateStrategy;
    /// use plasma_core::{ApssConfig, Session, ShardPolicy};
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    ///
    /// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
    /// let cfg = ApssConfig {
    ///     candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
    ///     ..ApssConfig::default()
    /// };
    /// let mut sharded = Session::new(&ds, cfg).with_shard_policy(ShardPolicy::new(2, 64));
    /// let mut unsharded = Session::new(&ds, cfg).with_shard_policy(ShardPolicy::never_split());
    /// assert_eq!(sharded.probe(0.8).pairs, unsharded.probe(0.8).pairs);
    /// ```
    pub fn with_shard_policy(mut self, policy: plasma_lsh::ShardPolicy) -> Self {
        self.cfg.shard = policy;
        self
    }

    /// Bounds the memo pool of the knowledge cache this session builds on
    /// its first probe. Probe reports are bit-identical at every capacity
    /// — eviction only trades cache hits for memory (see
    /// [`CacheCapacity`]). No effect on a cache attached via
    /// [`with_shared_cache`](Self::with_shared_cache): a shared pool's
    /// policy belongs to whoever built it.
    ///
    /// ```
    /// use plasma_core::cache::CacheCapacity;
    /// use plasma_core::{ApssConfig, Session};
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    ///
    /// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
    /// let mut bounded = Session::new(&ds, ApssConfig::default())
    ///     .with_cache_capacity(CacheCapacity::bounded(32 << 10));
    /// let mut unbounded = Session::new(&ds, ApssConfig::default());
    /// let a = bounded.probe(0.8);
    /// let b = unbounded.probe(0.8);
    /// assert_eq!(a.pairs, b.pairs, "capacity never changes results");
    /// let stats = bounded.cache().expect("probed").memory_stats();
    /// assert!(stats.memo_bytes <= 32 << 10);
    /// ```
    pub fn with_cache_capacity(mut self, capacity: CacheCapacity) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Attaches this session to an existing shared knowledge cache, so it
    /// joins every other session holding the same `Arc` in one sketch set
    /// and one memo pool — the multi-user serving shape. The first probe
    /// then pays **no** sketch cost.
    ///
    /// The cache must have been built over this session's dataset: same
    /// record count and a hash family matching the session's similarity
    /// measure (use [`crate::cache::CacheRegistry`] to get this pairing
    /// by construction).
    ///
    /// # Panics
    ///
    /// Panics when the cache's sketch count or hash family disagrees with
    /// the session's records and measure.
    ///
    /// ```
    /// use plasma_core::{ApssConfig, Session};
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    ///
    /// let ds = GaussianSpec::new("doc", 40, 6, 2).generate(7);
    /// let mut first = Session::new(&ds, ApssConfig::default());
    /// first.probe(0.8);
    ///
    /// // A second user opens a session over the same corpus, sharing the
    /// // first session's cache: no sketching, and the 0.8 re-probe is
    /// // answered without comparing a single hash.
    /// let cache = first.shared_cache().expect("probed above");
    /// let mut second = Session::new(&ds, ApssConfig::default()).with_shared_cache(cache);
    /// let report = second.probe(0.8);
    /// assert_eq!(report.sketch_seconds, 0.0);
    /// assert_eq!(report.hashes_compared, 0);
    /// ```
    pub fn with_shared_cache(mut self, cache: Arc<SharedKnowledgeCache>) -> Self {
        let sketched = cache.sketches().len();
        assert!(
            sketched == self.records.len(),
            "shared cache sketches {} records, session has {}{}",
            sketched,
            self.records.len(),
            if cache.epoch() > 0 {
                " — the cache has grown past this session's corpus (streamed \
                 ingest); open a crate::streaming::StreamingSession over the \
                 grown corpus instead of a batch Session over a stale prefix"
            } else {
                ""
            }
        );
        assert_eq!(
            cache.sketches().family(),
            LshFamily::for_measure(self.measure),
            "shared cache hash family does not serve this session's measure"
        );
        self.cache = Some(cache);
        self
    }

    /// Number of records in the session's dataset.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The similarity measure in use.
    pub fn measure(&self) -> Similarity {
        self.measure
    }

    /// The records (read-only).
    pub fn records(&self) -> &[SparseVector] {
        &self.records
    }

    /// Probes the data at `threshold`, reusing the knowledge cache.
    ///
    /// Every layer of reuse lives in the cache, not the session: pair
    /// memos deepen across thresholds, and a banded probe's band
    /// buckets are built once per corpus and carried in the cache —
    /// a second identical-shape probe (this session or any sibling on
    /// the same shared cache) builds zero buckets, which the
    /// `bucket_build_records` counter in
    /// [`crate::cache::CacheMemoryStats`] exposes and the watch
    /// differential suite pins.
    pub fn probe(&mut self, threshold: f64) -> ProbeReport {
        let start = Instant::now();
        let mut sketch_secs = 0.0;
        if self.cache.is_none() {
            let (sketches, secs) = build_sketches(&self.records, self.measure, &self.cfg);
            sketch_secs = secs;
            self.sketch_seconds = secs;
            self.cache = Some(Arc::new(SharedKnowledgeCache::with_capacity(
                sketches,
                self.cache_capacity,
            )));
        }
        let cache = self.cache.as_ref().expect("cache initialized above");
        let result = cache.probe(&self.records, self.measure, threshold, &self.cfg);
        fold_probe_report(
            self.measure,
            self.cfg.bayes,
            &self.grid,
            &mut self.curve,
            result,
            start.elapsed().as_secs_f64(),
            sketch_secs,
        )
    }

    /// The current Cumulative APSS Graph, if any probe has run.
    pub fn curve(&self) -> Option<&CumulativeCurve> {
        self.curve.as_ref()
    }

    /// Suggests the next threshold to probe: the knee of the current curve
    /// (§2.2.2's "the user then notices the knee … and investigating it,
    /// selects a new similarity threshold").
    pub fn suggest_next_threshold(&self) -> Option<f64> {
        let curve = self.curve.as_ref()?;
        curve.knee().map(|k| curve.thresholds[k])
    }

    /// Triangle cue for the graph induced by a probe's pairs.
    pub fn triangle_cue(&self, pairs: &[SimilarPair]) -> TriangleCue {
        cues::triangle_cue(&cues::pairs_to_graph(self.records.len(), pairs))
    }

    /// Density plot for the graph induced by a probe's pairs.
    pub fn density_plot(&self, pairs: &[SimilarPair]) -> DensityPlot {
        cues::density_plot(&cues::pairs_to_graph(self.records.len(), pairs))
    }

    /// Seconds spent building sketches (0 until the first probe).
    pub fn sketch_seconds(&self) -> f64 {
        self.sketch_seconds
    }

    /// The knowledge cache, if initialized (by a probe or by
    /// [`with_shared_cache`](Self::with_shared_cache)).
    pub fn cache(&self) -> Option<&SharedKnowledgeCache> {
        self.cache.as_deref()
    }

    /// A shareable handle to this session's knowledge cache, for opening
    /// further sessions over the same corpus
    /// ([`with_shared_cache`](Self::with_shared_cache)). `None` until the
    /// first probe initializes the cache.
    pub fn shared_cache(&self) -> Option<Arc<SharedKnowledgeCache>> {
        self.cache.clone()
    }
}

/// Folds one probe's estimates into a session's cumulative curve and
/// assembles the user-facing [`ProbeReport`] — the shared tail of
/// [`Session::probe`] and the streaming driver's
/// [`crate::streaming::StreamingSession::probe`], so both report the
/// exact same shape from the same probe result.
pub(crate) fn fold_probe_report(
    measure: Similarity,
    bayes: plasma_lsh::BayesParams,
    grid: &[f64],
    curve: &mut Option<CumulativeCurve>,
    result: crate::apss::ApssResult,
    seconds: f64,
    sketch_seconds: f64,
) -> ProbeReport {
    let family = LshFamily::for_measure(measure);
    let ests: Vec<plasma_lsh::bayes::PairEstimate> =
        result.estimates.iter().map(|&(_, _, e)| e).collect();
    let probe_curve = CumulativeCurve::from_estimates(family, bayes, ests.iter(), grid);
    let merged = match curve.as_ref() {
        Some(prev) => prev.merge_min_variance(&probe_curve),
        None => probe_curve,
    };
    *curve = Some(merged.clone());
    ProbeReport {
        threshold: result.threshold,
        pairs: result.pairs,
        curve: merged,
        seconds,
        sketch_seconds,
        candidates: result.stats.candidates,
        pruned: result.stats.pruned,
        cache_hits: result.stats.cache_hits,
        hashes_compared: result.stats.hashes_compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::pair_counts_at_thresholds;

    fn dataset() -> Dataset {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("session-test", 60, 8, 3)
        }
        .generate(41)
    }

    #[test]
    fn first_probe_pays_sketch_cost_later_probes_do_not() {
        let ds = dataset();
        let mut s = Session::new(&ds, ApssConfig::default());
        let r1 = s.probe(0.9);
        let r2 = s.probe(0.7);
        assert!(r1.sketch_seconds > 0.0);
        assert_eq!(r2.sketch_seconds, 0.0);
        assert!(r2.cache_hits > 0);
    }

    #[test]
    fn curve_estimate_tracks_ground_truth_at_probed_threshold() {
        let ds = dataset();
        let mut s = Session::new(&ds, ApssConfig::default());
        let r = s.probe(0.7);
        // Ground truth at the probed threshold.
        let truth = pair_counts_at_thresholds(&ds.records, ds.measure, &[0.7])[0];
        let idx = r
            .curve
            .thresholds
            .iter()
            .position(|&t| (t - 0.7).abs() < 0.026)
            .expect("grid covers 0.7");
        let est = r.curve.expected[idx];
        let rel = (est - truth as f64).abs() / (truth as f64).max(1.0);
        assert!(rel < 0.35, "estimate {est} vs truth {truth} (rel {rel})");
    }

    #[test]
    fn suggestion_points_at_knee() {
        let ds = dataset();
        let mut s = Session::new(&ds, ApssConfig::default());
        s.probe(0.8);
        let next = s.suggest_next_threshold();
        assert!(next.is_some());
        let t = next.expect("some");
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn cues_computed_from_pairs() {
        let ds = dataset();
        let mut s = Session::new(&ds, ApssConfig::default());
        let r = s.probe(0.6);
        let cue = s.triangle_cue(&r.pairs);
        // Well-separated clusters at threshold 0.6 → triangles exist.
        assert!(cue.total_triangles > 0);
        let dp = s.density_plot(&r.pairs);
        assert!(dp.max_clique >= 3);
    }

    #[test]
    fn merged_curve_tightens_with_second_probe() {
        let ds = dataset();
        let mut s = Session::new(&ds, ApssConfig::default());
        let r1 = s.probe(0.9);
        let sum_sd_before: f64 = r1.curve.std_dev.iter().sum();
        let r2 = s.probe(0.5);
        let sum_sd_after: f64 = r2.curve.std_dev.iter().sum();
        assert!(
            sum_sd_after <= sum_sd_before + 1e-9,
            "min-variance merge can only tighten: {sum_sd_before} → {sum_sd_after}"
        );
    }
}
