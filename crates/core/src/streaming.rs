//! Streaming ingest: probing a corpus that grows while sessions run.
//!
//! The batch [`Session`](crate::session::Session) assumes the corpus is
//! fixed at session start. This module removes that assumption for
//! insert-heavy workloads: a [`StreamingSession`] interleaves
//! [`ingest`](StreamingSession::ingest) (append a batch of records) and
//! [`probe`](StreamingSession::probe) (BayesLSH APSS at a threshold) over
//! one shared, growing corpus.
//!
//! # Epoch lineage
//!
//! Each non-empty ingested batch is sketched with
//! [`Sketcher::extend_batch`] — the amortized parallel form of
//! record-at-a-time appends — producing a sketch set that extends the
//! previous one byte for byte at a bumped [`SketchSet::epoch`]. The
//! session's [`SharedKnowledgeCache`] adopts it via
//! [`SharedKnowledgeCache::grow`], and because old sketch bytes are
//! unchanged, **every memo over pairs of old records carries over the
//! epoch bump**: after growth, re-probing a previously probed threshold
//! pays hash comparisons only for pairs touching the new records.
//!
//! Ingest cost is O(batch), not O(corpus): the sketch store is segmented
//! ([`SketchSet`]'s sealed `Arc` segments plus one mutable tail), so the
//! pre-growth snapshot clone copies only the tail and the segment pointer
//! list ([`IngestReport::snapshot_clone_bytes`]), `extend_batch` appends
//! without moving old words, and the banded candidate buckets persist
//! across the bump (only new records get hashed into them at the next
//! probe).
//!
//! # Equivalence guarantee
//!
//! A streamed history `ingest(b₁); probe(t); ingest(b₂); probe(t'); …` is
//! **bit-identical**, probe for probe, to running each probe cold over
//! the corpus as of that epoch — same pairs, same estimates, same
//! decision counters — at every thread count, [`ShardPolicy`], and
//! session count. Carried memos change only the work counters
//! (`hashes_compared` shrinks, `cache_hits` grows), exactly like any
//! warm cache. `crates/core/tests/streaming_differential.rs` pins the
//! guarantee over batch-split × parallelism × session grids.
//!
//! [`ShardPolicy`]: plasma_lsh::ShardPolicy
//!
//! # Multi-session streaming
//!
//! [`StreamingSession::fork`] opens another session over the same
//! corpus: records live behind one `RwLock` shared by all forks, and the
//! knowledge cache is the same `Arc`. Any fork may ingest; every fork's
//! next probe sees the grown corpus and the carried memos. In-flight
//! probes pin a consistent `(records, sketches)` snapshot under the
//! corpus read lock, so ingest (which takes the write lock) simply waits
//! for them rather than tearing them.

use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use plasma_data::datasets::Dataset;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::{SketchSet, Sketcher};

use crate::apss::{build_sketches, ApssConfig};
use crate::cache::{CacheCapacity, SharedKnowledgeCache};
use crate::cumulative::CumulativeCurve;
use crate::session::{fold_probe_report, ProbeReport};
use crate::watch::{WatchHandle, WatchRegistry};

/// The growth state every fork of a streaming session shares: the record
/// store (authoritative, behind one lock) and the knowledge cache whose
/// sketches track it epoch for epoch.
struct StreamingCorpus {
    measure: Similarity,
    /// The sketch/schedule configuration pinned at corpus creation; forks
    /// may override probe-time knobs (parallelism, shard policy) on their
    /// own copies, but `n_hashes`/`seed`/`bayes.batch` are corpus-wide.
    cfg: ApssConfig,
    /// Memory policy for the cache built on first use (ignored once a
    /// cache is attached or built).
    capacity: RwLock<CacheCapacity>,
    /// The records ingested so far. Probes hold the read lock for their
    /// whole evaluation; ingest takes the write lock, so a probe's view
    /// of `(records, cache sketches)` is always one consistent epoch.
    records: RwLock<Vec<SparseVector>>,
    /// Built lazily on the first ingest/probe (or seeded by
    /// [`StreamingSession::with_shared_cache`]), then grown in place.
    cache: OnceLock<Arc<SharedKnowledgeCache>>,
    /// Live threshold watches over this corpus, shared by every fork:
    /// whichever fork's `ingest` adopts a batch notifies all of them.
    watches: WatchRegistry,
}

impl StreamingCorpus {
    /// The cache over the current records, building sketches on first
    /// call; returns the sketch seconds charged (non-zero only when this
    /// call performed the build).
    fn ensure_cache(&self, records: &[SparseVector]) -> (Arc<SharedKnowledgeCache>, f64) {
        let mut sketch_secs = 0.0;
        let cache = self
            .cache
            .get_or_init(|| {
                let (sketches, secs) = build_sketches(records, self.measure, &self.cfg);
                sketch_secs = secs;
                let capacity = *self.capacity.read().expect("capacity lock");
                Arc::new(SharedKnowledgeCache::with_capacity(sketches, capacity))
            })
            .clone();
        (cache, sketch_secs)
    }
}

/// What one [`StreamingSession::ingest`] call did.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Records appended by this call (0 for an empty batch).
    pub records_added: usize,
    /// Corpus size after the ingest.
    pub total_records: usize,
    /// The corpus epoch after the ingest. An empty batch leaves it
    /// unchanged; a non-empty batch is exactly one bump.
    pub epoch: u64,
    /// Seconds spent sketching (the batch, plus the epoch-0 build when
    /// this was the first touch of the corpus).
    pub sketch_seconds: f64,
    /// Pair memos resident in the cache at the moment of the bump — the
    /// knowledge that survived, since growth never evicts a memo.
    pub carried_memos: usize,
    /// Bytes the epoch snapshot clone actually copied: the mutable tail
    /// segment plus one `Arc` pointer per sealed segment of the segmented
    /// sketch store — O(segments), not O(corpus). The sealed sketch words
    /// themselves are shared, never copied (0 for an empty batch).
    pub snapshot_clone_bytes: usize,
}

/// An interactive session over a **growing** corpus — the streaming
/// sibling of [`Session`](crate::session::Session).
///
/// `ingest` appends a batch of records (amortized parallel sketching, one
/// epoch bump), `probe` runs BayesLSH APSS over everything ingested so
/// far, and the knowledge cache carries every old-pair memo across each
/// epoch. Probe outputs are bit-identical to a cold batch run over the
/// same corpus; only the work counters show the carried knowledge.
///
/// ```
/// use plasma_core::streaming::StreamingSession;
/// use plasma_core::{ApssConfig, Session};
/// use plasma_data::datasets::gaussian::GaussianSpec;
///
/// let ds = GaussianSpec::new("doc", 60, 6, 2).generate(7);
/// let (head, tail) = ds.records.split_at(40);
///
/// let mut s = StreamingSession::from_records(head.to_vec(), ds.measure, ApssConfig::default());
/// s.probe(0.8);
///
/// // Records arrive while the session is live: one epoch bump.
/// let grew = s.ingest(tail);
/// assert_eq!((grew.records_added, grew.epoch), (tail.len(), 1));
/// assert!(grew.carried_memos > 0, "old-pair memos survive the bump");
///
/// // The grown probe equals a cold batch run over the full corpus…
/// let after = s.probe(0.8);
/// let mut cold = Session::from_records(ds.records.clone(), ds.measure, ApssConfig::default());
/// assert_eq!(after.pairs, cold.probe(0.8).pairs);
/// // …and the carried memos answered every old pair without hashing.
/// assert!(after.cache_hits > 0);
/// ```
pub struct StreamingSession {
    corpus: Arc<StreamingCorpus>,
    /// Per-fork probe configuration (parallelism / shard policy may
    /// diverge; sketch-relevant knobs are shared with the corpus).
    cfg: ApssConfig,
    grid: Vec<f64>,
    curve: Option<CumulativeCurve>,
}

impl StreamingSession {
    /// Opens a streaming session seeded with a dataset's records.
    pub fn new(dataset: &Dataset, cfg: ApssConfig) -> Self {
        Self::from_records(dataset.records.clone(), dataset.measure, cfg)
    }

    /// Opens a streaming session over raw records — pass an empty `Vec`
    /// to start from nothing and build the corpus entirely by ingest.
    /// Sketches are built lazily on the first ingest or probe.
    pub fn from_records(records: Vec<SparseVector>, measure: Similarity, cfg: ApssConfig) -> Self {
        let lo = match measure {
            Similarity::Jaccard => 0.05,
            Similarity::Cosine => 0.05,
        };
        Self {
            corpus: Arc::new(StreamingCorpus {
                measure,
                cfg,
                capacity: RwLock::new(CacheCapacity::unbounded()),
                records: RwLock::new(records),
                cache: OnceLock::new(),
                watches: WatchRegistry::new(),
            }),
            cfg,
            grid: crate::cumulative::default_grid(lo),
            curve: None,
        }
    }

    /// Overrides the threshold grid for this session's cumulative curve.
    pub fn with_grid(mut self, grid: Vec<f64>) -> Self {
        self.grid = grid;
        self
    }

    /// Pins the worker-thread count for this session's ingests and probes
    /// (`None` = all cores, `Some(1)` = sequential). Sketches, probe
    /// outputs, and carried memos are bit-identical at every setting.
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Sets the banded join's [`plasma_lsh::ShardPolicy`] for this
    /// session's probes (see
    /// [`Session::with_shard_policy`](crate::session::Session::with_shard_policy)).
    pub fn with_shard_policy(mut self, policy: plasma_lsh::ShardPolicy) -> Self {
        self.cfg.shard = policy;
        self
    }

    /// Bounds the memo pool of the cache this corpus builds on first use.
    /// Carried memos obey the cap like any others: an epoch bump never
    /// evicts by itself, but a tiny cap may evict carried memos at the
    /// next publication — changing work counters, never probe outputs.
    ///
    /// # Panics
    ///
    /// Panics if the corpus cache already exists (set the capacity before
    /// the first ingest/probe, and before attaching a shared cache).
    pub fn with_cache_capacity(self, capacity: CacheCapacity) -> Self {
        assert!(
            self.corpus.cache.get().is_none(),
            "set the cache capacity before the corpus cache is built"
        );
        *self.corpus.capacity.write().expect("capacity lock") = capacity;
        self
    }

    /// Attaches an existing shared cache (typically obtained from a
    /// [`crate::cache::CacheRegistry`]) instead of building a fresh one.
    /// The cache must cover exactly the records ingested so far, with a
    /// hash family, hash count, and **hash seed** matching the session's
    /// measure and config — ingest extends the cache's sketches with this
    /// session's sketcher, and mixing hash universes would silently
    /// poison every cross-batch pair estimate. Subsequent ingests grow
    /// the cache in place, so the registry keeps serving the same
    /// lineage.
    ///
    /// # Panics
    ///
    /// Panics when the cache's sketch count, family, hash count, or seed
    /// disagrees with the session's records and config, or when this
    /// corpus already has a cache.
    pub fn with_shared_cache(self, cache: Arc<SharedKnowledgeCache>) -> Self {
        {
            let records = self.corpus.records.read().expect("corpus lock");
            let sketches = cache.sketches();
            assert_eq!(
                sketches.len(),
                records.len(),
                "shared cache sketches {} records, streaming corpus has {}",
                sketches.len(),
                records.len()
            );
            assert_eq!(
                sketches.family(),
                LshFamily::for_measure(self.corpus.measure),
                "shared cache hash family does not serve this session's measure"
            );
            assert_eq!(
                sketches.n_hashes(),
                self.cfg.n_hashes,
                "shared cache sketches {} hashes per record, session config wants {}",
                sketches.n_hashes(),
                self.cfg.n_hashes
            );
            assert_eq!(
                sketches.seed(),
                self.cfg.seed,
                "shared cache was sketched with hash seed {} but this session \
                 would ingest with seed {} — mixing hash universes would \
                 silently corrupt cross-batch estimates",
                sketches.seed(),
                self.cfg.seed
            );
        }
        assert!(
            self.corpus.cache.set(cache).is_ok(),
            "this streaming corpus already has a cache"
        );
        self
    }

    /// Opens another session over the **same** growing corpus and cache —
    /// the multi-user shape. The fork shares records, sketches, and the
    /// memo pool, but keeps its own cumulative curve, threshold grid, and
    /// probe knobs. Ingest through any fork; every fork's next probe sees
    /// the grown corpus.
    pub fn fork(&self) -> StreamingSession {
        StreamingSession {
            corpus: self.corpus.clone(),
            cfg: self.cfg,
            grid: self.grid.clone(),
            curve: None,
        }
    }

    /// Appends a batch of records to the corpus. The batch is sketched
    /// with [`Sketcher::extend_batch`] (parallel, bit-identical to
    /// one-at-a-time appends), the knowledge cache adopts the grown
    /// sketches ([`SharedKnowledgeCache::grow`]) carrying every old-pair
    /// memo, and the corpus epoch advances by one. An empty batch is a
    /// no-op: no growth, no epoch bump.
    ///
    /// Blocks until in-flight probes (which pin the current epoch under
    /// the corpus read lock) finish.
    pub fn ingest(&mut self, batch: &[SparseVector]) -> IngestReport {
        let corpus = self.corpus.clone();
        let mut records: RwLockWriteGuard<'_, Vec<SparseVector>> =
            corpus.records.write().expect("corpus lock");
        let (cache, build_secs) = corpus.ensure_cache(&records);
        if batch.is_empty() {
            return IngestReport {
                records_added: 0,
                total_records: records.len(),
                epoch: cache.epoch(),
                sketch_seconds: build_secs,
                carried_memos: cache.memory_stats().entries,
                snapshot_clone_bytes: 0,
            };
        }
        let start = Instant::now();
        let snapshot = cache.sketches();
        let snapshot_clone_bytes = snapshot.snapshot_clone_bytes();
        let mut grown = (*snapshot).clone();
        let sketcher = Sketcher::new(snapshot.family(), self.cfg.n_hashes, self.cfg.seed)
            .with_parallelism(self.cfg.parallelism);
        sketcher.extend_batch(batch, &mut grown);
        let epoch = grown.epoch();
        let carried_memos = cache.memory_stats().entries;
        let old_len = records.len();
        cache.grow(grown);
        records.extend_from_slice(batch);
        // Deliver this epoch's delta to every live watch while still
        // holding the corpus write guard: the (records, sketches) pair is
        // one consistent epoch, and no fork can slip a second ingest in
        // between — each watch sees each epoch exactly once.
        corpus
            .watches
            .notify_ingest(&cache, &records, corpus.measure, old_len);
        IngestReport {
            records_added: batch.len(),
            total_records: records.len(),
            epoch,
            sketch_seconds: build_secs + start.elapsed().as_secs_f64(),
            carried_memos,
            snapshot_clone_bytes,
        }
    }

    /// Probes everything ingested so far at `threshold`, reusing carried
    /// memos for every pair of pre-growth records. The report is
    /// bit-identical (pairs, estimates, curve, decision counters) to a
    /// batch [`Session`](crate::session::Session) probing the same corpus
    /// cold; carried knowledge shows up only in `cache_hits` and
    /// `hashes_compared`.
    pub fn probe(&mut self, threshold: f64) -> ProbeReport {
        let start = Instant::now();
        let corpus = self.corpus.clone();
        let records: RwLockReadGuard<'_, Vec<SparseVector>> =
            corpus.records.read().expect("corpus lock");
        let (cache, sketch_secs) = corpus.ensure_cache(&records);
        let result = cache.probe(&records, corpus.measure, threshold, &self.cfg);
        drop(records);
        fold_probe_report(
            corpus.measure,
            self.cfg.bayes,
            &self.grid,
            &mut self.curve,
            result,
            start.elapsed().as_secs_f64(),
            sketch_secs,
        )
    }

    /// Registers a continuous probe at `threshold`: the returned handle
    /// immediately holds one [`crate::watch::WatchDelta`] with the full
    /// answer at the current epoch (bit-identical to a cold probe), and
    /// every subsequent non-empty `ingest` — through *any* fork — queues
    /// one more delta holding exactly the pairs that epoch added.
    /// Concatenating a watch's deltas reproduces a cold probe of the
    /// full corpus at every epoch, whatever the parallelism, shard
    /// policy, segment geometry, or cache capacity (pinned by
    /// `crates/core/tests/watch_differential.rs`). Dropping the handle
    /// cancels the watch.
    ///
    /// The session's probe configuration is pinned into the watch at
    /// registration; reconfiguring the session afterwards does not
    /// affect it.
    ///
    /// ```
    /// use plasma_core::streaming::StreamingSession;
    /// use plasma_core::ApssConfig;
    /// use plasma_data::datasets::gaussian::GaussianSpec;
    ///
    /// let ds = GaussianSpec::new("doc", 60, 6, 2).generate(7);
    /// let (head, tail) = ds.records.split_at(40);
    /// let mut s = StreamingSession::from_records(head.to_vec(), ds.measure, ApssConfig::default());
    ///
    /// let watch = s.watch(0.8);
    /// let first = watch.poll().expect("registration delivers the full answer");
    /// assert_eq!(first.epoch, 0);
    ///
    /// s.ingest(tail);
    /// let delta = watch.poll().expect("every adopted ingest delivers a delta");
    /// assert_eq!(delta.epoch, 1);
    /// // Old pairs never re-appear: the delta touches only new records.
    /// assert!(delta.new_pairs.iter().all(|p| p.j as usize >= head.len()));
    /// ```
    pub fn watch(&self, threshold: f64) -> WatchHandle {
        let corpus = self.corpus.clone();
        let records: RwLockReadGuard<'_, Vec<SparseVector>> =
            corpus.records.read().expect("corpus lock");
        let (cache, _) = corpus.ensure_cache(&records);
        corpus
            .watches
            .register(&cache, &records, corpus.measure, threshold, &self.cfg)
    }

    /// Live watches registered on this corpus (across all forks).
    pub fn watch_count(&self) -> usize {
        self.corpus.watches.len()
    }

    /// Number of records ingested so far.
    pub fn len(&self) -> usize {
        self.corpus.records.read().expect("corpus lock").len()
    }

    /// True when nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The corpus growth epoch: 0 until the first non-empty ingest after
    /// the cache exists, then one per adopted batch.
    pub fn epoch(&self) -> u64 {
        self.corpus.cache.get().map_or(0, |c| c.epoch())
    }

    /// The similarity measure in use.
    pub fn measure(&self) -> Similarity {
        self.corpus.measure
    }

    /// An owned snapshot of the records ingested so far, taken under the
    /// corpus lock (so it is one consistent epoch).
    pub fn records_snapshot(&self) -> Vec<SparseVector> {
        self.corpus.records.read().expect("corpus lock").clone()
    }

    /// One consistent `(records, sketches, epoch)` view for persistence,
    /// taken under a single corpus read guard. Because
    /// [`ingest`](Self::ingest) holds the *write* guard across its whole
    /// mutation (sketch extension, cache growth, record append), this
    /// view can never observe a half-applied batch — exactly what the
    /// durable snapshot writer needs. `None` until the cache exists (no
    /// ingest or probe has run and no shared cache was attached).
    pub fn persist_view(&self) -> Option<(Vec<SparseVector>, Arc<SketchSet>, u64)> {
        let records = self.corpus.records.read().expect("corpus lock");
        let cache = self.corpus.cache.get()?;
        Some((records.clone(), cache.sketches(), cache.epoch()))
    }

    /// The shared knowledge cache, once built (by the first ingest/probe
    /// or [`with_shared_cache`](Self::with_shared_cache)).
    pub fn shared_cache(&self) -> Option<Arc<SharedKnowledgeCache>> {
        self.corpus.cache.get().cloned()
    }

    /// The session's current Cumulative APSS Graph, if any probe has run.
    pub fn curve(&self) -> Option<&CumulativeCurve> {
        self.curve.as_ref()
    }

    /// A snapshot of the corpus sketches at the current epoch, once the
    /// cache exists.
    pub fn sketches(&self) -> Option<Arc<SketchSet>> {
        self.corpus.cache.get().map(|c| c.sketches())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use plasma_data::datasets::gaussian::GaussianSpec;

    fn dataset(n: usize) -> Vec<SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("stream", n, 8, 3)
        }
        .generate(17)
        .records
    }

    #[test]
    fn streamed_probe_matches_cold_batch_run_at_every_epoch() {
        let records = dataset(60);
        let cfg = ApssConfig::default();
        let mut streaming =
            StreamingSession::from_records(records[..25].to_vec(), Similarity::Cosine, cfg);
        streaming.ingest(&records[25..45]);
        streaming.ingest(&records[45..]);
        assert_eq!(streaming.epoch(), 2);
        let streamed = streaming.probe(0.7);
        let mut cold = Session::from_records(records, Similarity::Cosine, cfg);
        let cold_report = cold.probe(0.7);
        assert_eq!(streamed.pairs, cold_report.pairs);
        assert_eq!(streamed.candidates, cold_report.candidates);
        assert_eq!(streamed.pruned, cold_report.pruned);
    }

    #[test]
    fn empty_ingest_is_a_noop() {
        let records = dataset(30);
        let mut s =
            StreamingSession::from_records(records, Similarity::Cosine, ApssConfig::default());
        s.probe(0.8);
        let before = s.epoch();
        let report = s.ingest(&[]);
        assert_eq!(report.records_added, 0);
        assert_eq!(report.epoch, before);
        assert_eq!(s.epoch(), before);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn fork_sees_growth_and_carried_memos() {
        let records = dataset(50);
        let cfg = ApssConfig::default();
        let mut a = StreamingSession::from_records(records[..30].to_vec(), Similarity::Cosine, cfg);
        a.probe(0.7);
        let mut b = a.fork();
        // Fork B ingests; fork A's next probe sees the grown corpus.
        b.ingest(&records[30..]);
        assert_eq!(a.len(), 50);
        assert_eq!(a.epoch(), 1);
        let grown = a.probe(0.7);
        assert!(grown.cache_hits > 0, "carried memos must produce hits");
        let mut cold = Session::from_records(records.to_vec(), Similarity::Cosine, cfg);
        assert_eq!(grown.pairs, cold.probe(0.7).pairs);
    }

    #[test]
    fn starts_from_an_empty_corpus() {
        let records = dataset(24);
        let cfg = ApssConfig::default();
        let mut s = StreamingSession::from_records(Vec::new(), Similarity::Cosine, cfg);
        assert!(s.is_empty());
        let empty_probe = s.probe(0.8);
        assert_eq!(empty_probe.candidates, 0);
        s.ingest(&records[..10]);
        s.ingest(&records[10..]);
        assert_eq!(s.epoch(), 2);
        let streamed = s.probe(0.8);
        let mut cold = Session::from_records(records, Similarity::Cosine, cfg);
        assert_eq!(streamed.pairs, cold.probe(0.8).pairs);
    }
}
