//! Per-node top-K graph formation (§2.5).
//!
//! "By changing the graph-formation objective from that of a graph-wide
//! global threshold to a per-node top-K, a tool like PLASMA-HD can help
//! within the database and IR communities with NN and Reverse NN search
//! as well as help with identifying good parameters for indexing."
//!
//! The builder reuses BayesLSH estimates: each record keeps its K best
//! estimated neighbors (optionally exact-verified), yielding the KNN
//! graph; reverse-NN queries read the transpose.

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::{BayesLsh, PairDecision};
use plasma_lsh::family::LshFamily;

use crate::apss::{build_sketches, ApssConfig};

/// A K-nearest-neighbor graph over a record set.
#[derive(Debug, Clone)]
pub struct KnnGraph {
    k: usize,
    /// `neighbors[v]` = up to K `(neighbor, similarity)` pairs, best first.
    neighbors: Vec<Vec<(u32, f64)>>,
    /// Transpose: who lists `v` among their top-K.
    reverse: Vec<Vec<u32>>,
}

impl KnnGraph {
    /// Builds the top-K graph with BayesLSH candidate filtering.
    ///
    /// `floor` is the minimum similarity worth keeping (pairs the engine
    /// prunes below it never enter any top-K list); use the lowest
    /// threshold of interest, e.g. 0.1.
    pub fn build(
        records: &[SparseVector],
        measure: Similarity,
        k: usize,
        floor: f64,
        cfg: &ApssConfig,
    ) -> KnnGraph {
        let n = records.len();
        let (sketches, _) = build_sketches(records, measure, cfg);
        let engine = BayesLsh::new(LshFamily::for_measure(measure), cfg.bayes);
        let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
        let threads = crate::apss::eval_threads(cfg, total_pairs);
        let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::with_capacity(k + 1); n];

        // Sequential path streams each surviving pair straight into the
        // capped top-K lists — O(n·k) live memory, no buffering.
        //
        // The parallel path shards contiguous rows (balanced by pair
        // count so late shards aren't starved by the triangular loop) and
        // each shard maintains its own n × capped-k candidate lists under
        // the identical push rule, folded in shard order afterwards. The
        // fold is bit-identical to the sequential pass: for any row `v`,
        // its pairs arrive in (i, j) order grouped by owning shard (shard
        // rows are contiguous), a shard-local list preserves that order
        // among the survivors it keeps, and an entry a shard's cap drops
        // loses to k earlier-or-equal entries that also precede it in the
        // global order — so it could never enter the global top-K either.
        // Peak memory is O(threads · n · k) instead of the pair count.
        let similarity = |i: usize, j: usize, est: &plasma_lsh::bayes::PairEstimate| -> f64 {
            if cfg.exact_on_accept {
                measure.compute(&records[i], &records[j])
            } else {
                est.map_similarity
            }
        };
        if threads <= 1 {
            let mut table = engine.probe_table(floor);
            for i in 0..n {
                for j in (i + 1)..n {
                    let est = table.evaluate_pair(&sketches, i, j);
                    if est.decision == PairDecision::Pruned {
                        continue;
                    }
                    let s = similarity(i, j, &est);
                    push_capped(&mut neighbors, k, i, j as u32, s);
                    push_capped(&mut neighbors, k, j, i as u32, s);
                }
            }
        } else {
            let eval_rows = |rows: std::ops::Range<usize>| -> Vec<Vec<(u32, f64)>> {
                let mut table = engine.probe_table(floor);
                let mut local: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
                for i in rows {
                    for j in (i + 1)..n {
                        let est = table.evaluate_pair(&sketches, i, j);
                        if est.decision == PairDecision::Pruned {
                            continue;
                        }
                        let s = similarity(i, j, &est);
                        push_capped(&mut local, k, i, j as u32, s);
                        push_capped(&mut local, k, j, i as u32, s);
                    }
                }
                local
            };
            let bounds = balanced_row_shards(n, threads);
            let shard_lists: Vec<Vec<Vec<(u32, f64)>>> = rayon::scope(|s| {
                let mut handles = Vec::with_capacity(bounds.len());
                for range in bounds {
                    let eval_rows = &eval_rows;
                    handles.push(s.spawn(move || eval_rows(range)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("knn shard panicked"))
                    .collect()
            });
            for local in shard_lists {
                for (v, list) in local.into_iter().enumerate() {
                    for (u, s) in list {
                        push_capped(&mut neighbors, k, v, u, s);
                    }
                }
            }
        }

        let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, list) in neighbors.iter().enumerate() {
            for &(u, _) in list {
                reverse[u as usize].push(v as u32);
            }
        }
        for r in &mut reverse {
            r.sort_unstable();
        }
        KnnGraph {
            k,
            neighbors,
            reverse,
        }
    }

    /// K requested at build time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when the graph covers no records.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// `v`'s nearest neighbors, best first.
    pub fn nearest(&self, v: u32) -> &[(u32, f64)] {
        &self.neighbors[v as usize]
    }

    /// Reverse nearest neighbors: records listing `v` in their top-K.
    pub fn reverse_nearest(&self, v: u32) -> &[u32] {
        &self.reverse[v as usize]
    }

    /// The undirected KNN graph (edge when either endpoint lists the
    /// other), for handing to the graph-measure suite.
    pub fn to_graph(&self) -> plasma_graph::Graph {
        let mut edges = Vec::new();
        for (v, list) in self.neighbors.iter().enumerate() {
            for &(u, _) in list {
                edges.push((v as u32, u));
            }
        }
        plasma_graph::Graph::from_edges(self.len(), &edges)
    }

    /// The per-node threshold realized by the top-K lists: `v`'s weakest
    /// kept similarity. §2.5's indexing guidance reads this distribution
    /// to pick global thresholds that approximate a KNN graph.
    pub fn kth_similarity(&self, v: u32) -> Option<f64> {
        self.neighbors[v as usize].last().map(|&(_, s)| s)
    }
}

/// Inserts `(u, s)` into row `v`'s best-first list, keeping at most `k`
/// entries. Ties on `s` preserve insertion order (stable), which is what
/// makes the sharded build's fold reproduce the sequential pass exactly.
fn push_capped(lists: &mut [Vec<(u32, f64)>], k: usize, v: usize, u: u32, s: f64) {
    let list = &mut lists[v];
    let pos = list.partition_point(|&(_, ls)| ls >= s);
    if pos < k {
        list.insert(pos, (u, s));
        list.truncate(k);
    }
}

/// Splits rows `0..n` of a triangular pair loop into up to `shards`
/// contiguous ranges with roughly equal pair counts (`Σ (n−1−i)`).
fn balanced_row_shards(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    let target = total.div_ceil(shards.max(1)).max(1);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0usize;
    for i in 0..n {
        acc += n - 1 - i;
        if acc >= target {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::similarity::Similarity;

    #[test]
    fn balanced_shards_cover_all_rows() {
        for (n, shards) in [(10usize, 3usize), (1, 4), (100, 8), (0, 2), (5, 10)] {
            let ranges = balanced_row_shards(n, shards);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..{n}");
        }
    }

    #[test]
    fn knn_graph_is_thread_count_invariant() {
        let records = dataset();
        let reference = KnnGraph::build(
            &records,
            Similarity::Cosine,
            4,
            0.1,
            &ApssConfig {
                parallelism: Some(1),
                ..cfg()
            },
        );
        let par = KnnGraph::build(
            &records,
            Similarity::Cosine,
            4,
            0.1,
            &ApssConfig {
                parallelism: Some(4),
                ..cfg()
            },
        );
        for v in 0..reference.len() as u32 {
            assert_eq!(par.nearest(v), reference.nearest(v), "node {v}");
            assert_eq!(par.reverse_nearest(v), reference.reverse_nearest(v));
        }
    }

    fn dataset() -> Vec<SparseVector> {
        GaussianSpec {
            separation: 4.0,
            spread: 0.6,
            ..GaussianSpec::new("t", 60, 8, 3)
        }
        .generate(17)
        .records
    }

    fn cfg() -> ApssConfig {
        ApssConfig {
            exact_on_accept: true,
            ..ApssConfig::default()
        }
    }

    #[test]
    fn lists_are_sorted_and_capped() {
        let records = dataset();
        let g = KnnGraph::build(&records, Similarity::Cosine, 5, 0.1, &cfg());
        for v in 0..g.len() as u32 {
            let list = g.nearest(v);
            assert!(list.len() <= 5);
            for w in list.windows(2) {
                assert!(w[0].1 >= w[1].1, "list must be best-first");
            }
        }
    }

    #[test]
    fn knn_matches_exact_topk_mostly() {
        let records = dataset();
        let k = 4;
        let g = KnnGraph::build(&records, Similarity::Cosine, k, 0.1, &cfg());
        // Exact top-k for a few probes.
        let mut agree = 0usize;
        let mut total = 0usize;
        for v in [0usize, 10, 30, 55] {
            let mut sims: Vec<(u32, f64)> = (0..records.len())
                .filter(|&u| u != v)
                .map(|u| {
                    (
                        u as u32,
                        Similarity::Cosine.compute(&records[v], &records[u]),
                    )
                })
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let expected: std::collections::HashSet<u32> =
                sims[..k].iter().map(|&(u, _)| u).collect();
            for &(u, _) in g.nearest(v as u32) {
                total += 1;
                if expected.contains(&u) {
                    agree += 1;
                }
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.7,
            "KNN overlap with exact top-k too low: {agree}/{total}"
        );
    }

    #[test]
    fn reverse_nearest_is_transpose() {
        let records = dataset();
        let g = KnnGraph::build(&records, Similarity::Cosine, 3, 0.1, &cfg());
        for v in 0..g.len() as u32 {
            for &(u, _) in g.nearest(v) {
                assert!(
                    g.reverse_nearest(u).contains(&v),
                    "transpose missing {v} → {u}"
                );
            }
        }
    }

    #[test]
    fn to_graph_has_bounded_degree_sum() {
        let records = dataset();
        let k = 3;
        let g = KnnGraph::build(&records, Similarity::Cosine, k, 0.1, &cfg());
        let graph = g.to_graph();
        // Each node contributes ≤ k directed edges → m ≤ n·k.
        assert!(graph.m() <= g.len() * k);
        assert_eq!(graph.n(), records.len());
    }

    #[test]
    fn kth_similarity_distribution_informs_thresholds() {
        let records = dataset();
        let g = KnnGraph::build(&records, Similarity::Cosine, 4, 0.1, &cfg());
        let kths: Vec<f64> = (0..g.len() as u32)
            .filter_map(|v| g.kth_similarity(v))
            .collect();
        assert!(!kths.is_empty());
        // In clustered data, most nodes' 4th neighbor is still similar.
        let median = plasma_data::stats::median(&kths).expect("non-empty kth similarities");
        assert!(median > 0.3, "median kth similarity {median}");
    }
}
