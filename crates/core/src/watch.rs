//! Continuous probes: threshold watches over a growing corpus.
//!
//! PLASMA-HD's interactive loop (§2.3) lets an analyst re-probe a corpus
//! at varying thresholds; the streaming layer (PR 5/6) lets the corpus
//! grow under them in O(batch). A client who wants to *stay informed* as
//! the corpus grows shouldn't have to re-issue full probes and diff pair
//! lists — the epoch machinery already knows exactly what changed. A
//! **watch** is a standing subscription at one threshold: register once,
//! and every adopted ingest delivers a [`WatchDelta`] holding only the
//! pairs that epoch added.
//!
//! # Why deltas are exact
//!
//! Pair evaluation is pair-local: a pair's sketches are immutable once
//! both records exist (growth is a prefix-extension, pinned by
//! [`plasma_lsh::SketchSet::is_prefix_of`]), so its estimate, decision,
//! and threshold membership never change at later epochs. Growth is
//! therefore purely *additive* at every threshold — the pairs a full
//! probe gains over the previous epoch are exactly the pairs touching a
//! new record, and a pair `(i, j)` with `i < j` touches the new range
//! exactly when `j` does. Evaluating just those candidates
//! ([`SharedKnowledgeCache`]'s delta path, fed by the epoch-persistent
//! band buckets or the cold `banded_delta` join) yields deltas that are
//! **disjoint across epochs** and whose concatenation is bit-identical
//! to a cold probe of the full corpus — pairs, estimates, and canonical
//! `(i, j)` order. `crates/core/tests/watch_differential.rs` pins this
//! across batch schedules, parallelism, segment geometry, shard
//! policies, eviction, and late registration.
//!
//! # Lifecycle
//!
//! Registration ([`WatchRegistry::register`], surfaced as
//! `StreamingSession::watch`) runs one full evaluation at the current
//! epoch, so the first delta is the complete answer at registration time
//! — a late subscriber starts from truth, not from an empty set. Each
//! subsequent adopted ingest appends one delta per live watch. Dropping
//! the [`WatchHandle`] cancels the watch: the registry holds only a
//! [`Weak`] reference and purges dead entries at the next notification.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::PairEstimate;

use crate::apss::{ApssConfig, ApssStats, SimilarPair};
use crate::cache::SharedKnowledgeCache;

/// One epoch's worth of change at one watched threshold.
///
/// `new_pairs` holds every pair at or above the threshold that this
/// epoch's batch created, in canonical ascending `(i, j)` order;
/// `estimates` holds the decision record of every *candidate* the epoch
/// created (including pruned ones), also in `(i, j)` order — together
/// they are exactly the slice a cold probe of this epoch's corpus gains
/// over a cold probe of the previous one. A watch's registration delta
/// is the degenerate case: the full cold answer at its starting epoch.
#[derive(Debug, Clone)]
pub struct WatchDelta {
    /// The corpus epoch this delta brought the watch up to.
    pub epoch: u64,
    /// The watched threshold, echoed for multi-watch consumers.
    pub threshold: f64,
    /// Pairs at or above the threshold that this epoch added, sorted by
    /// `(i, j)`.
    pub new_pairs: Vec<SimilarPair>,
    /// Decision records for every candidate this epoch added (pruned
    /// candidates included), sorted by `(i, j)`.
    pub estimates: Vec<(u32, u32, PairEstimate)>,
    /// What the evaluation cost: `candidates`/`pruned`/`accepted`/
    /// `exhausted` are deterministic; `hashes_compared`/`cache_hits`
    /// reflect memo-pool warmth (a second watch at the same epoch rides
    /// the first one's published memos).
    pub work: ApssStats,
}

/// State owned by one watch, shared between its [`WatchHandle`] and the
/// registry's [`Weak`] entry.
#[derive(Debug)]
struct WatchShared {
    threshold: f64,
    /// The probe configuration pinned at registration; every delta for
    /// this watch is evaluated under it, whatever the registering
    /// session reconfigures later.
    cfg: ApssConfig,
    /// Deltas delivered but not yet consumed, oldest first.
    deltas: Mutex<VecDeque<WatchDelta>>,
}

/// A live threshold subscription. Poll or drain deltas at leisure — the
/// registry appends to the handle's queue on every adopted ingest, and
/// dropping the handle cancels the watch (the registry only holds a
/// [`Weak`] reference).
#[derive(Debug)]
pub struct WatchHandle {
    id: u64,
    shared: Arc<WatchShared>,
}

impl WatchHandle {
    /// The registry-unique id of this watch (assignment order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The threshold this watch was registered at.
    pub fn threshold(&self) -> f64 {
        self.shared.threshold
    }

    /// Deltas delivered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.shared.deltas.lock().expect("watch queue lock").len()
    }

    /// Removes and returns the oldest unconsumed delta, if any.
    pub fn poll(&self) -> Option<WatchDelta> {
        self.shared
            .deltas
            .lock()
            .expect("watch queue lock")
            .pop_front()
    }

    /// Removes and returns every unconsumed delta, oldest first.
    pub fn drain(&self) -> Vec<WatchDelta> {
        self.shared
            .deltas
            .lock()
            .expect("watch queue lock")
            .drain(..)
            .collect()
    }
}

/// The set of live watches over one growing corpus.
///
/// `StreamingCorpus` owns one registry, shared by every forked session:
/// whichever session's `ingest` adopts a batch notifies all watches,
/// wherever they were registered. The registry itself is corpus-agnostic
/// — any holder of a cache-attached corpus view can drive it by calling
/// [`register`](Self::register) and [`notify_ingest`](Self::notify_ingest)
/// with a consistent `(cache, records)` pair.
///
/// Per-watch vs shared state: the threshold, pinned config, and delta
/// queue are per-watch (owned by the handle's shared cell); the sketches, memo pool, and
/// band-bucket cache all live in the [`SharedKnowledgeCache`] — watches
/// add no per-watch copies of corpus-sized state.
#[derive(Debug, Default)]
pub struct WatchRegistry {
    entries: Mutex<Vec<(u64, Weak<WatchShared>)>>,
    next_id: AtomicU64,
}

/// One epoch's fresh-candidate slice, keyed by the candidate shape that
/// generated it and shared by every watch pinned to that shape.
type ShapeSlice = (crate::apss::CandidateStrategy, Arc<Vec<(u32, u32)>>);

impl WatchRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live watches (handles not yet dropped). Dead entries are counted
    /// out even before the next notification purges them.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("watch registry lock")
            .iter()
            .filter(|(_, w)| w.strong_count() > 0)
            .count()
    }

    /// True when no watch is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a watch at `threshold` and evaluates it eagerly: the
    /// handle starts with one queued delta holding the full answer at
    /// the current epoch — bit-identical to a cold probe — so a late
    /// subscriber's view concatenates to truth exactly like an early
    /// one's. `records` must be the corpus the cache sketches (same
    /// epoch), as for [`SharedKnowledgeCache::probe`]; `cfg` is pinned
    /// for the lifetime of the watch.
    pub fn register(
        &self,
        cache: &SharedKnowledgeCache,
        records: &[SparseVector],
        measure: Similarity,
        threshold: f64,
        cfg: &ApssConfig,
    ) -> WatchHandle {
        let result = cache.probe_silent(records, measure, threshold, cfg);
        let shared = Arc::new(WatchShared {
            threshold,
            cfg: *cfg,
            deltas: Mutex::new(VecDeque::from([WatchDelta {
                epoch: cache.epoch(),
                threshold,
                new_pairs: result.pairs,
                estimates: result.estimates,
                work: result.stats,
            }])),
        });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("watch registry lock")
            .push((id, Arc::downgrade(&shared)));
        WatchHandle { id, shared }
    }

    /// Evaluates every live watch against the records a just-adopted
    /// ingest appended (`records[old_len..]`) and queues one delta per
    /// watch; entries whose handle was dropped are purged. Watches are
    /// evaluated in registration order, so for any serialized ingest
    /// history the work counters are deterministic: the first watch of
    /// an epoch pays the fresh hashing, later ones ride its published
    /// memos. Call with the post-growth `(cache, records)` pair — the
    /// streaming layer does so inside `ingest`, while still holding the
    /// corpus write guard, so every watch sees each epoch exactly once.
    ///
    /// The fresh-candidate slice is generated **once per candidate shape
    /// per epoch** and shared across every watch pinned to that shape (a
    /// single pass, pinned by the `delta_builds` counter in
    /// `watch_differential.rs`); per-watch evaluation from a shared slice
    /// is bit-identical to each watch running its own `probe_delta`,
    /// because candidate generation depends only on the strategy, the
    /// sketches, and the growth range — never on the threshold.
    pub fn notify_ingest(
        &self,
        cache: &SharedKnowledgeCache,
        records: &[SparseVector],
        measure: Similarity,
        old_len: usize,
    ) -> usize {
        let mut entries = self.entries.lock().expect("watch registry lock");
        let epoch = cache.epoch();
        let mut notified = 0;
        // One pinned snapshot and one candidate slice per distinct
        // candidate shape, shared by every watch in this pass. Watches
        // are few; a linear scan over the shape list beats hashing.
        let mut snapshot: Option<Arc<plasma_lsh::SketchSet>> = None;
        let mut slices: Vec<ShapeSlice> = Vec::new();
        entries.retain(|(_, weak)| {
            let Some(shared) = weak.upgrade() else {
                return false;
            };
            let sketches = snapshot
                .get_or_insert_with(|| cache.pin_snapshot(records))
                .clone();
            let cands = match slices
                .iter()
                .find(|(shape, _)| *shape == shared.cfg.candidates)
            {
                Some((_, slice)) => slice.clone(),
                None => {
                    let slice = cache.generate_delta_candidates(&sketches, &shared.cfg, old_len);
                    slices.push((shared.cfg.candidates, slice.clone()));
                    slice
                }
            };
            let result = cache.probe_delta_with(
                records,
                measure,
                shared.threshold,
                &shared.cfg,
                &sketches,
                cands,
            );
            shared
                .deltas
                .lock()
                .expect("watch queue lock")
                .push_back(WatchDelta {
                    epoch,
                    threshold: shared.threshold,
                    new_pairs: result.pairs,
                    estimates: result.estimates,
                    work: result.stats,
                });
            notified += 1;
            true
        });
        notified
    }
}
