//! Bounded-cache guarantees: with a byte cap configured, accounted memo
//! bytes never exceed the cap, eviction never changes any probe output
//! (bit-identical to an unbounded cache at every thread/session count,
//! even with probes racing from OS threads), and the registry's
//! cache-count/byte limits evict least-recently-used datasets without
//! breaking dedupe.

use std::sync::Arc;

use proptest::prelude::*;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig};
use plasma_core::cache::{CacheCapacity, CacheRegistry, EvictionPolicy, RegistryCapacity};
use plasma_core::{ApssResult, SharedKnowledgeCache};
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

fn dataset(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("bounded", n, 6, 3)
    }
    .generate(seed)
    .records
}

/// Everything interleaving-independent: pairs, estimates, and decision
/// counters. Work counters (`hashes_compared`, `cache_hits`) are *not*
/// compared — eviction is allowed to change how much work a probe pays,
/// never what it returns.
fn assert_same_outputs(a: &ApssResult, b: &ApssResult, label: &str) {
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: pair count");
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.i, x.j), (y.i, y.j), "{label}: pair ids");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{label}: similarity"
        );
    }
    assert_eq!(a.estimates.len(), b.estimates.len(), "{label}");
    for (x, y) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{label}: estimate ids");
        assert_eq!(x.2.decision, y.2.decision, "{label}: decision");
        assert_eq!(x.2.matches, y.2.matches, "{label}: matches");
        assert_eq!(x.2.hashes, y.2.hashes, "{label}: hashes");
        assert_eq!(
            x.2.map_similarity.to_bits(),
            y.2.map_similarity.to_bits(),
            "{label}: MAP"
        );
        assert_eq!(x.2.variance.to_bits(), y.2.variance.to_bits(), "{label}");
    }
    assert_eq!(a.stats.candidates, b.stats.candidates, "{label}");
    assert_eq!(a.stats.pruned, b.stats.pruned, "{label}");
    assert_eq!(a.stats.accepted, b.stats.accepted, "{label}");
    assert_eq!(a.stats.exhausted, b.stats.exhausted, "{label}");
}

#[test]
fn zero_capacity_memoizes_nothing_and_stays_correct() {
    let records = dataset(50, 3);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::with_capacity(sketches.clone(), CacheCapacity::bounded(0));
    for &t in &[0.8, 0.6, 0.8] {
        let capped = cache.probe(&records, Similarity::Cosine, t, &cfg);
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, t, &cfg);
        assert_same_outputs(&fresh, &capped, &format!("zero-cap probe at {t}"));
        // Nothing is retained: every probe pays full fresh cost.
        assert_eq!(capped.stats.cache_hits, 0);
        assert_eq!(capped.stats.hashes_compared, fresh.stats.hashes_compared);
        let stats = cache.memory_stats();
        assert_eq!(stats.memo_bytes, 0, "zero cap retains zero bytes");
        assert_eq!(stats.entries, 0);
    }
    assert!(cache.is_empty());
    assert_eq!(cache.len(), 0);
    let stats = cache.memory_stats();
    assert!(stats.evicted_entries > 0, "publications were all evicted");
    assert!(stats.peak_memo_bytes > 0, "peak sees pre-eviction bytes");
}

#[test]
fn tiny_capacity_sweep_respects_cap_and_matches_unbounded() {
    let records = dataset(60, 11);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cap = 8 << 10; // far below the sweep's unbounded footprint
    let capped = SharedKnowledgeCache::with_capacity(sketches.clone(), CacheCapacity::bounded(cap));
    let unbounded = SharedKnowledgeCache::new(sketches);
    for &t in &[0.9, 0.7, 0.5, 0.7, 0.9, 0.4] {
        let a = capped.probe(&records, Similarity::Cosine, t, &cfg);
        let b = unbounded.probe(&records, Similarity::Cosine, t, &cfg);
        assert_same_outputs(&b, &a, &format!("sweep step {t}"));
        let stats = capped.memory_stats();
        assert!(
            stats.memo_bytes <= cap,
            "accounted bytes {} exceed cap {cap} after probe at {t}",
            stats.memo_bytes
        );
    }
    let capped_stats = capped.memory_stats();
    let unbounded_stats = unbounded.memory_stats();
    assert!(capped_stats.evicted_entries > 0, "tiny cap must evict");
    assert!(capped_stats.evicted_bytes > 0);
    assert_eq!(unbounded_stats.evicted_entries, 0);
    assert!(
        unbounded_stats.memo_bytes > cap,
        "the workload really is bigger than the cap ({} vs {cap})",
        unbounded_stats.memo_bytes
    );
    assert!(
        capped_stats.cache_hits <= unbounded_stats.cache_hits,
        "eviction can only lose hits"
    );
    // Byte accounting is self-consistent: lifetime published bytes still
    // resident = peak path must have seen at least the resident amount.
    assert!(capped_stats.peak_memo_bytes >= capped_stats.memo_bytes);
}

#[test]
fn shallowest_first_policy_respects_cap_and_matches_unbounded() {
    let records = dataset(50, 29);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cap = 8 << 10;
    let capacity = CacheCapacity::bounded(cap).with_policy(EvictionPolicy::ShallowestFirst);
    let capped = SharedKnowledgeCache::with_capacity(sketches.clone(), capacity);
    assert_eq!(capped.capacity(), capacity);
    for &t in &[0.85, 0.55, 0.7, 0.55] {
        let a = capped.probe(&records, Similarity::Cosine, t, &cfg);
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, t, &cfg);
        assert_same_outputs(&fresh, &a, &format!("shallowest-first at {t}"));
        assert!(capped.memory_stats().memo_bytes <= cap);
    }
    assert!(capped.memory_stats().evicted_entries > 0);
}

#[test]
fn eviction_racing_concurrent_probes_stays_bit_identical() {
    let records = dataset(60, 7);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    // Small enough that eviction churns *while* probes race.
    let cache = Arc::new(SharedKnowledgeCache::with_capacity(
        sketches.clone(),
        CacheCapacity::bounded(4 << 10),
    ));
    let thresholds = [0.9, 0.7, 0.5, 0.8, 0.6];
    let results: Vec<(f64, ApssResult)> = std::thread::scope(|s| {
        let joins: Vec<_> = thresholds
            .iter()
            .map(|&t| {
                let cache = &cache;
                let records = &records;
                let cfg = &cfg;
                s.spawn(move || (t, cache.probe(records, Similarity::Cosine, t, cfg)))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("racing probe panicked"))
            .collect()
    });
    for (t, result) in &results {
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, *t, &cfg);
        assert_same_outputs(&fresh, result, &format!("raced capped probe at {t}"));
    }
    assert!(cache.memory_stats().memo_bytes <= 4 << 10);
}

#[test]
fn registry_count_cap_evicts_least_recently_used_dataset() {
    let cfg = ApssConfig::default();
    let registry = CacheRegistry::with_capacity(
        RegistryCapacity::unbounded().with_max_caches(2),
        CacheCapacity::unbounded(),
    );
    let (a, b, c) = (dataset(30, 1), dataset(30, 2), dataset(30, 3));
    let cache_a = registry.get_or_build(&a, Similarity::Cosine, &cfg);
    registry.get_or_build(&b, Similarity::Cosine, &cfg);
    // Touch A so B becomes the LRU…
    let cache_a2 = registry.get_or_build(&a, Similarity::Cosine, &cfg);
    assert!(Arc::ptr_eq(&cache_a, &cache_a2), "dedupe survives the cap");
    // …then C's arrival evicts B, not A.
    registry.get_or_build(&c, Similarity::Cosine, &cfg);
    assert_eq!(registry.len(), 2);
    assert_eq!(registry.evicted_caches(), 1);
    let cache_a3 = registry.get_or_build(&a, Similarity::Cosine, &cfg);
    assert!(
        Arc::ptr_eq(&cache_a, &cache_a3),
        "A stayed resident across B's eviction"
    );
    // B was evicted: its next lookup rebuilds (a fresh Arc identity)
    // and evicts the new LRU to stay at two.
    let fp_b = CacheRegistry::fingerprint(&b, Similarity::Cosine, &cfg);
    let rebuilt_b = registry.get_or_build(&b, Similarity::Cosine, &cfg);
    assert_eq!(registry.len(), 2);
    assert_eq!(registry.evicted_caches(), 2);
    assert!(rebuilt_b.sketches().len() == b.len());
    assert!(registry.evict(fp_b), "rebuilt B is registered under its fp");
}

#[test]
fn registry_byte_cap_bounds_total_footprint() {
    let cfg = ApssConfig::default();
    // Find a realistic per-cache footprint first, then set the cap to
    // hold roughly one cache.
    let probe_ds = dataset(40, 9);
    let sizing = CacheRegistry::new();
    let one = sizing.get_or_build(&probe_ds, Similarity::Cosine, &cfg);
    let per_cache = one.total_bytes();
    assert!(per_cache > 0);

    let registry = CacheRegistry::with_capacity(
        RegistryCapacity::unbounded().with_max_total_bytes(per_cache + per_cache / 2),
        CacheCapacity::unbounded(),
    );
    for seed in 10..14 {
        let ds = dataset(40, seed);
        registry.get_or_build(&ds, Similarity::Cosine, &cfg);
        assert!(
            registry.total_bytes() <= per_cache + per_cache / 2,
            "registry total {} exceeds byte cap",
            registry.total_bytes()
        );
    }
    assert!(
        registry.evicted_caches() >= 3,
        "each arrival evicts the last"
    );
    assert_eq!(registry.len(), 1, "cap holds one cache at a time");
}

#[test]
fn registry_per_cache_policy_reaches_built_caches() {
    let cfg = ApssConfig::default();
    let cap = 4 << 10;
    let registry =
        CacheRegistry::with_capacity(RegistryCapacity::unbounded(), CacheCapacity::bounded(cap));
    let records = dataset(50, 17);
    let mut session = registry.session(records.clone(), Similarity::Cosine, cfg);
    for &t in &[0.9, 0.6, 0.4] {
        session.probe(t);
        let stats = session.cache().expect("attached").memory_stats();
        assert!(stats.memo_bytes <= cap, "{} > {cap}", stats.memo_bytes);
    }
    assert!(
        session
            .cache()
            .expect("attached")
            .memory_stats()
            .evicted_entries
            > 0,
        "a 4 KiB cap over a 3-probe sweep must evict"
    );
}

/// A fixed probe workload round-robined across `sessions` handles to one
/// capped shared cache, probes serialized in global order, each probe run
/// at `threads` workers.
fn run_capped_workload(
    records: &[SparseVector],
    capacity: CacheCapacity,
    threads: usize,
    sessions: usize,
    workload: &[f64],
) -> (Vec<ApssResult>, usize) {
    let cfg = ApssConfig {
        parallelism: Some(threads),
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(records, Similarity::Cosine, &cfg);
    let cache = Arc::new(SharedKnowledgeCache::with_capacity(sketches, capacity));
    let handles: Vec<Arc<SharedKnowledgeCache>> = (0..sessions).map(|_| cache.clone()).collect();
    let mut max_bytes_seen = 0usize;
    let results = workload
        .iter()
        .enumerate()
        .map(|(q, &t)| {
            let r = handles[q % sessions].probe(records, Similarity::Cosine, t, &cfg);
            max_bytes_seen = max_bytes_seen.max(cache.memo_bytes());
            r
        })
        .collect();
    (results, max_bytes_seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance pin: for any byte cap, thread count, and session
    /// count, a capped serialized workload returns exactly what the
    /// unbounded single-threaded workload returns, and its accounted
    /// bytes never exceed the cap at any probe boundary.
    #[test]
    fn capped_workload_is_output_identical_across_threads_and_sessions(
        n in 30usize..70,
        seed in 0u64..500,
        cap in 0usize..32_768,
        threads in 1usize..5,
        sessions in 1usize..4,
    ) {
        let records = dataset(n, seed);
        let workload = [0.9, 0.6, 0.75, 0.6, 0.5];
        let (reference, _) =
            run_capped_workload(&records, CacheCapacity::unbounded(), 1, 1, &workload);
        let (capped, max_bytes) = run_capped_workload(
            &records,
            CacheCapacity::bounded(cap),
            threads,
            sessions,
            &workload,
        );
        for (q, (a, b)) in reference.iter().zip(&capped).enumerate() {
            assert_same_outputs(
                a,
                b,
                &format!("cap={cap} threads={threads} sessions={sessions} probe#{q}"),
            );
        }
        prop_assert!(
            max_bytes <= cap,
            "accounted bytes {max_bytes} exceeded cap {cap}"
        );
    }
}
