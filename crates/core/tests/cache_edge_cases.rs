//! Knowledge-cache edge cases: empty datasets, identical-threshold
//! re-probes (must be pure cache hits), and descending threshold sweeps.

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig};
use plasma_core::{CacheRegistry, Session, SharedKnowledgeCache};
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

fn dataset(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 4.0,
        spread: 0.6,
        ..GaussianSpec::new("edge", n, 8, 3)
    }
    .generate(seed)
    .records
}

#[test]
fn probing_an_empty_dataset_is_a_no_op_not_a_panic() {
    let records: Vec<SparseVector> = Vec::new();
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::new(sketches);
    let result = cache.probe(&records, Similarity::Cosine, 0.7, &cfg);
    assert_eq!(result.pairs.len(), 0);
    assert_eq!(result.estimates.len(), 0);
    assert_eq!(result.stats.candidates, 0);
    assert_eq!(result.stats.hashes_compared, 0);
    assert!(cache.is_empty());
    assert_eq!(cache.len(), 0);
    assert_eq!(cache.probe_history(), vec![0.7]);

    // The full session loop tolerates emptiness too: report, curve, and
    // cues all come back trivial.
    let mut session = Session::from_records(Vec::new(), Similarity::Cosine, cfg);
    assert!(session.is_empty());
    let report = session.probe(0.7);
    assert_eq!(report.pairs.len(), 0);
    assert_eq!(report.candidates, 0);
    assert!(report.curve.expected.iter().all(|&e| e == 0.0));
    let cue = session.triangle_cue(&report.pairs);
    assert_eq!(cue.total_triangles, 0);
}

#[test]
fn identical_threshold_reprobe_is_a_pure_cache_hit() {
    let records = dataset(60, 5);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::new(sketches);
    let first = cache.probe(&records, Similarity::Cosine, 0.8, &cfg);
    assert!(first.stats.hashes_compared > 0);
    let again = cache.probe(&records, Similarity::Cosine, 0.8, &cfg);
    // Zero new hashing, every candidate answered from the memo pool, and
    // the exact same output.
    assert_eq!(again.stats.hashes_compared, 0);
    assert_eq!(again.stats.cache_hits, again.stats.candidates);
    assert_eq!(again.pairs, first.pairs);
    assert_eq!(again.estimates.len(), first.estimates.len());
    for (a, b) in first.estimates.iter().zip(&again.estimates) {
        assert_eq!((a.0, a.1), (b.0, b.1));
        assert_eq!(a.2.decision, b.2.decision);
        assert_eq!(a.2.matches, b.2.matches);
        assert_eq!(a.2.hashes, b.2.hashes);
    }
}

#[test]
fn identical_threshold_reprobe_with_exact_similarities_recomputes_nothing() {
    let records = dataset(50, 9);
    let cfg = ApssConfig {
        exact_on_accept: true,
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::new(sketches);
    let first = cache.probe(&records, Similarity::Cosine, 0.7, &cfg);
    let again = cache.probe(&records, Similarity::Cosine, 0.7, &cfg);
    assert_eq!(again.stats.hashes_compared, 0);
    assert_eq!(
        again.pairs, first.pairs,
        "memoized exact sims must be reused"
    );
}

#[test]
fn descending_sweep_deepens_monotonically_and_matches_fresh_probes() {
    let records = dataset(60, 13);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::new(sketches.clone());
    let sweep = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3];
    let mut cached_hash_total = 0u64;
    let mut fresh_hash_total = 0u64;
    let mut hits_seen = false;
    for &t in &sweep {
        let cached = cache.probe(&records, Similarity::Cosine, t, &cfg);
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, t, &cfg);
        // Bit-identical output at every step of the sweep…
        assert_eq!(cached.pairs, fresh.pairs, "sweep step {t}");
        assert_eq!(cached.estimates.len(), fresh.estimates.len());
        for (a, b) in cached.estimates.iter().zip(&fresh.estimates) {
            assert_eq!(a.2.matches, b.2.matches, "sweep step {t}");
            assert_eq!(a.2.hashes, b.2.hashes, "sweep step {t}");
            assert_eq!(a.2.decision, b.2.decision, "sweep step {t}");
        }
        // …while the cache only ever pays for *deepening*, never repeats.
        assert!(
            cached.stats.hashes_compared <= fresh.stats.hashes_compared,
            "cached sweep step {t} must not out-hash a fresh probe"
        );
        cached_hash_total += cached.stats.hashes_compared;
        fresh_hash_total += fresh.stats.hashes_compared;
        hits_seen |= cached.stats.cache_hits > 0;
    }
    // Across the whole sweep each pair pays only for its deepest walk
    // (profiles extend, never repeat), so the cached total is bounded by
    // the sum of fresh per-step costs — per pair, max over steps vs sum
    // over steps — and in practice far below it.
    assert!(
        cached_hash_total <= fresh_hash_total,
        "sweep total {cached_hash_total} vs fresh-per-step sum {fresh_hash_total}"
    );
    assert!(
        hits_seen,
        "a 7-step sweep must answer some pairs from cache"
    );
    assert_eq!(cache.probe_history(), sweep.to_vec());
    // After the sweep, every threshold in it re-probes for free.
    for &t in &sweep {
        let again = cache.probe(&records, Similarity::Cosine, t, &cfg);
        assert_eq!(again.stats.hashes_compared, 0, "re-probe at {t}");
    }
}

#[test]
fn registry_sessions_share_one_cache_per_dataset() {
    let records = dataset(50, 21);
    let cfg = ApssConfig::default();
    let registry = CacheRegistry::new();
    let mut alice = registry.session(records.clone(), Similarity::Cosine, cfg);
    let mut bob = registry.session(records.clone(), Similarity::Cosine, cfg);
    assert_eq!(registry.len(), 1, "same corpus + config → one cache");
    let cache = alice.cache().expect("attached at open");
    assert!(std::ptr::eq(
        cache as *const SharedKnowledgeCache,
        bob.cache().expect("attached") as *const SharedKnowledgeCache
    ));

    // Alice explores; Bob re-treads her threshold without any hashing.
    let a = alice.probe(0.75);
    assert!(a.hashes_compared > 0);
    assert_eq!(a.sketch_seconds, 0.0, "registry built the sketches");
    let b = bob.probe(0.75);
    assert_eq!(b.hashes_compared, 0);
    assert_eq!(b.cache_hits, b.candidates);
    let a_pairs: Vec<(u32, u32)> = a.pairs.iter().map(|p| (p.i, p.j)).collect();
    let b_pairs: Vec<(u32, u32)> = b.pairs.iter().map(|p| (p.i, p.j)).collect();
    assert_eq!(a_pairs, b_pairs);

    // A different corpus gets its own cache.
    let other = registry.session(dataset(50, 22), Similarity::Cosine, cfg);
    assert_eq!(registry.len(), 2);
    drop(other);

    // Shared history interleaves both users' probes in append order.
    let shared = alice.shared_cache().expect("probed");
    assert_eq!(shared.probe_history(), vec![0.75, 0.75]);
}

#[test]
fn epoch_bump_under_a_tiny_capacity_keeps_outputs_exact() {
    // Carried memos are ordinary memos: a tiny byte cap may evict them
    // right after (or before) the bump, but probe outputs over the grown
    // corpus stay bit-identical to a cold batch run.
    use plasma_core::cache::CacheCapacity;
    use plasma_core::StreamingSession;
    let records = dataset(50, 31);
    let cfg = ApssConfig::default();
    let cap = 1024; // far below the workload's unbounded footprint
    let mut streaming =
        StreamingSession::from_records(records[..30].to_vec(), Similarity::Cosine, cfg)
            .with_cache_capacity(CacheCapacity::bounded(cap));
    streaming.probe(0.7);
    streaming.ingest(&records[30..]);
    let grown = streaming.probe(0.7);

    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cold = apss_with_sketches(&records, Similarity::Cosine, &sketches, 0.7, &cfg);
    let grown_pairs: Vec<(u32, u32)> = grown.pairs.iter().map(|p| (p.i, p.j)).collect();
    let cold_pairs: Vec<(u32, u32)> = cold.pairs.iter().map(|p| (p.i, p.j)).collect();
    assert_eq!(grown_pairs, cold_pairs, "eviction must never change pairs");
    assert_eq!(grown.candidates, cold.stats.candidates);
    assert_eq!(grown.pruned, cold.stats.pruned);

    let stats = streaming.shared_cache().expect("probed").memory_stats();
    assert!(stats.memo_bytes <= cap, "{} > {cap}", stats.memo_bytes);
    assert!(
        stats.evicted_entries > 0,
        "a 1 KiB cap over a 50-record corpus must have evicted"
    );
}

#[test]
fn grown_cache_keeps_its_registry_lineage() {
    // Growth mutates the registered cache in place: no duplicate entry,
    // no registry eviction, and the epoch-0 fingerprint keeps resolving
    // to the same (now larger) cache.
    use plasma_core::cache::{CacheCapacity, RegistryCapacity};
    use plasma_core::StreamingSession;
    use std::sync::Arc;
    let records = dataset(44, 33);
    let cfg = ApssConfig::default();
    let registry = CacheRegistry::with_capacity(
        RegistryCapacity::unbounded().with_max_caches(2),
        CacheCapacity::unbounded(),
    );
    let head = records[..28].to_vec();
    let cache = registry.get_or_build(&head, Similarity::Cosine, &cfg);
    let bytes_before = registry.total_bytes();

    let mut streaming = StreamingSession::from_records(head.clone(), Similarity::Cosine, cfg)
        .with_shared_cache(cache.clone());
    streaming.probe(0.7);
    streaming.ingest(&records[28..]);
    assert_eq!(cache.epoch(), 1);
    assert_eq!(cache.sketches().len(), records.len());

    // Still exactly one registry entry, nothing evicted, and the grown
    // sketches show up in the registry's byte accounting.
    assert_eq!(registry.len(), 1, "growth must not mint a second entry");
    assert_eq!(registry.evicted_caches(), 0);
    assert!(registry.total_bytes() > bytes_before);

    // The epoch-0 corpus still resolves to the very same cache.
    let again = registry.get_or_build(&head, Similarity::Cosine, &cfg);
    assert!(
        Arc::ptr_eq(&cache, &again),
        "lineage lookup must not rebuild"
    );
    assert_eq!(registry.len(), 1);

    // And the grown corpus probes through it with carried memos.
    let report = streaming.probe(0.7);
    assert!(report.cache_hits > 0);
}

#[test]
fn empty_ingest_never_bumps_a_registry_cache() {
    use plasma_core::StreamingSession;
    let records = dataset(30, 35);
    let cfg = ApssConfig::default();
    let registry = CacheRegistry::new();
    let cache = registry.get_or_build(&records, Similarity::Cosine, &cfg);
    let mut streaming = StreamingSession::from_records(records, Similarity::Cosine, cfg)
        .with_shared_cache(cache.clone());
    let report = streaming.ingest(&[]);
    assert_eq!(report.records_added, 0);
    assert_eq!(cache.epoch(), 0, "a zero-record batch is not an epoch");
    assert_eq!(registry.len(), 1);
}

#[test]
#[should_panic(expected = "extend the current corpus byte for byte")]
fn grow_rejects_a_diverged_corpus() {
    // Adopting sketches that are not a prefix-extension would silently
    // poison every carried memo — the cache must refuse loudly.
    use plasma_lsh::family::LshFamily;
    use plasma_lsh::sketch::Sketcher;
    let records = dataset(20, 37);
    let other = dataset(24, 38);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = SharedKnowledgeCache::new(sketches);
    // Sketch a *different* corpus and bump its epoch via a batch extend.
    let sketcher = Sketcher::new(LshFamily::SimHash, cfg.n_hashes, cfg.seed);
    let mut diverged = sketcher.sketch_all(&other[..20]);
    sketcher.extend_batch(&other[20..], &mut diverged);
    cache.grow(diverged);
}

#[test]
#[should_panic(expected = "re-sync the corpus before probing a grown cache")]
fn probing_a_grown_cache_with_stale_records_fails_loudly() {
    // A session holding the pre-growth record list must not receive
    // candidate pairs that index records it never supplied.
    use plasma_core::StreamingSession;
    let records = dataset(40, 39);
    let cfg = ApssConfig::default();
    let head = records[..25].to_vec();
    let cache = {
        let mut streaming = StreamingSession::from_records(head.clone(), Similarity::Cosine, cfg);
        streaming.probe(0.7);
        streaming.ingest(&records[25..]);
        streaming.shared_cache().expect("probed")
    };
    cache.probe(&head, Similarity::Cosine, 0.7, &cfg);
}

#[test]
#[should_panic(expected = "mixing hash universes")]
fn streaming_attach_rejects_a_seed_mismatched_cache() {
    // Ingest re-derives the sketcher from the session config; attaching a
    // cache sketched under a different seed would extend one hash
    // universe with another and silently poison every cross-batch pair —
    // the attach must refuse up front.
    use plasma_core::StreamingSession;
    let records = dataset(20, 41);
    let cfg = ApssConfig::default();
    let reseeded = ApssConfig {
        seed: cfg.seed + 1,
        ..cfg
    };
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &reseeded);
    let cache = std::sync::Arc::new(SharedKnowledgeCache::new(sketches));
    let _ =
        StreamingSession::from_records(records, Similarity::Cosine, cfg).with_shared_cache(cache);
}

#[test]
#[should_panic(expected = "grown past this session's corpus")]
fn batch_session_cannot_attach_a_grown_cache_over_a_stale_prefix() {
    // The registry keeps serving a lineage's epoch-0 fingerprint after
    // growth; a batch Session opening over the stale prefix must get a
    // guided panic, not out-of-range candidate pairs.
    use plasma_core::StreamingSession;
    let records = dataset(40, 43);
    let cfg = ApssConfig::default();
    let head = records[..25].to_vec();
    let registry = CacheRegistry::new();
    let cache = registry.get_or_build(&head, Similarity::Cosine, &cfg);
    let mut streaming = StreamingSession::from_records(head.clone(), Similarity::Cosine, cfg)
        .with_shared_cache(cache);
    streaming.probe(0.7);
    streaming.ingest(&records[25..]);
    let _ = registry.session(head, Similarity::Cosine, cfg);
}
