//! Crash-recovery fault injection for the durable snapshot + WAL layer.
//!
//! The contract under test: recovery either reproduces the acked lineage
//! *exactly* — warm probes bit-identical to a cold build of the same
//! corpus — or refuses loudly with a structured [`DurableError`]. Fault
//! classes injected here: torn WAL tail (crash mid-append), corrupt
//! snapshot checksum, snapshot/WAL fingerprint mismatch, the
//! crash-between-snapshot-and-truncate overlap window (both the honest
//! case, which must verify via `is_prefix_of`, and a diverged snapshot,
//! which must be rejected).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use plasma_core::apss::{ApssConfig, CandidateStrategy};
use plasma_core::cache::{CacheCapacity, CacheRegistry};
use plasma_core::durable::{self, CorpusStore, DurableError};
use plasma_core::session::ProbeReport;
use plasma_core::streaming::StreamingSession;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

/// Unique scratch directory per test, removed on drop (best effort).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "plasma-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dataset(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("durable", n, 6, 3)
    }
    .generate(seed)
    .records
}

fn test_cfg() -> ApssConfig {
    ApssConfig {
        n_hashes: 64,
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        parallelism: Some(1),
        ..ApssConfig::default()
    }
}

/// Probes must match bit for bit — pairs and decision counters always;
/// work counters too when both sides start memo-cold (`work_counters`),
/// since warmth is then deterministic.
fn assert_same_probe_inner(a: &ProbeReport, b: &ProbeReport, work_counters: bool, label: &str) {
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: pair count");
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.i, x.j), (y.i, y.j), "{label}: pair ids");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{label}: similarity of ({}, {})",
            x.i,
            x.j
        );
    }
    assert_eq!(a.candidates, b.candidates, "{label}: candidates");
    assert_eq!(a.pruned, b.pruned, "{label}: pruned");
    if work_counters {
        assert_eq!(a.cache_hits, b.cache_hits, "{label}: cache hits");
        assert_eq!(
            a.hashes_compared, b.hashes_compared,
            "{label}: hashes compared"
        );
    }
}

fn assert_same_probe(a: &ProbeReport, b: &ProbeReport, label: &str) {
    assert_same_probe_inner(a, b, true, label);
}

/// Builds a live session over `base` records, snapshots it at epoch 0,
/// then ingests each batch WAL-first (the serving layer's
/// append-before-ack order). Returns the store and live session.
fn seed_store(
    dir: &Path,
    base: &[SparseVector],
    batches: &[&[SparseVector]],
) -> (CorpusStore, StreamingSession, u128) {
    let cfg = test_cfg();
    let fp = CacheRegistry::fingerprint(base, Similarity::Jaccard, &cfg);
    let mut live = StreamingSession::from_records(base.to_vec(), Similarity::Jaccard, cfg);
    // An empty ingest builds the cache without bumping the epoch, so the
    // publish-time snapshot sees epoch 0 sketches.
    live.ingest(&[]);
    let (records, sketches, epoch) = live.persist_view().expect("cache built");
    assert_eq!(epoch, 0);
    let store = CorpusStore::open(dir, fp).expect("open store");
    store.write_snapshot(&records, &sketches).expect("snapshot");
    for batch in batches {
        let report = live.ingest(batch);
        store
            .append_ingest(
                report.epoch,
                report.total_records - report.records_added,
                batch,
            )
            .expect("wal append");
    }
    (store, live, fp)
}

fn recover(dir: &Path) -> Result<durable::RecoveredCorpus, DurableError> {
    durable::recover(
        dir,
        Similarity::Jaccard,
        test_cfg(),
        CacheCapacity::unbounded(),
    )
}

/// A cold session over the same corpus prefix, probed identically — the
/// bit-identical reference for every warm restart.
fn cold_session(records: &[SparseVector]) -> StreamingSession {
    StreamingSession::from_records(records.to_vec(), Similarity::Jaccard, test_cfg())
}

#[test]
fn warm_restart_replays_wal_tail_bit_identically() {
    let tmp = TempDir::new("warm");
    let all = dataset(48, 11);
    let (b1, b2) = (&all[28..37], &all[37..48]);
    let (_store, _live, fp) = seed_store(tmp.path(), &all[..28], &[b1, b2]);

    let rec = recover(tmp.path()).expect("recovery succeeds");
    assert_eq!(rec.fingerprint, fp);
    assert_eq!(rec.snapshot_epoch, 0);
    assert_eq!(rec.snapshot_records, 28);
    assert_eq!(rec.epoch, 2);
    assert_eq!(rec.replayed_entries, 2);
    assert_eq!(rec.replayed_records, 20);
    assert!(!rec.wal_tail_discarded);

    let mut warm = rec.session;
    assert_eq!(warm.len(), 48);
    let mut cold = cold_session(&all);
    for threshold in [0.85, 0.65, 0.5] {
        assert_same_probe(
            &warm.probe(threshold),
            &cold.probe(threshold),
            &format!("threshold {threshold}"),
        );
    }

    // The recovered lineage keeps growing through the normal path: a
    // post-recovery ingest reaches epoch 3 and still matches cold.
    let extra = dataset(8, 99);
    let report = warm.ingest(&extra);
    assert_eq!(report.epoch, 3);
    let mut grown_cold = cold_session(&{
        let mut v = all.clone();
        v.extend_from_slice(&extra);
        v
    });
    // The warm session's earlier probes left memos behind, so only the
    // outputs (not work counters) are comparable against a fresh build.
    assert_same_probe_inner(
        &warm.probe(0.65),
        &grown_cold.probe(0.65),
        false,
        "post-recovery",
    );
}

#[test]
fn snapshot_only_restart_needs_no_wal_replay() {
    let tmp = TempDir::new("snap-only");
    let all = dataset(40, 5);
    let (store, live, _) = seed_store(tmp.path(), &all[..25], &[&all[25..40]]);
    // A snapshotter pass captures epoch 1 and truncates the log.
    let (records, sketches, epoch) = live.persist_view().expect("view");
    assert_eq!(epoch, 1);
    store.write_snapshot(&records, &sketches).expect("snapshot");
    assert!(store.wal_bytes() < 64, "snapshot must truncate the WAL");

    let rec = recover(tmp.path()).expect("recovery succeeds");
    assert_eq!(rec.snapshot_epoch, 1);
    assert_eq!(rec.epoch, 1);
    assert_eq!(rec.replayed_entries, 0);
    let mut warm = rec.session;
    let mut cold = cold_session(&all);
    assert_same_probe(&warm.probe(0.65), &cold.probe(0.65), "snapshot-only");
}

#[test]
fn torn_wal_tail_recovers_to_last_acked_epoch() {
    let tmp = TempDir::new("torn");
    let all = dataset(44, 23);
    let (b1, b2) = (&all[26..34], &all[34..44]);
    let (store, _live, _) = seed_store(tmp.path(), &all[..26], &[b1, b2]);

    // Crash mid-append: the final entry loses its last 7 bytes. That
    // entry was never acked, so recovery must serve epoch 1 (batch 1
    // acked and intact) and report the discard.
    drop(store);
    let wal = tmp.path().join("wal.bin");
    let len = std::fs::metadata(&wal).expect("wal meta").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    f.set_len(len - 7).expect("truncate");

    let rec = recover(tmp.path()).expect("torn tail must still recover");
    assert!(rec.wal_tail_discarded, "discard must be reported");
    assert_eq!(rec.epoch, 1, "only the acked epoch survives");
    assert_eq!(rec.replayed_entries, 1);
    let mut warm = rec.session;
    assert_eq!(warm.len(), 34);
    let mut cold = cold_session(&all[..34]);
    assert_same_probe(&warm.probe(0.65), &cold.probe(0.65), "torn tail");
}

#[test]
fn corrupt_snapshot_checksum_is_a_structured_refusal() {
    let tmp = TempDir::new("corrupt");
    let all = dataset(36, 31);
    seed_store(tmp.path(), &all[..30], &[&all[30..36]]);

    let snap = std::fs::read_dir(tmp.path())
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("snapshot-"))
        })
        .expect("snapshot file exists");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("write corrupted");

    match recover(tmp.path()) {
        Err(DurableError::CorruptSnapshot { path, detail }) => {
            assert_eq!(path, snap);
            assert!(
                detail.contains("checksum") || detail.contains("truncated"),
                "detail should name the failure: {detail}"
            );
        }
        Err(other) => panic!("wrong refusal: {other}"),
        Ok(_) => panic!("corrupt snapshot must not recover"),
    }
}

#[test]
fn fingerprint_mismatch_is_a_structured_refusal() {
    let tmp = TempDir::new("fp");
    let all = dataset(32, 41);
    let (store, _live, fp) = seed_store(tmp.path(), &all[..32], &[]);
    drop(store);

    // Replace the WAL with one from a different lineage: same directory,
    // different fingerprint, one entry so it is not header-only.
    std::fs::remove_file(tmp.path().join("wal.bin")).expect("drop wal");
    let alien = CorpusStore::open(tmp.path(), fp ^ 0xDEAD_BEEF).expect("alien store");
    alien
        .append_ingest(1, 32, &dataset(4, 77))
        .expect("alien append");

    match recover(tmp.path()) {
        Err(DurableError::FingerprintMismatch { snapshot, wal }) => {
            assert_eq!(snapshot, fp);
            assert_eq!(wal, fp ^ 0xDEAD_BEEF);
        }
        Err(other) => panic!("wrong refusal: {other}"),
        Ok(_) => panic!("mismatched lineages must not recover"),
    }
}

#[test]
fn crash_between_snapshot_and_truncate_verifies_overlap() {
    let tmp = TempDir::new("overlap");
    let all = dataset(42, 53);
    let b1 = &all[27..42];
    let (store, live, _) = seed_store(tmp.path(), &all[..27], &[b1]);

    // Simulate the crash window: a snapshot at epoch 1 exists but the
    // WAL still holds the epoch-1 entry (truncation never happened).
    // `write_snapshot` truncates atomically, so rebuild that state by
    // hand: snapshot, then re-append the same entry.
    let (records, sketches, _) = live.persist_view().expect("view");
    store.write_snapshot(&records, &sketches).expect("snapshot");
    store.append_ingest(1, 27, b1).expect("stale overlap entry");

    // The overlap replays, passes `is_prefix_of`, and serves epoch 1.
    let rec = recover(tmp.path()).expect("honest overlap must verify");
    assert_eq!(rec.snapshot_epoch, 1);
    assert_eq!(rec.epoch, 1);
    assert_eq!(rec.replayed_entries, 0, "overlap is verified, not replayed");
    let mut warm = rec.session;
    let mut cold = cold_session(&all);
    assert_same_probe(&warm.probe(0.65), &cold.probe(0.65), "overlap window");
}

#[test]
fn diverged_snapshot_is_rejected_by_the_prefix_check() {
    let tmp = TempDir::new("diverged");
    let all = dataset(42, 67);
    let b1 = &all[27..42];
    let (store, live, _) = seed_store(tmp.path(), &all[..27], &[b1]);
    let (records, sketches, _) = live.persist_view().expect("view");
    store.write_snapshot(&records, &sketches).expect("snapshot");

    // The WAL claims epoch 1 was a *different* batch than the snapshot
    // absorbed: `is_prefix_of` must reject the snapshot as diverged.
    let mut wrong = b1.to_vec();
    wrong[0] = SparseVector::from_pairs(vec![(1, 1.0), (99999, 42.0)]);
    store.append_ingest(1, 27, &wrong).expect("diverged entry");

    match recover(tmp.path()) {
        Err(DurableError::DivergedSnapshot { epoch, detail }) => {
            assert_eq!(epoch, 1);
            assert!(
                detail.contains("different sketch words"),
                "detail should say what diverged: {detail}"
            );
        }
        Err(other) => panic!("wrong refusal: {other}"),
        Ok(_) => panic!("a diverged snapshot must never serve"),
    }
}

#[test]
fn empty_directory_refuses_with_missing_snapshot() {
    let tmp = TempDir::new("empty");
    match recover(tmp.path()) {
        Err(DurableError::MissingSnapshot { dir }) => assert_eq!(dir, tmp.path()),
        Err(other) => panic!("wrong refusal: {other}"),
        Ok(_) => panic!("an empty directory has nothing to recover"),
    }
}

#[test]
fn group_commit_coalesces_queued_appends_into_one_sync() {
    let tmp = TempDir::new("group-det");
    let all = dataset(44, 13);
    let (store, mut live, _) = seed_store(tmp.path(), &all[..26], &[]);

    // Log three batches without waiting, then wait on the *last* mark:
    // one sync must cover all three, and the earlier waits must ride it.
    let mut marks = Vec::new();
    for (lo, hi) in [(26, 32), (32, 38), (38, 44)] {
        let report = live.ingest(&all[lo..hi]);
        let mark = store
            .log_ingest(report.epoch, lo, &all[lo..hi])
            .expect("log entry");
        marks.push(mark);
    }
    store.wait_durable(marks[2]).expect("leader sync");
    store.wait_durable(marks[0]).expect("covered follower");
    store.wait_durable(marks[1]).expect("covered follower");

    let stats = store.sync_stats();
    assert_eq!(stats.acked_appends, 3, "all three batches acked");
    assert_eq!(stats.syncs, 1, "one covering sync paid for all acks");
    assert!(
        stats.syncs < stats.acked_appends,
        "group commit must coalesce: {} syncs for {} acks",
        stats.syncs,
        stats.acked_appends
    );

    // The coalesced log recovers bit-identically to a cold build.
    drop(store);
    let rec = recover(tmp.path()).expect("recovery succeeds");
    assert_eq!(rec.epoch, 3);
    let mut warm = rec.session;
    let mut cold = cold_session(&all);
    assert_same_probe(&warm.probe(0.65), &cold.probe(0.65), "group commit");
}

#[test]
fn concurrent_multi_writer_ingest_group_commits_and_recovers() {
    use std::sync::atomic::AtomicUsize;

    let tmp = TempDir::new("group-mt");
    let all = dataset(74, 17);
    let (store, live, _) = seed_store(tmp.path(), &all[..26], &[]);

    // 4 writers race over 24 two-record batches, each reproducing the
    // serving layer's split: engine-mutate + WAL-log under one exclusion,
    // covering-sync wait outside it — which is what lets syncs coalesce.
    let batches: Vec<&[SparseVector]> = all[26..74].chunks(2).collect();
    let engine = Mutex::new(live);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= batches.len() {
                    break;
                }
                let mark = {
                    let mut session = engine.lock().expect("engine lock");
                    let report = session.ingest(batches[i]);
                    store
                        .log_ingest(
                            report.epoch,
                            report.total_records - report.records_added,
                            batches[i],
                        )
                        .expect("log entry")
                };
                store.wait_durable(mark).expect("covering sync");
            });
        }
    });

    let stats = store.sync_stats();
    assert_eq!(stats.acked_appends, 24, "every batch acked durable");
    assert!(
        stats.syncs <= stats.acked_appends,
        "syncs ({}) can never exceed acks ({})",
        stats.syncs,
        stats.acked_appends
    );

    // Whatever the interleaving, recovery is bit-identical to cold.
    drop(store);
    let rec = recover(tmp.path()).expect("recovery succeeds");
    assert_eq!(rec.epoch, 24);
    let mut warm = rec.session;
    assert_eq!(warm.len(), 74);
    let mut cold = cold_session(&all);
    for threshold in [0.85, 0.65] {
        assert_same_probe(
            &warm.probe(threshold),
            &cold.probe(threshold),
            &format!("multi-writer threshold {threshold}"),
        );
    }
}

#[test]
fn never_synced_tail_is_discarded_and_reported() {
    let tmp = TempDir::new("unsynced-tail");
    let all = dataset(44, 29);
    let b1 = &all[26..34];
    let b2 = &all[34..44];
    let (store, mut live, _) = seed_store(tmp.path(), &all[..26], &[b1]);

    // Batch 2 is logged but the process "crashes" before any covering
    // sync: no wait_durable, so it was never acked. Tear its entry the
    // way an unflushed page-cache tail would be lost.
    let report = live.ingest(b2);
    store
        .log_ingest(report.epoch, 34, b2)
        .expect("log unsynced entry");
    assert_eq!(store.sync_stats().acked_appends, 1, "batch 2 never acked");
    drop(store);
    let wal = tmp.path().join("wal.bin");
    let len = std::fs::metadata(&wal).expect("wal meta").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    f.set_len(len - 5).expect("tear unsynced tail");

    // Recovery discards the tail, says so, and serves exactly the acked
    // prefix — bit-identical to a cold build of those records.
    let rec = recover(tmp.path()).expect("recovery succeeds");
    assert!(rec.wal_tail_discarded, "discard must be reported");
    assert_eq!(rec.epoch, 1, "only the acked epoch survives");
    let mut warm = rec.session;
    assert_eq!(warm.len(), 34);
    let mut cold = cold_session(&all[..34]);
    assert_same_probe(&warm.probe(0.65), &cold.probe(0.65), "unsynced tail");
}

#[test]
fn config_mismatch_refuses_before_touching_the_engine() {
    let tmp = TempDir::new("config");
    let all = dataset(30, 71);
    seed_store(tmp.path(), &all, &[]);
    let other_seed = ApssConfig {
        seed: 0x1234,
        ..test_cfg()
    };
    match durable::recover(
        tmp.path(),
        Similarity::Jaccard,
        other_seed,
        CacheCapacity::unbounded(),
    ) {
        Err(DurableError::ConfigMismatch { detail }) => {
            assert!(
                detail.contains("seed"),
                "detail should name the knob: {detail}"
            );
        }
        Err(other) => panic!("wrong refusal: {other}"),
        Ok(_) => panic!("a different seed is a different lineage"),
    }
}
