//! Property tests pinning the parallel APSS engine's core guarantee:
//! `apss_with_sketches` returns identical pairs, estimates, and counter
//! stats for `parallelism = 1` and `parallelism = N`, on both hash
//! families and both candidate strategies.

use proptest::prelude::*;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig, CandidateStrategy};
use plasma_core::ApssResult;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

fn gaussian_records(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("det", n, 6, 3)
    }
    .generate(seed)
    .records
}

fn set_records(n: usize, seed: u64) -> Vec<SparseVector> {
    use rand::Rng;
    let mut rng = plasma_data::rng::seeded(seed);
    (0..n)
        .map(|i| {
            // Overlapping windows of a small universe → a healthy mix of
            // pruned, accepted, and exhausted pairs.
            let base = (i as u32 / 4) * 30;
            let len = rng.gen_range(20usize..60);
            let items: Vec<u32> = (0..len).map(|_| base + rng.gen_range(0..90u32)).collect();
            SparseVector::from_set(items)
        })
        .collect()
}

fn assert_identical(serial: &ApssResult, parallel: &ApssResult, label: &str) {
    assert_eq!(
        serial.pairs.len(),
        parallel.pairs.len(),
        "{label}: pair count"
    );
    for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
        assert_eq!((a.i, a.j), (b.i, b.j), "{label}: pair ids");
        assert_eq!(
            a.similarity.to_bits(),
            b.similarity.to_bits(),
            "{label}: similarity of ({}, {})",
            a.i,
            a.j
        );
    }
    assert_eq!(
        serial.estimates.len(),
        parallel.estimates.len(),
        "{label}: estimate count"
    );
    for (a, b) in serial.estimates.iter().zip(&parallel.estimates) {
        assert_eq!((a.0, a.1), (b.0, b.1), "{label}: estimate ids");
        assert_eq!(
            a.2.decision, b.2.decision,
            "{label}: decision of ({}, {})",
            a.0, a.1
        );
        assert_eq!(a.2.matches, b.2.matches, "{label}: matches");
        assert_eq!(a.2.hashes, b.2.hashes, "{label}: hashes");
        assert_eq!(
            a.2.map_similarity.to_bits(),
            b.2.map_similarity.to_bits(),
            "{label}: MAP estimate"
        );
        assert_eq!(
            a.2.variance.to_bits(),
            b.2.variance.to_bits(),
            "{label}: variance"
        );
    }
    // Counters must agree exactly; only wall-clock fields may differ.
    assert_eq!(
        serial.stats.candidates, parallel.stats.candidates,
        "{label}"
    );
    assert_eq!(serial.stats.pruned, parallel.stats.pruned, "{label}");
    assert_eq!(serial.stats.accepted, parallel.stats.accepted, "{label}");
    assert_eq!(serial.stats.exhausted, parallel.stats.exhausted, "{label}");
    assert_eq!(
        serial.stats.hashes_compared, parallel.stats.hashes_compared,
        "{label}"
    );
    assert_eq!(
        serial.stats.cache_hits, parallel.stats.cache_hits,
        "{label}"
    );
}

fn check_both_strategies(
    records: &[SparseVector],
    measure: Similarity,
    threshold: f64,
    threads: usize,
    exact: bool,
) {
    for strategy in [
        CandidateStrategy::Exhaustive,
        CandidateStrategy::Banded { bands: 8, width: 8 },
    ] {
        let serial_cfg = ApssConfig {
            candidates: strategy,
            exact_on_accept: exact,
            parallelism: Some(1),
            ..ApssConfig::default()
        };
        let parallel_cfg = ApssConfig {
            parallelism: Some(threads),
            ..serial_cfg
        };
        let (sketches, _) = build_sketches(records, measure, &serial_cfg);
        let serial = apss_with_sketches(records, measure, &sketches, threshold, &serial_cfg);
        let parallel = apss_with_sketches(records, measure, &sketches, threshold, &parallel_cfg);
        assert_identical(
            &serial,
            &parallel,
            &format!("{measure:?}/{strategy:?}/threads={threads}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simhash_probe_is_thread_count_invariant(
        n in 30usize..90,
        seed in 0u64..1000,
        threshold in 0.5f64..0.95,
        threads in 2usize..9,
    ) {
        let records = gaussian_records(n, seed);
        check_both_strategies(&records, Similarity::Cosine, threshold, threads, false);
    }

    #[test]
    fn minhash_probe_is_thread_count_invariant(
        n in 30usize..90,
        seed in 0u64..1000,
        threshold in 0.3f64..0.9,
        threads in 2usize..9,
    ) {
        let records = set_records(n, seed);
        check_both_strategies(&records, Similarity::Jaccard, threshold, threads, false);
    }

    #[test]
    fn exact_on_accept_is_thread_count_invariant(
        seed in 0u64..200,
        threads in 2usize..7,
    ) {
        let records = gaussian_records(50, seed);
        check_both_strategies(&records, Similarity::Cosine, 0.7, threads, true);
    }
}

#[test]
fn knowledge_cache_probes_are_thread_count_invariant() {
    let records = gaussian_records(70, 99);
    let serial_cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let parallel_cfg = ApssConfig {
        parallelism: Some(6),
        ..ApssConfig::default()
    };
    let (sk1, _) = build_sketches(&records, Similarity::Cosine, &serial_cfg);
    let (sk2, _) = build_sketches(&records, Similarity::Cosine, &parallel_cfg);
    let mut serial_cache = plasma_core::KnowledgeCache::new(sk1);
    let mut parallel_cache = plasma_core::KnowledgeCache::new(sk2);
    for threshold in [0.9, 0.6, 0.75] {
        let serial = serial_cache.probe(&records, Similarity::Cosine, threshold, &serial_cfg);
        let parallel = parallel_cache.probe(&records, Similarity::Cosine, threshold, &parallel_cfg);
        assert_identical(&serial, &parallel, &format!("cache probe at {threshold}"));
        assert!(threshold == 0.9 || parallel.stats.cache_hits > 0);
    }
}
