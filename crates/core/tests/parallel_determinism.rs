//! Property tests pinning the parallel APSS engine's core guarantees:
//!
//! * `apss_with_sketches` returns identical pairs, estimates, and counter
//!   stats for `parallelism = 1` and `parallelism = N`, on both hash
//!   families and both candidate strategies;
//! * a `SharedKnowledgeCache` workload returns bit-identical results for
//!   every `(threads × concurrent sessions)` configuration, probes racing
//!   from OS threads return exactly the fresh sequential answer, and a
//!   re-probe at an already-probed threshold compares zero new hashes;
//! * full probe outputs — estimates, stats, and work counters through the
//!   knowledge cache, plus `incremental_apss` wide-frontier runs — are
//!   bit-identical with banded-join sharding on vs. off, at every
//!   `ShardPolicy` and thread count.

use std::sync::Arc;

use proptest::prelude::*;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig, CandidateStrategy};
use plasma_core::{ApssResult, Session, ShardPolicy, SharedKnowledgeCache};
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

fn gaussian_records(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("det", n, 6, 3)
    }
    .generate(seed)
    .records
}

fn set_records(n: usize, seed: u64) -> Vec<SparseVector> {
    use rand::Rng;
    let mut rng = plasma_data::rng::seeded(seed);
    (0..n)
        .map(|i| {
            // Overlapping windows of a small universe → a healthy mix of
            // pruned, accepted, and exhausted pairs.
            let base = (i as u32 / 4) * 30;
            let len = rng.gen_range(20usize..60);
            let items: Vec<u32> = (0..len).map(|_| base + rng.gen_range(0..90u32)).collect();
            SparseVector::from_set(items)
        })
        .collect()
}

/// Pairs, estimates, and the decision counters — everything that is
/// interleaving-independent even for probes racing on one shared cache.
fn assert_same_outputs(serial: &ApssResult, parallel: &ApssResult, label: &str) {
    assert_eq!(
        serial.pairs.len(),
        parallel.pairs.len(),
        "{label}: pair count"
    );
    for (a, b) in serial.pairs.iter().zip(&parallel.pairs) {
        assert_eq!((a.i, a.j), (b.i, b.j), "{label}: pair ids");
        assert_eq!(
            a.similarity.to_bits(),
            b.similarity.to_bits(),
            "{label}: similarity of ({}, {})",
            a.i,
            a.j
        );
    }
    assert_eq!(
        serial.estimates.len(),
        parallel.estimates.len(),
        "{label}: estimate count"
    );
    for (a, b) in serial.estimates.iter().zip(&parallel.estimates) {
        assert_eq!((a.0, a.1), (b.0, b.1), "{label}: estimate ids");
        assert_eq!(
            a.2.decision, b.2.decision,
            "{label}: decision of ({}, {})",
            a.0, a.1
        );
        assert_eq!(a.2.matches, b.2.matches, "{label}: matches");
        assert_eq!(a.2.hashes, b.2.hashes, "{label}: hashes");
        assert_eq!(
            a.2.map_similarity.to_bits(),
            b.2.map_similarity.to_bits(),
            "{label}: MAP estimate"
        );
        assert_eq!(
            a.2.variance.to_bits(),
            b.2.variance.to_bits(),
            "{label}: variance"
        );
    }
    // Decision counters must agree exactly.
    assert_eq!(
        serial.stats.candidates, parallel.stats.candidates,
        "{label}"
    );
    assert_eq!(serial.stats.pruned, parallel.stats.pruned, "{label}");
    assert_eq!(serial.stats.accepted, parallel.stats.accepted, "{label}");
    assert_eq!(serial.stats.exhausted, parallel.stats.exhausted, "{label}");
}

/// Full bit-identity: outputs plus the work counters, which are pinned
/// for any *serialized* probe order (and any thread count).
fn assert_identical(serial: &ApssResult, parallel: &ApssResult, label: &str) {
    assert_same_outputs(serial, parallel, label);
    assert_eq!(
        serial.stats.hashes_compared, parallel.stats.hashes_compared,
        "{label}"
    );
    assert_eq!(
        serial.stats.cache_hits, parallel.stats.cache_hits,
        "{label}"
    );
}

fn check_both_strategies(
    records: &[SparseVector],
    measure: Similarity,
    threshold: f64,
    threads: usize,
    exact: bool,
) {
    for strategy in [
        CandidateStrategy::Exhaustive,
        CandidateStrategy::Banded { bands: 8, width: 8 },
    ] {
        let serial_cfg = ApssConfig {
            candidates: strategy,
            exact_on_accept: exact,
            parallelism: Some(1),
            ..ApssConfig::default()
        };
        let parallel_cfg = ApssConfig {
            parallelism: Some(threads),
            ..serial_cfg
        };
        let (sketches, _) = build_sketches(records, measure, &serial_cfg);
        let serial = apss_with_sketches(records, measure, &sketches, threshold, &serial_cfg);
        let parallel = apss_with_sketches(records, measure, &sketches, threshold, &parallel_cfg);
        assert_identical(
            &serial,
            &parallel,
            &format!("{measure:?}/{strategy:?}/threads={threads}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simhash_probe_is_thread_count_invariant(
        n in 30usize..90,
        seed in 0u64..1000,
        threshold in 0.5f64..0.95,
        threads in 2usize..9,
    ) {
        let records = gaussian_records(n, seed);
        check_both_strategies(&records, Similarity::Cosine, threshold, threads, false);
    }

    #[test]
    fn minhash_probe_is_thread_count_invariant(
        n in 30usize..90,
        seed in 0u64..1000,
        threshold in 0.3f64..0.9,
        threads in 2usize..9,
    ) {
        let records = set_records(n, seed);
        check_both_strategies(&records, Similarity::Jaccard, threshold, threads, false);
    }

    #[test]
    fn exact_on_accept_is_thread_count_invariant(
        seed in 0u64..200,
        threads in 2usize..7,
    ) {
        let records = gaussian_records(50, seed);
        check_both_strategies(&records, Similarity::Cosine, 0.7, threads, true);
    }
}

/// A fixed probe workload round-robined across `sessions` live handles to
/// one shared cache, probes serialized in global order, each probe run at
/// `threads` workers. Returns every probe's full result.
fn run_shared_workload(
    records: &[SparseVector],
    threads: usize,
    sessions: usize,
    workload: &[f64],
) -> Vec<ApssResult> {
    let cfg = ApssConfig {
        parallelism: Some(threads),
        ..ApssConfig::default()
    };
    run_shared_workload_cfg(records, &cfg, sessions, workload)
}

/// [`run_shared_workload`] with a caller-supplied config (candidate
/// strategy, shard policy, thread count all pinned by the caller).
fn run_shared_workload_cfg(
    records: &[SparseVector],
    cfg: &ApssConfig,
    sessions: usize,
    workload: &[f64],
) -> Vec<ApssResult> {
    let cfg = *cfg;
    let (sketches, _) = build_sketches(records, Similarity::Cosine, &cfg);
    let cache = Arc::new(SharedKnowledgeCache::new(sketches));
    let handles: Vec<Arc<SharedKnowledgeCache>> = (0..sessions).map(|_| cache.clone()).collect();
    workload
        .iter()
        .enumerate()
        .map(|(q, &t)| handles[q % sessions].probe(records, Similarity::Cosine, t, &cfg))
        .collect()
}

/// The tentpole guarantee: for a serialized probe workload over one
/// shared cache, *everything* — pairs, estimates, decision counters, and
/// the work counters — is bit-identical across every
/// `(threads × concurrent sessions)` configuration. The memo pool's
/// deepest-wins merge is order-free, so which session published a memo
/// never shows in any later probe.
#[test]
fn shared_cache_workload_invariant_across_threads_and_sessions() {
    let records = gaussian_records(70, 99);
    let workload = [0.9, 0.6, 0.75, 0.8, 0.6, 0.5];
    let reference = run_shared_workload(&records, 1, 1, &workload);
    assert!(reference[1].stats.cache_hits > 0, "workload must hit cache");
    for threads in [1usize, 2, 4] {
        for sessions in [1usize, 2, 4] {
            let run = run_shared_workload(&records, threads, sessions, &workload);
            for (q, (a, b)) in reference.iter().zip(&run).enumerate() {
                assert_identical(
                    a,
                    b,
                    &format!("threads={threads} sessions={sessions} probe#{q}"),
                );
            }
        }
    }
}

/// Same matrix through the user-facing API: real `Session`s attached via
/// `with_shared_cache`, each folding its own cumulative curve, reports
/// compared field by field against the single-threaded single-session
/// reference.
#[test]
fn attached_sessions_report_invariant_across_threads_and_sessions() {
    let records = gaussian_records(60, 17);
    let workload = [0.85, 0.6, 0.85, 0.7];
    // (threshold, pair ids, candidates, cache hits, hashes compared).
    type ReportRow = (f64, Vec<(u32, u32)>, u64, u64, u64);
    let run = |threads: usize, sessions: usize| -> Vec<ReportRow> {
        let cfg = ApssConfig {
            parallelism: Some(threads),
            ..ApssConfig::default()
        };
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
        let cache = Arc::new(SharedKnowledgeCache::new(sketches));
        let mut open: Vec<Session> = (0..sessions)
            .map(|_| {
                Session::from_records(records.clone(), Similarity::Cosine, cfg)
                    .with_shared_cache(cache.clone())
            })
            .collect();
        workload
            .iter()
            .enumerate()
            .map(|(q, &t)| {
                let r = open[q % sessions].probe(t);
                let pairs = r.pairs.iter().map(|p| (p.i, p.j)).collect();
                (t, pairs, r.candidates, r.cache_hits, r.hashes_compared)
            })
            .collect()
    };
    let reference = run(1, 1);
    for threads in [1usize, 2, 4] {
        for sessions in [1usize, 2, 4] {
            assert_eq!(
                run(threads, sessions),
                reference,
                "threads={threads} sessions={sessions}"
            );
        }
    }
}

/// Probes racing from OS threads against one shared cache: outputs are
/// still exactly the fresh sequential answer (only the work counters may
/// redistribute between racers), and afterwards every probed threshold
/// re-probes for free.
#[test]
fn racing_sessions_return_fresh_results_and_warm_the_cache() {
    let records = gaussian_records(60, 7);
    let cfg = ApssConfig::default();
    let (sketches, _) = build_sketches(&records, Similarity::Cosine, &cfg);
    let cache = Arc::new(SharedKnowledgeCache::new(sketches.clone()));
    let thresholds = [0.9, 0.7, 0.5, 0.8];
    let results: Vec<(f64, ApssResult)> = std::thread::scope(|s| {
        let joins: Vec<_> = thresholds
            .iter()
            .map(|&t| {
                let cache = &cache;
                let records = &records;
                let cfg = &cfg;
                s.spawn(move || (t, cache.probe(records, Similarity::Cosine, t, cfg)))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("racing probe panicked"))
            .collect()
    });
    for (t, result) in &results {
        let fresh = apss_with_sketches(&records, Similarity::Cosine, &sketches, *t, &cfg);
        assert_same_outputs(&fresh, result, &format!("raced probe at {t}"));
    }
    // The cache now covers every pair to each threshold's depth: every
    // re-probe is answered without a single new hash comparison.
    for &t in &thresholds {
        let again = cache.probe(&records, Similarity::Cosine, t, &cfg);
        assert_eq!(again.stats.hashes_compared, 0, "re-probe at {t}");
        assert_eq!(again.stats.cache_hits, again.stats.candidates);
    }
    // History holds every probe exactly once (append-ordered, no tearing).
    let mut history = cache.probe_history();
    assert_eq!(history.len(), thresholds.len() * 2);
    history.truncate(thresholds.len());
    history.sort_by(f64::total_cmp);
    let mut expected = thresholds.to_vec();
    expected.sort_by(f64::total_cmp);
    assert_eq!(history, expected);
}

/// A corpus where well over half of all records are exact copies of one
/// template — every band has a dominant bucket, the shape banded-join
/// sharding exists for.
fn hot_bucket_records(n: usize) -> Vec<SparseVector> {
    (0..n)
        .map(|i| {
            // 75% land in cluster 0; the rest spread over clusters 2/4/6.
            let c = if i % 4 != 3 { 0 } else { 1 + (i % 6) as u32 };
            SparseVector::from_set((c * 50..c * 50 + 40).collect())
        })
        .collect()
}

/// The shard-policy grid the end-to-end pins sweep: sharding off, the
/// default, and an aggressive splitter that fans every bucket out.
fn shard_policies() -> [ShardPolicy; 3] {
    [
        ShardPolicy::never_split(),
        ShardPolicy::default(),
        ShardPolicy::new(2, 16),
    ]
}

/// Full probe outputs are bit-identical with sharding on vs. off — every
/// policy, every thread count, on the hot-bucket corpus — including the
/// work counters (the candidate set is the same, so the evaluation
/// schedule is the same).
#[test]
fn banded_probe_invariant_across_shard_policies() {
    let records = hot_bucket_records(70);
    let reference_cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        shard: ShardPolicy::never_split(),
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let (sketches, _) = build_sketches(&records, Similarity::Jaccard, &reference_cfg);
    let reference = apss_with_sketches(
        &records,
        Similarity::Jaccard,
        &sketches,
        0.7,
        &reference_cfg,
    );
    assert!(
        reference.stats.candidates > 0,
        "hot-bucket corpus must generate candidates"
    );
    for policy in shard_policies() {
        for threads in [1usize, 2, 4] {
            let cfg = ApssConfig {
                shard: policy,
                parallelism: Some(threads),
                ..reference_cfg
            };
            let run = apss_with_sketches(&records, Similarity::Jaccard, &sketches, 0.7, &cfg);
            assert_identical(&reference, &run, &format!("threads={threads} {policy:?}"));
        }
    }
}

/// The same guarantee through the knowledge cache: a serialized probe
/// workload over one shared cache — banded candidates, multiple sessions
/// — is bit-identical (work counters included) for every
/// `(threads × sessions × shard policy)` configuration.
#[test]
fn shared_cache_workload_invariant_across_shard_policies() {
    let records = hot_bucket_records(60);
    let workload = [0.9, 0.6, 0.75, 0.6];
    let base = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        shard: ShardPolicy::never_split(),
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let reference = run_shared_workload_cfg(&records, &base, 1, &workload);
    assert!(
        reference[1].stats.cache_hits > 0,
        "workload must exercise the cache"
    );
    for policy in shard_policies() {
        for threads in [1usize, 4] {
            for sessions in [1usize, 3] {
                let cfg = ApssConfig {
                    shard: policy,
                    parallelism: Some(threads),
                    ..base
                };
                let run = run_shared_workload_cfg(&records, &cfg, sessions, &workload);
                for (q, (a, b)) in reference.iter().zip(&run).enumerate() {
                    assert_identical(
                        a,
                        b,
                        &format!("{policy:?} threads={threads} sessions={sessions} probe#{q}"),
                    );
                }
            }
        }
    }
}

/// `incremental_apss` wide frontiers through a cache warmed by sharded
/// banded probes: the parallel per-record join (gate lowered so it
/// engages on a CI-sized dataset) reports estimates bit-identical to the
/// plain sequential run, whatever shard policy filled the memo pool.
#[test]
fn incremental_wide_frontier_invariant_with_sharded_cache() {
    let records = gaussian_records(90, 23);
    let report_t = [0.75, 0.85];
    let report_at = [0.25, 0.5, 1.0];
    let sequential_cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let plain = plasma_core::incremental::incremental_apss(
        &records,
        Similarity::Cosine,
        0.5,
        &report_t,
        &report_at,
        &sequential_cfg,
    );
    for policy in shard_policies() {
        let warm_cfg = ApssConfig {
            candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
            shard: policy,
            parallelism: Some(4),
            ..ApssConfig::default()
        };
        let (sketches, _) = build_sketches(&records, Similarity::Cosine, &warm_cfg);
        let cache = SharedKnowledgeCache::new(sketches);
        // Warm the memo pool through sharded banded probes…
        cache.probe(&records, Similarity::Cosine, 0.8, &warm_cfg);
        cache.probe(&records, Similarity::Cosine, 0.6, &warm_cfg);
        // …then run the incremental pass with the wide-frontier join
        // active from frontier width 8 onward.
        let wide = plasma_core::incremental::incremental_apss_with_cache_gated(
            &records,
            Similarity::Cosine,
            &cache,
            0.5,
            &report_t,
            &report_at,
            &warm_cfg,
            8,
        );
        assert_eq!(plain.steps.len(), wide.steps.len(), "{policy:?}");
        for (a, b) in plain.steps.iter().zip(&wide.steps) {
            assert_eq!(a.fraction.to_bits(), b.fraction.to_bits(), "{policy:?}");
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.to_bits(), y.to_bits(), "{policy:?}: estimate diverged");
            }
        }
        for (x, y) in plain.final_estimates.iter().zip(&wide.final_estimates) {
            assert_eq!(x.to_bits(), y.to_bits(), "{policy:?}: final estimate");
        }
    }
}

#[test]
fn knowledge_cache_probes_are_thread_count_invariant() {
    let records = gaussian_records(70, 99);
    let serial_cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let parallel_cfg = ApssConfig {
        parallelism: Some(6),
        ..ApssConfig::default()
    };
    let (sk1, _) = build_sketches(&records, Similarity::Cosine, &serial_cfg);
    let (sk2, _) = build_sketches(&records, Similarity::Cosine, &parallel_cfg);
    let mut serial_cache = plasma_core::KnowledgeCache::new(sk1);
    let mut parallel_cache = plasma_core::KnowledgeCache::new(sk2);
    for threshold in [0.9, 0.6, 0.75] {
        let serial = serial_cache.probe(&records, Similarity::Cosine, threshold, &serial_cfg);
        let parallel = parallel_cache.probe(&records, Similarity::Cosine, threshold, &parallel_cfg);
        assert_identical(&serial, &parallel, &format!("cache probe at {threshold}"));
        assert!(threshold == 0.9 || parallel.stats.cache_hits > 0);
    }
}
