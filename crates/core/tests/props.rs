//! Property tests for the PLASMA-HD engine: session/curve invariants that
//! must hold for arbitrary clustered data and probe sequences.

use proptest::prelude::*;

use plasma_core::apss::{apss, ApssConfig};
use plasma_core::cues;
use plasma_core::session::Session;
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;

fn spec(n: usize, k: usize, sep: f64, seed: u64) -> Vec<plasma_data::vector::SparseVector> {
    GaussianSpec {
        separation: sep,
        spread: 0.8,
        ..GaussianSpec::new("prop", n, 6, k.max(1))
    }
    .generate(seed)
    .records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cumulative_curve_is_monotone_nonincreasing(
        n in 20usize..70,
        k in 1usize..5,
        sep in 1.0f64..5.0,
        seed in 0u64..50
    ) {
        let records = spec(n, k, sep, seed);
        let mut session =
            Session::from_records(records, Similarity::Cosine, ApssConfig::default());
        let r = session.probe(0.7);
        for w in r.curve.expected.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-6, "curve increased: {} -> {}", w[0], w[1]);
        }
        for sd in &r.curve.std_dev {
            prop_assert!(*sd >= 0.0 && sd.is_finite());
        }
    }

    #[test]
    fn reprobe_finds_superset_at_lower_threshold(
        n in 20usize..60,
        seed in 0u64..50
    ) {
        let records = spec(n, 3, 4.0, seed);
        let cfg = ApssConfig {
            exact_on_accept: true,
            ..ApssConfig::default()
        };
        let mut session = Session::from_records(records, Similarity::Cosine, cfg);
        let high = session.probe(0.85);
        let low = session.probe(0.55);
        let high_pairs: std::collections::HashSet<(u32, u32)> =
            high.pairs.iter().map(|p| (p.i, p.j)).collect();
        let low_pairs: std::collections::HashSet<(u32, u32)> =
            low.pairs.iter().map(|p| (p.i, p.j)).collect();
        // Exact-verified pairs at 0.85 must reappear at 0.55 (same cache,
        // lower bar).
        prop_assert!(
            high_pairs.is_subset(&low_pairs),
            "lost {} pairs on re-probe",
            high_pairs.difference(&low_pairs).count()
        );
    }

    #[test]
    fn probe_stats_are_internally_consistent(
        n in 10usize..50,
        t in 0.3f64..0.95,
        seed in 0u64..50
    ) {
        let records = spec(n, 2, 3.0, seed);
        let r = apss(&records, Similarity::Cosine, t, &ApssConfig::default());
        prop_assert_eq!(r.stats.candidates as usize, n * (n - 1) / 2);
        prop_assert_eq!(
            r.stats.pruned + r.stats.accepted + r.stats.exhausted,
            r.stats.candidates
        );
        prop_assert_eq!(r.estimates.len() as u64, r.stats.candidates);
        prop_assert!(r.pairs.len() as u64 <= r.stats.accepted + r.stats.exhausted);
    }

    #[test]
    fn triangle_cue_totals_match_graph(
        n in 10usize..50,
        seed in 0u64..50
    ) {
        let records = spec(n, 2, 4.0, seed);
        let r = apss(&records, Similarity::Cosine, 0.6, &ApssConfig::default());
        let g = cues::pairs_to_graph(n, &r.pairs);
        let cue = cues::triangle_cue(&g);
        let per_sum: u64 = cue.per_vertex.iter().map(|&t| t as u64).sum();
        prop_assert_eq!(per_sum, 3 * cue.total_triangles);
        prop_assert_eq!(cue.histogram.iter().sum::<u64>(), n as u64);
        let c = cues::clusterability(&cue);
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
