//! The streaming-equivalence differential suite.
//!
//! Pins the streaming ingest engine's contract: a history of
//! `ingest(batch)` / `probe(threshold)` calls is **bit-identical**, probe
//! for probe, to cold batch runs over the corpus as of each epoch —
//! pairs, estimates, and decision counters — for every batch-split
//! schedule, parallelism in {1, 2, 4}, and session count in {1, 2}. Work
//! counters are pinned twice over:
//!
//! * across thread counts and shard policies, a streamed history's
//!   `hashes_compared` / `cache_hits` are bit-identical (probes are
//!   serialized, so warmth is deterministic);
//! * against cold runs, the carry-over arithmetic is *exact*: the first
//!   re-probe of a threshold after an epoch bump pays
//!   `cold(full).hashes − cold(old prefix).hashes` new hash comparisons
//!   and scores exactly `cold(old prefix).candidates` cache hits — every
//!   old-pair memo survived, and only pairs touching new records are
//!   computed fresh.
//!
//! Carried-memo economy is also asserted at the cache level: lifetime
//! `memory_stats().cache_hits` must grow across every epoch bump.

use proptest::prelude::*;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig, CandidateStrategy};
use plasma_core::streaming::StreamingSession;
use plasma_core::{ApssResult, ShardPolicy};
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

/// The threshold ladder every session sweeps after every epoch (high →
/// low, the interactive exploration shape).
const LADDER: [f64; 2] = [0.85, 0.65];

fn dataset(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("stream-diff", n, 6, 3)
    }
    .generate(seed)
    .records
}

/// Everything a probe returns except timings: pairs, estimates, decision
/// counters — and optionally the work counters too (exact for serialized
/// streamed runs compared across thread counts / shard policies).
fn assert_same_outputs(a: &ApssResult, b: &ApssResult, work_counters: bool, label: &str) {
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: pair count");
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.i, x.j), (y.i, y.j), "{label}: pair ids");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{label}: similarity of ({}, {})",
            x.i,
            x.j
        );
    }
    assert_eq!(a.estimates.len(), b.estimates.len(), "{label}: estimates");
    for (x, y) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{label}: estimate ids");
        assert_eq!(x.2.decision, y.2.decision, "{label}: decision");
        assert_eq!(x.2.matches, y.2.matches, "{label}: matches");
        assert_eq!(x.2.hashes, y.2.hashes, "{label}: hashes");
        assert_eq!(
            x.2.map_similarity.to_bits(),
            y.2.map_similarity.to_bits(),
            "{label}: MAP"
        );
        assert_eq!(x.2.variance.to_bits(), y.2.variance.to_bits(), "{label}");
    }
    assert_eq!(a.stats.candidates, b.stats.candidates, "{label}");
    assert_eq!(a.stats.pruned, b.stats.pruned, "{label}");
    assert_eq!(a.stats.accepted, b.stats.accepted, "{label}");
    assert_eq!(a.stats.exhausted, b.stats.exhausted, "{label}");
    if work_counters {
        assert_eq!(
            a.stats.hashes_compared, b.stats.hashes_compared,
            "{label}: hashes_compared"
        );
        assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "{label}: hits");
    }
}

/// One full streamed history over `records`: seed the corpus with
/// `bounds[0]` records, then ingest up to each further bound; after the
/// seed and after every epoch, `sessions` sessions each sweep [`LADDER`]
/// (serialized, so work counters are deterministic). With two sessions
/// the ingests alternate between the original session and a fork.
struct StreamedRun {
    /// All probe results, epoch-major, then session, then ladder index.
    results: Vec<ApssResult>,
    /// Lifetime cache hits after each epoch's sweeps (index 0 = seed).
    hits_after_epoch: Vec<u64>,
}

fn run_streamed(
    records: &[SparseVector],
    bounds: &[usize],
    sessions: usize,
    cfg: ApssConfig,
) -> StreamedRun {
    let mut driver =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg)
            .with_parallelism(cfg.parallelism)
            .with_shard_policy(cfg.shard);
    // An empty ingest forces the epoch-0 sketch build so the cache handle
    // exists before the first sweep.
    driver.ingest(&[]);
    let mut fork = driver.fork();
    let cache = driver.shared_cache().expect("cache built by ingest");
    let mut results = Vec::new();
    let mut hits_after_epoch = Vec::new();
    let mut sweep = |prefix: &[SparseVector]| {
        for _ in 0..sessions {
            for &t in &LADDER {
                results.push(cache.probe(prefix, Similarity::Cosine, t, &cfg));
            }
        }
    };
    sweep(&records[..bounds[0]]);
    hits_after_epoch.push(cache.memory_stats().cache_hits);
    let mut prev = bounds[0];
    for (k, &hi) in bounds[1..].iter().enumerate() {
        let ingester = if sessions > 1 && k % 2 == 1 {
            &mut fork
        } else {
            &mut driver
        };
        let report = ingester.ingest(&records[prev..hi]);
        assert_eq!(report.epoch, (k + 1) as u64, "one bump per batch");
        assert_eq!(report.total_records, hi);
        prev = hi;
        sweep(&records[..prev]);
        hits_after_epoch.push(cache.memory_stats().cache_hits);
    }
    StreamedRun {
        results,
        hits_after_epoch,
    }
}

/// Cold reference: fresh sketches over a prefix, cache-less evaluation.
fn cold(prefix: &[SparseVector], t: f64, cfg: &ApssConfig) -> ApssResult {
    let (sketches, _) = build_sketches(prefix, Similarity::Cosine, cfg);
    apss_with_sketches(prefix, Similarity::Cosine, &sketches, t, cfg)
}

/// The shared body of the property and the fixed banded grid: runs the
/// streamed history at `parallelism = 1` as the reference, re-runs it at
/// 2 and 4 threads pinning *every* output including work counters, then
/// pins each epoch's sweeps against cold batch runs — with the exact
/// carry-over arithmetic on the first post-bump probe.
fn check_schedule(records: &[SparseVector], bounds: &[usize], sessions: usize, base: ApssConfig) {
    let cfg_at = |p: usize| ApssConfig {
        parallelism: Some(p),
        ..base
    };
    let reference = run_streamed(records, bounds, sessions, cfg_at(1));
    for p in [2usize, 4] {
        let run = run_streamed(records, bounds, sessions, cfg_at(p));
        assert_eq!(run.results.len(), reference.results.len());
        for (i, (a, b)) in reference.results.iter().zip(&run.results).enumerate() {
            assert_same_outputs(a, b, true, &format!("probe {i}: 1 vs {p} threads"));
        }
        assert_eq!(run.hits_after_epoch, reference.hits_after_epoch);
    }

    let per_epoch = sessions * LADDER.len();
    let cfg1 = cfg_at(1);
    let mut cold_prev: Vec<ApssResult> = Vec::new();
    for (e, &hi) in bounds.iter().enumerate() {
        let prefix = &records[..hi];
        let cold_now: Vec<ApssResult> = LADDER.iter().map(|&t| cold(prefix, t, &cfg1)).collect();
        for rep in 0..sessions {
            for (ti, cold_full) in cold_now.iter().enumerate() {
                let streamed = &reference.results[e * per_epoch + rep * LADDER.len() + ti];
                assert_same_outputs(
                    streamed,
                    cold_full,
                    false,
                    &format!("epoch {e} rep {rep} t={}", LADDER[ti]),
                );
                if rep > 0 {
                    // A repeat sweep re-reads published memos: pure hits.
                    assert_eq!(streamed.stats.hashes_compared, 0, "epoch {e} rep {rep}");
                    assert_eq!(streamed.stats.cache_hits, streamed.stats.candidates);
                }
            }
        }
        // Exact carry-over arithmetic on the first probe of each epoch:
        // old pairs are answered entirely from carried memos, new pairs
        // pay exactly their cold cost.
        let first = &reference.results[e * per_epoch];
        if e == 0 {
            assert_eq!(first.stats.cache_hits, 0, "seed sweep starts cold");
            assert_eq!(
                first.stats.hashes_compared,
                cold_now[0].stats.hashes_compared
            );
        } else {
            assert_eq!(
                first.stats.hashes_compared,
                cold_now[0].stats.hashes_compared - cold_prev[0].stats.hashes_compared,
                "epoch {e}: new hashes must be exactly the new pairs' cold cost"
            );
            assert_eq!(
                first.stats.cache_hits, cold_prev[0].stats.candidates,
                "epoch {e}: every old pair must be a carried-memo hit"
            );
            // The carried-memo economy is visible in the cache's lifetime
            // stats: hits grow across every bump.
            assert!(
                reference.hits_after_epoch[e] > reference.hits_after_epoch[e - 1],
                "epoch {e}: carried memos produced no hits"
            );
        }
        cold_prev = cold_now;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline pin: random batch-split schedules × parallelism
    /// {1,2,4} × sessions {1,2}, exhaustive candidates.
    #[test]
    fn streamed_ingest_probe_equals_cold_batch_run(
        n in 36usize..60,
        seed in 1u64..400,
        cuts in proptest::collection::vec(0.1f64..0.9, 1..3),
        sessions in 1usize..3,
    ) {
        let records = dataset(n, seed);
        // Turn the cut fractions into a strictly increasing prefix-length
        // schedule: seed corpus ≥ 4 records, final bound = n.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&f| 4 + ((n - 5) as f64 * f) as usize)
            .collect();
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        check_schedule(&records, &bounds, sessions, ApssConfig::default());
    }
}

/// The same contract through the banded join: streamed probes over a
/// grown corpus are bit-identical to cold banded runs, and the whole
/// history — including work counters — is invariant across shard
/// policies and thread counts.
#[test]
fn banded_streamed_history_is_policy_invariant_and_matches_cold() {
    let records = dataset(110, 23);
    let bounds = [50usize, 80, 110];
    let base = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        ..ApssConfig::default()
    };
    // Full differential (incl. cold equivalence + carry-over arithmetic)
    // under the default policy…
    check_schedule(&records, &bounds, 2, base);
    // …and the whole streamed history pinned identical across policies.
    let reference = run_streamed(
        &records,
        &bounds,
        2,
        ApssConfig {
            parallelism: Some(1),
            ..base
        },
    );
    for policy in [ShardPolicy::never_split(), ShardPolicy::new(2, 64)] {
        for p in [1usize, 4] {
            let run = run_streamed(
                &records,
                &bounds,
                2,
                ApssConfig {
                    parallelism: Some(p),
                    shard: policy,
                    ..base
                },
            );
            for (i, (a, b)) in reference.results.iter().zip(&run.results).enumerate() {
                assert_same_outputs(a, b, true, &format!("probe {i}: {policy:?} @ {p} threads"));
            }
        }
    }
}

/// The cached-bucket probe path, explicitly: banded candidates over a
/// growing corpus are served incrementally from the epoch-persistent
/// bucket cache (`CacheMemoryStats::bucket_cache_bytes` is live and
/// counted in `total_bytes`), ingest reports an O(segments + tail)
/// snapshot-clone cost, and a capacity too small for the bucket cache
/// drops it without changing any probe output — including the outputs
/// of threshold watches riding the same epoch ladder, whose delta
/// concatenation must equal cold probes whether their delta candidates
/// come from the warm bucket cache or the cold fallback join.
#[test]
fn bucket_cache_accounting_and_capacity_drop() {
    use plasma_core::cache::CacheCapacity;
    use plasma_core::Session;

    let records = dataset(90, 31);
    let bounds = [30usize, 31, 60, 90];
    let cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        ..ApssConfig::default()
    };

    let mut cached =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    // bounded(0) cannot hold the bucket cache (or any memo): the dropped
    // cache must change work, never answers.
    let mut dropped =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg)
            .with_cache_capacity(CacheCapacity::bounded(0));

    // One watch per ladder threshold on each session: every epoch below
    // also checks that the watches' concatenated deltas reproduce the
    // cold pair lists, on both sides of the eviction divide.
    let watches: Vec<_> = [&cached, &dropped]
        .iter()
        .flat_map(|s| LADDER.iter().map(|&t| s.watch(t)))
        .collect();
    let mut merged: Vec<Vec<plasma_core::apss::SimilarPair>> = vec![Vec::new(); watches.len()];

    let mut prev = bounds[0];
    for (e, &hi) in bounds.iter().enumerate() {
        if e > 0 {
            let report = cached.ingest(&records[prev..hi]);
            dropped.ingest(&records[prev..hi]);
            assert!(report.snapshot_clone_bytes > 0, "epoch {e}");
            assert!(
                report.snapshot_clone_bytes
                    <= cached.sketches().expect("built").byte_size()
                        + cached.sketches().expect("built").sealed_segments()
                            * std::mem::size_of::<std::sync::Arc<[u64]>>(),
                "epoch {e}: clone cost bounded by tail + segment pointers"
            );
            prev = hi;
        }
        for (w, handle) in watches.iter().enumerate() {
            let delta = handle.poll().expect("one delta per adopted epoch");
            assert_eq!(delta.epoch, e as u64, "watch {w}");
            assert!(handle.poll().is_none(), "watch {w}: exactly one delta");
            merged[w].extend(delta.new_pairs);
            merged[w].sort_unstable_by_key(|p| (p.i, p.j));
        }
        for (ti, &t) in LADDER.iter().enumerate() {
            let warm = cached.probe(t);
            let cold_dropped = dropped.probe(t);
            let mut cold = Session::from_records(records[..hi].to_vec(), Similarity::Cosine, cfg);
            let cold_report = cold.probe(t);
            assert_eq!(warm.pairs, cold_report.pairs, "epoch {e} t={t}");
            assert_eq!(warm.candidates, cold_report.candidates, "epoch {e}");
            assert_eq!(warm.pairs, cold_dropped.pairs, "epoch {e} t={t} dropped");
            assert_eq!(warm.pruned, cold_dropped.pruned, "epoch {e}");
            // Both sessions' watches concatenate to the same cold truth,
            // eviction or not.
            assert_eq!(merged[ti], cold_report.pairs, "epoch {e} t={t} watch");
            assert_eq!(
                merged[LADDER.len() + ti],
                cold_report.pairs,
                "epoch {e} t={t} watch under bounded(0)"
            );
        }
        let stats = cached.shared_cache().expect("built").memory_stats();
        assert!(
            stats.bucket_cache_bytes > 0,
            "epoch {e}: banded probes must keep the bucket cache resident"
        );
        assert_eq!(
            cached.shared_cache().expect("built").total_bytes(),
            stats.sketch_bytes + stats.memo_bytes + stats.bucket_cache_bytes,
            "epoch {e}: bucket bytes must be accounted in the total"
        );
        assert_eq!(
            dropped
                .shared_cache()
                .expect("built")
                .memory_stats()
                .bucket_cache_bytes,
            0,
            "epoch {e}: a zero cap cannot hold the bucket cache"
        );
    }
}

/// The middle rung of the eviction ladder, explicitly: a byte cap
/// *between* "fits everything" and "fits nothing" triggers partial
/// coldest-bands-first eviction — the bucket cache stays resident under
/// its cap (warm bands survive memory pressure instead of the old
/// whole-cache drop), and every probe output stays bit-identical to the
/// cold reference while bands come and go.
#[test]
fn partial_eviction_ladder_rung_survives_memory_pressure() {
    use plasma_core::cache::CacheCapacity;
    use plasma_core::Session;

    // Many small clusters: the candidate pair set (not evictable — it is
    // the cache's canonical answer) stays small, so the cap pressure
    // lands on the per-band bucket maps partial eviction can actually
    // shed. The heavily-clustered `dataset()` corpus would be pair-set
    // dominated and bottom out on the whole-drop rung instead.
    let records = GaussianSpec {
        spread: 0.8,
        ..GaussianSpec::new("pressure", 90, 8, 30)
    }
    .generate(31)
    .records;
    let bounds = [30usize, 60, 90];
    let cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        ..ApssConfig::default()
    };

    // Measure the unbounded footprint first; the partial rung's cap must
    // sit strictly inside the ladder.
    let mut unbounded =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    let mut prev = bounds[0];
    for &hi in &bounds {
        if hi > prev {
            unbounded.ingest(&records[prev..hi]);
            prev = hi;
        }
        for &t in &LADDER {
            unbounded.probe(t);
        }
    }
    let full_bytes = unbounded
        .shared_cache()
        .expect("built")
        .memory_stats()
        .bucket_cache_bytes;
    assert!(full_bytes > 0);

    let cap = full_bytes * 3 / 4;
    let mut partial =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg)
            .with_cache_capacity(CacheCapacity::bounded(cap));
    let mut prev = bounds[0];
    for (e, &hi) in bounds.iter().enumerate() {
        if hi > prev {
            partial.ingest(&records[prev..hi]);
            prev = hi;
        }
        for &t in &LADDER {
            let warm = partial.probe(t);
            let mut cold = Session::from_records(records[..hi].to_vec(), Similarity::Cosine, cfg);
            let cold_report = cold.probe(t);
            assert_eq!(warm.pairs, cold_report.pairs, "epoch {e} t={t}");
            assert_eq!(warm.candidates, cold_report.candidates, "epoch {e}");
            assert_eq!(warm.pruned, cold_report.pruned, "epoch {e}");
        }
        let bytes = partial
            .shared_cache()
            .expect("built")
            .memory_stats()
            .bucket_cache_bytes;
        assert!(
            bytes <= cap,
            "epoch {e}: cap must be honored ({bytes} > {cap})"
        );
    }
    let bytes = partial
        .shared_cache()
        .expect("built")
        .memory_stats()
        .bucket_cache_bytes;
    assert!(
        bytes > 0,
        "partial eviction must keep the cache resident, not drop it whole"
    );
    assert!(
        bytes < full_bytes,
        "memory pressure must actually evict something ({bytes} vs {full_bytes})"
    );
}

/// Driver-level pin: `StreamingSession::probe` reports (the user-facing
/// surface) agree with a cold batch `Session` at every epoch, for both
/// forks of a two-session corpus.
#[test]
fn streaming_session_reports_match_cold_sessions_at_every_epoch() {
    use plasma_core::Session;
    let records = dataset(56, 77);
    let bounds = [24usize, 40, 56];
    let cfg = ApssConfig::default();
    let mut a =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    let mut b = a.fork();
    let mut prev = 0usize;
    for (e, &hi) in bounds.iter().enumerate() {
        if e > 0 {
            // Alternate which session ingests.
            let ingester = if e % 2 == 1 { &mut b } else { &mut a };
            ingester.ingest(&records[prev..hi]);
        }
        prev = hi;
        let prefix = records[..hi].to_vec();
        for (label, s) in [("a", &mut a), ("b", &mut b)] {
            for &t in &LADDER {
                let streamed = s.probe(t);
                let mut cold = Session::from_records(prefix.clone(), Similarity::Cosine, cfg);
                let cold_report = cold.probe(t);
                assert_eq!(streamed.pairs, cold_report.pairs, "epoch {e} {label} t={t}");
                assert_eq!(streamed.candidates, cold_report.candidates, "epoch {e}");
                assert_eq!(streamed.pruned, cold_report.pruned, "epoch {e}");
            }
        }
        if e > 0 {
            let stats = a.shared_cache().expect("built").memory_stats();
            assert!(stats.cache_hits > 0, "carried memos must score hits");
        }
    }
    assert_eq!(a.epoch(), 2);
    assert_eq!(b.len(), records.len());
}
