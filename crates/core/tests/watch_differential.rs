//! The watch-equivalence differential suite.
//!
//! Pins the continuous-probe contract end to end: a `watch(threshold)`
//! registered on a streaming corpus receives, per adopted epoch, a
//! [`WatchDelta`] such that
//!
//! * **concatenated deltas == cold probe at every epoch** — merging the
//!   deltas delivered up to epoch `e` reproduces a cold batch probe of
//!   the epoch-`e` corpus bit for bit: pair ids, similarity bits,
//!   estimate decision records, and canonical ascending `(i, j)` order;
//! * deltas are **disjoint across epochs** (a pair is delivered exactly
//!   once, at the epoch that created it) and each delta is internally
//!   sorted;
//! * the whole delta history — including work counters — is invariant
//!   across parallelism {1, 2, 4}, segment geometry {8, 512}, and shard
//!   policies, for any batch-split schedule;
//! * watches survive `CacheCapacity` bucket-cache eviction with
//!   unchanged outputs, and a late-registered watch's first delta equals
//!   the full cold probe at its registration epoch;
//! * the evaluation side is exactly as incremental as the carry-over
//!   arithmetic promises: an epoch's delta pays
//!   `cold(full).hashes − cold(old).hashes` hash comparisons, and a
//!   second watch at the same threshold rides the first one's published
//!   memos hit for hit.

use proptest::prelude::*;

use plasma_core::apss::{apss_with_sketches, build_sketches, ApssConfig, CandidateStrategy};
use plasma_core::cache::{CacheCapacity, SharedKnowledgeCache};
use plasma_core::streaming::StreamingSession;
use plasma_core::watch::WatchDelta;
use plasma_core::{ApssResult, ShardPolicy};
use plasma_data::datasets::gaussian::GaussianSpec;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_lsh::bayes::PairEstimate;
use plasma_lsh::family::LshFamily;
use plasma_lsh::sketch::Sketcher;

/// The thresholds every run watches simultaneously (high → low): each
/// must be exact independently, sharing one memo pool.
const WATCHED: [f64; 2] = [0.85, 0.65];

fn dataset(n: usize, seed: u64) -> Vec<SparseVector> {
    GaussianSpec {
        separation: 3.5,
        spread: 0.7,
        ..GaussianSpec::new("watch-diff", n, 6, 3)
    }
    .generate(seed)
    .records
}

/// One watched history: seed the corpus with `bounds[0]` records,
/// register one watch per `thresholds` entry, then ingest up to each
/// further bound. Returns each watch's drained deltas — registration
/// delta first, then one per epoch. `segment_records` pins a custom
/// sketch-store geometry by seeding the epoch-0 cache explicitly.
fn run_watched(
    records: &[SparseVector],
    bounds: &[usize],
    thresholds: &[f64],
    cfg: ApssConfig,
    segment_records: Option<usize>,
    capacity: CacheCapacity,
) -> Vec<Vec<WatchDelta>> {
    let seed = records[..bounds[0]].to_vec();
    let session = match segment_records {
        Some(g) => {
            // Geometry is a property of the sketch set, preserved by
            // every extend: seeding the cache with a custom-geometry
            // build pins it for the whole run.
            let sketches = Sketcher::new(
                LshFamily::for_measure(Similarity::Cosine),
                cfg.n_hashes,
                cfg.seed,
            )
            .with_parallelism(cfg.parallelism)
            .with_segment_records(g)
            .sketch_all(&seed);
            StreamingSession::from_records(seed, Similarity::Cosine, cfg).with_shared_cache(
                std::sync::Arc::new(SharedKnowledgeCache::with_capacity(sketches, capacity)),
            )
        }
        None => StreamingSession::from_records(seed, Similarity::Cosine, cfg)
            .with_cache_capacity(capacity),
    };
    let mut session = session
        .with_parallelism(cfg.parallelism)
        .with_shard_policy(cfg.shard);
    let handles: Vec<_> = thresholds.iter().map(|&t| session.watch(t)).collect();
    // Ingest through an alternating fork: watches belong to the corpus,
    // not the registering session.
    let mut fork = session.fork();
    let mut prev = bounds[0];
    for (k, &hi) in bounds[1..].iter().enumerate() {
        let ingester = if k % 2 == 1 { &mut fork } else { &mut session };
        let report = ingester.ingest(&records[prev..hi]);
        assert_eq!(report.epoch, (k + 1) as u64, "one bump per batch");
        prev = hi;
    }
    handles.iter().map(|h| h.drain()).collect()
}

/// Cold reference: fresh sketches over a prefix, cache-less evaluation.
fn cold(prefix: &[SparseVector], t: f64, cfg: &ApssConfig) -> ApssResult {
    let (sketches, _) = build_sketches(prefix, Similarity::Cosine, cfg);
    apss_with_sketches(prefix, Similarity::Cosine, &sketches, t, cfg)
}

/// Merged view of one watch's deltas: `(i, j, similarity)` pairs plus
/// the per-candidate estimates, both in canonical order.
type MergedDeltas = (Vec<(u32, u32, f64)>, Vec<(u32, u32, PairEstimate)>);

/// Merges the first `upto` deltas of one watch into (pairs, estimates),
/// asserting along the way that each delta is internally sorted and that
/// no pair or candidate appears in two deltas (disjointness) — so a
/// plain sort of the concatenation is a faithful merge.
fn merge_deltas(deltas: &[WatchDelta], upto: usize, label: &str) -> MergedDeltas {
    let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
    let mut estimates: Vec<(u32, u32, PairEstimate)> = Vec::new();
    for (e, delta) in deltas[..upto].iter().enumerate() {
        assert!(
            delta
                .new_pairs
                .windows(2)
                .all(|w| (w[0].i, w[0].j) < (w[1].i, w[1].j)),
            "{label}: delta {e} pairs must be strictly sorted by (i, j)"
        );
        assert!(
            delta
                .estimates
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "{label}: delta {e} estimates must be strictly sorted by (i, j)"
        );
        pairs.extend(delta.new_pairs.iter().map(|p| (p.i, p.j, p.similarity)));
        estimates.extend(delta.estimates.iter().cloned());
    }
    pairs.sort_unstable_by_key(|&(i, j, _)| (i, j));
    estimates.sort_unstable_by_key(|&(i, j, _)| (i, j));
    assert!(
        pairs
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
        "{label}: deltas must be pair-disjoint across epochs"
    );
    assert!(
        estimates
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
        "{label}: deltas must be candidate-disjoint across epochs"
    );
    (pairs, estimates)
}

/// The headline equivalence: the merged deltas equal a cold probe bit
/// for bit — pairs, estimates, canonical order.
fn assert_merged_equals_cold(merged: &MergedDeltas, cold_full: &ApssResult, label: &str) {
    let (pairs, estimates) = merged;
    assert_eq!(pairs.len(), cold_full.pairs.len(), "{label}: pair count");
    for (x, y) in pairs.iter().zip(&cold_full.pairs) {
        assert_eq!((x.0, x.1), (y.i, y.j), "{label}: pair ids");
        assert_eq!(
            x.2.to_bits(),
            y.similarity.to_bits(),
            "{label}: similarity of ({}, {})",
            x.0,
            x.1
        );
    }
    assert_eq!(
        estimates.len(),
        cold_full.estimates.len(),
        "{label}: candidate count"
    );
    for (x, y) in estimates.iter().zip(&cold_full.estimates) {
        assert_eq!((x.0, x.1), (y.0, y.1), "{label}: estimate ids");
        assert_eq!(x.2.decision, y.2.decision, "{label}: decision");
        assert_eq!(x.2.matches, y.2.matches, "{label}: matches");
        assert_eq!(x.2.hashes, y.2.hashes, "{label}: hashes");
        assert_eq!(
            x.2.map_similarity.to_bits(),
            y.2.map_similarity.to_bits(),
            "{label}: MAP"
        );
        assert_eq!(x.2.variance.to_bits(), y.2.variance.to_bits(), "{label}");
    }
}

/// Two watched histories (e.g. different parallelism or geometry) must
/// be bit-identical delta for delta — including work counters, since
/// watch evaluations are serialized by ingest order.
fn assert_same_history(a: &[Vec<WatchDelta>], b: &[Vec<WatchDelta>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: watch count");
    for (w, (da, db)) in a.iter().zip(b).enumerate() {
        assert_eq!(da.len(), db.len(), "{label}: watch {w} delta count");
        for (e, (x, y)) in da.iter().zip(db).enumerate() {
            let at = format!("{label}: watch {w} epoch-delta {e}");
            assert_eq!(x.epoch, y.epoch, "{at}: epoch");
            assert_eq!(x.threshold.to_bits(), y.threshold.to_bits(), "{at}");
            assert_eq!(x.new_pairs.len(), y.new_pairs.len(), "{at}: pairs");
            for (p, q) in x.new_pairs.iter().zip(&y.new_pairs) {
                assert_eq!((p.i, p.j), (q.i, q.j), "{at}: pair ids");
                assert_eq!(p.similarity.to_bits(), q.similarity.to_bits(), "{at}");
            }
            assert_eq!(x.estimates.len(), y.estimates.len(), "{at}: estimates");
            for (p, q) in x.estimates.iter().zip(&y.estimates) {
                assert_eq!((p.0, p.1), (q.0, q.1), "{at}: estimate ids");
                assert_eq!(p.2.decision, q.2.decision, "{at}");
                assert_eq!(p.2.matches, q.2.matches, "{at}");
                assert_eq!(p.2.hashes, q.2.hashes, "{at}");
                assert_eq!(
                    p.2.map_similarity.to_bits(),
                    q.2.map_similarity.to_bits(),
                    "{at}"
                );
            }
            assert_eq!(x.work.candidates, y.work.candidates, "{at}");
            assert_eq!(x.work.pruned, y.work.pruned, "{at}");
            assert_eq!(x.work.accepted, y.work.accepted, "{at}");
            assert_eq!(x.work.exhausted, y.work.exhausted, "{at}");
            assert_eq!(x.work.hashes_compared, y.work.hashes_compared, "{at}");
            assert_eq!(x.work.cache_hits, y.work.cache_hits, "{at}");
        }
    }
}

/// The shared body: run the watched history at `parallelism = 1` as the
/// reference, re-run it at 2 and 4 threads pinning every delta including
/// work counters, then pin each watch's merged deltas against cold
/// probes at every epoch.
fn check_schedule(records: &[SparseVector], bounds: &[usize], base: ApssConfig) {
    let cfg_at = |p: usize| ApssConfig {
        parallelism: Some(p),
        ..base
    };
    let reference = run_watched(
        records,
        bounds,
        &WATCHED,
        cfg_at(1),
        None,
        CacheCapacity::unbounded(),
    );
    for p in [2usize, 4] {
        let run = run_watched(
            records,
            bounds,
            &WATCHED,
            cfg_at(p),
            None,
            CacheCapacity::unbounded(),
        );
        assert_same_history(&reference, &run, &format!("1 vs {p} threads"));
    }

    let cfg1 = cfg_at(1);
    for (w, &t) in WATCHED.iter().enumerate() {
        let deltas = &reference[w];
        assert_eq!(deltas.len(), bounds.len(), "one delta per epoch");
        for (e, (delta, &hi)) in deltas.iter().zip(bounds).enumerate() {
            assert_eq!(delta.epoch, e as u64, "t={t}: delta/epoch alignment");
            assert_eq!(delta.threshold.to_bits(), t.to_bits());
            // Every delivered pair and candidate touches this epoch's
            // batch — nothing old is ever re-delivered.
            if e > 0 {
                let from = bounds[e - 1] as u32;
                assert!(delta.new_pairs.iter().all(|p| p.j >= from), "t={t} e={e}");
                assert!(delta.estimates.iter().all(|c| c.1 >= from), "t={t} e={e}");
            }
            let merged = merge_deltas(deltas, e + 1, &format!("t={t} epoch {e}"));
            let cold_full = cold(&records[..hi], t, &cfg1);
            assert_merged_equals_cold(&merged, &cold_full, &format!("t={t} epoch {e}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline pin: random batch-split schedules × parallelism
    /// {1, 2, 4} × two simultaneous watches, exhaustive candidates.
    #[test]
    fn watch_deltas_concatenate_to_cold_probes(
        n in 36usize..60,
        seed in 1u64..400,
        cuts in proptest::collection::vec(0.1f64..0.9, 1..3),
    ) {
        let records = dataset(n, seed);
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&f| 4 + ((n - 5) as f64 * f) as usize)
            .collect();
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        check_schedule(&records, &bounds, ApssConfig::default());
    }
}

/// The same contract through the banded join, with the delta candidates
/// served from the epoch-persistent bucket cache: the full differential
/// under the default policy, then the whole delta history pinned
/// bit-identical across shard policies × parallelism × segment geometry
/// {8, 512}.
#[test]
fn banded_watch_history_is_policy_and_geometry_invariant() {
    let records = dataset(110, 23);
    let bounds = [50usize, 80, 110];
    let base = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        ..ApssConfig::default()
    };
    check_schedule(&records, &bounds, base);
    let reference = run_watched(
        &records,
        &bounds,
        &WATCHED,
        ApssConfig {
            parallelism: Some(1),
            ..base
        },
        None,
        CacheCapacity::unbounded(),
    );
    for policy in [ShardPolicy::never_split(), ShardPolicy::adaptive()] {
        for p in [1usize, 4] {
            for geometry in [None, Some(8), Some(512)] {
                let run = run_watched(
                    &records,
                    &bounds,
                    &WATCHED,
                    ApssConfig {
                        parallelism: Some(p),
                        shard: policy,
                        ..base
                    },
                    geometry,
                    CacheCapacity::unbounded(),
                );
                assert_same_history(
                    &reference,
                    &run,
                    &format!("{policy:?} @ {p} threads, segment_records {geometry:?}"),
                );
            }
        }
    }
}

/// Watches survive bucket-cache eviction unchanged: a `bounded(0)` cap
/// drops the bucket cache (and every memo) between epochs, forcing the
/// cold `banded_delta` path — outputs must still be bit-identical to the
/// unbounded run (work counters excluded: warmth is exactly what the cap
/// destroys).
#[test]
fn watch_deltas_survive_bucket_cache_eviction() {
    let records = dataset(90, 31);
    let bounds = [30usize, 31, 60, 90];
    let cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let unbounded = run_watched(
        &records,
        &bounds,
        &WATCHED,
        cfg,
        None,
        CacheCapacity::unbounded(),
    );
    let evicted = run_watched(
        &records,
        &bounds,
        &WATCHED,
        cfg,
        None,
        CacheCapacity::bounded(0),
    );
    for (w, &t) in WATCHED.iter().enumerate() {
        assert_eq!(evicted[w].len(), bounds.len());
        for e in 0..bounds.len() {
            let label = format!("evicted t={t} epoch {e}");
            let merged = merge_deltas(&evicted[w], e + 1, &label);
            let cold_full = cold(&records[..bounds[e]], t, &cfg);
            assert_merged_equals_cold(&merged, &cold_full, &label);
            // Output halves agree delta-for-delta with the unbounded run.
            let (a, b) = (&unbounded[w][e], &evicted[w][e]);
            assert_eq!(a.new_pairs.len(), b.new_pairs.len(), "{label}");
            for (x, y) in a.new_pairs.iter().zip(&b.new_pairs) {
                assert_eq!((x.i, x.j), (y.i, y.j), "{label}");
                assert_eq!(x.similarity.to_bits(), y.similarity.to_bits(), "{label}");
            }
            assert_eq!(a.estimates.len(), b.estimates.len(), "{label}");
        }
    }
}

/// A watch registered mid-history starts from truth: its first delta is
/// the full cold probe at its registration epoch, and from then on it
/// receives exactly what an epoch-0 watch at the same threshold does.
#[test]
fn late_registration_first_delta_is_the_full_cold_probe() {
    let records = dataset(72, 91);
    let bounds = [24usize, 48, 72];
    let cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let t = WATCHED[0];
    let mut session =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    let early = session.watch(t);
    session.ingest(&records[bounds[0]..bounds[1]]);
    let late = session.watch(t);
    session.ingest(&records[bounds[1]..bounds[2]]);

    let late_deltas = late.drain();
    assert_eq!(late_deltas.len(), 2, "registration + one epoch");
    assert_eq!(late_deltas[0].epoch, 1, "registered at epoch 1");
    let first = merge_deltas(&late_deltas, 1, "late registration");
    assert_merged_equals_cold(
        &first,
        &cold(&records[..bounds[1]], t, &cfg),
        "late @ epoch 1",
    );
    // Thereafter the late watch sees exactly what the early one sees.
    let early_deltas = early.drain();
    assert_eq!(early_deltas.len(), 3);
    let (a, b) = (&early_deltas[2], &late_deltas[1]);
    assert_eq!(a.epoch, b.epoch);
    assert_eq!(a.new_pairs.len(), b.new_pairs.len());
    for (x, y) in a.new_pairs.iter().zip(&b.new_pairs) {
        assert_eq!((x.i, x.j), (y.i, y.j));
        assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
    }
    // And both concatenate to the same cold truth at the final epoch.
    let me = merge_deltas(&early_deltas, 3, "early");
    let ml = merge_deltas(&late_deltas, 2, "late");
    let final_cold = cold(&records, t, &cfg);
    assert_merged_equals_cold(&me, &final_cold, "early @ final epoch");
    assert_merged_equals_cold(&ml, &final_cold, "late @ final epoch");
}

/// Empty batches are invisible to watches: no delta, no epoch bump. And
/// the degenerate thresholds stay exact at every epoch — 0.0 delivers
/// every non-pruned pair, 1.0 almost none, both matching cold probes.
#[test]
fn empty_batches_and_degenerate_thresholds() {
    let records = dataset(56, 77);
    let bounds = [24usize, 40, 56];
    let cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let mut session =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    let lo = session.watch(0.0);
    let hi = session.watch(1.0);
    assert_eq!(session.watch_count(), 2);
    assert_eq!((lo.pending(), hi.pending()), (1, 1), "registration delta");

    let before = session.epoch();
    session.ingest(&[]);
    assert_eq!(session.epoch(), before, "empty batch: no bump");
    assert_eq!(
        (lo.pending(), hi.pending()),
        (1, 1),
        "empty batch: no delta"
    );

    let mut prev = bounds[0];
    for &b in &bounds[1..] {
        session.ingest(&records[prev..b]);
        prev = b;
    }
    for (handle, t) in [(lo, 0.0f64), (hi, 1.0)] {
        let deltas = handle.drain();
        assert_eq!(deltas.len(), bounds.len());
        for (e, &b) in bounds.iter().enumerate() {
            let label = format!("t={t} epoch {e}");
            let merged = merge_deltas(&deltas, e + 1, &label);
            assert_merged_equals_cold(&merged, &cold(&records[..b], t, &cfg), &label);
        }
    }
}

/// The evaluation side is exactly as incremental as promised: a fresh
/// watch's epoch delta pays `cold(full) − cold(old)` hash comparisons
/// with zero hits (every candidate is new), and a second watch at the
/// same threshold is answered entirely from the first one's published
/// memos.
#[test]
fn watch_work_counters_obey_the_carry_over_arithmetic() {
    let records = dataset(60, 11);
    let bounds = [28usize, 60];
    let cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let t = WATCHED[0];
    let mut session =
        StreamingSession::from_records(records[..bounds[0]].to_vec(), Similarity::Cosine, cfg);
    let first = session.watch(t);
    let second = session.watch(t);
    session.ingest(&records[bounds[0]..]);

    let cold_old = cold(&records[..bounds[0]], t, &cfg);
    let cold_full = cold(&records, t, &cfg);

    let f = first.drain();
    // Registration on a cold corpus is a cold probe, work included.
    assert_eq!(f[0].work.hashes_compared, cold_old.stats.hashes_compared);
    assert_eq!(f[0].work.cache_hits, 0);
    // The epoch delta evaluates only new candidates, all fresh: its hash
    // bill is exactly the cold difference.
    assert_eq!(
        f[1].work.hashes_compared,
        cold_full.stats.hashes_compared - cold_old.stats.hashes_compared,
        "delta must pay exactly the new pairs' cold cost"
    );
    assert_eq!(f[1].work.cache_hits, 0, "no new candidate has a memo yet");
    assert_eq!(
        f[1].work.candidates,
        cold_full.stats.candidates - cold_old.stats.candidates
    );

    let s = second.drain();
    // The second watch re-reads what the first published: pure hits.
    assert_eq!(s[0].work.hashes_compared, 0);
    assert_eq!(s[0].work.cache_hits, s[0].work.candidates);
    assert_eq!(s[1].work.hashes_compared, 0);
    assert_eq!(s[1].work.cache_hits, s[1].work.candidates);
}

/// Dropping a handle cancels its watch: the registry forgets it at the
/// next ingest, and surviving watches are unaffected.
#[test]
fn dropped_handles_cancel_without_disturbing_survivors() {
    let records = dataset(48, 5);
    let cfg = ApssConfig {
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let mut session =
        StreamingSession::from_records(records[..24].to_vec(), Similarity::Cosine, cfg);
    let keep = session.watch(WATCHED[0]);
    let cancel = session.watch(WATCHED[1]);
    assert_eq!(session.watch_count(), 2);
    drop(cancel);
    assert_eq!(session.watch_count(), 1, "drop cancels immediately");
    session.ingest(&records[24..]);
    assert_eq!(keep.pending(), 2, "survivor still gets its delta");
    let merged = merge_deltas(&keep.drain(), 2, "survivor");
    assert_merged_equals_cold(&merged, &cold(&records, WATCHED[0], &cfg), "survivor");
}

/// Satellite pin: K watches on one corpus are a **single evaluation
/// pass** per epoch — the fresh-candidate slice is generated once and
/// shared, however many watches consume it, and the deltas each watch
/// receives are still bit-identical to cold probes.
#[test]
fn k_watches_share_one_candidate_generation_per_epoch() {
    let records = dataset(60, 19);
    let cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        parallelism: Some(1),
        ..ApssConfig::default()
    };
    let mut session =
        StreamingSession::from_records(records[..30].to_vec(), Similarity::Cosine, cfg);
    let thresholds = [0.9, 0.8, 0.7, 0.6, 0.5];
    let watches: Vec<_> = thresholds.iter().map(|&t| session.watch(t)).collect();
    let cache = session.shared_cache().expect("built by registration");
    assert_eq!(cache.delta_builds(), 0, "registrations are full probes");

    session.ingest(&records[30..45]);
    assert_eq!(
        cache.delta_builds(),
        1,
        "epoch 1: one candidate generation feeds all {} watches",
        watches.len()
    );
    session.ingest(&records[45..60]);
    assert_eq!(
        cache.delta_builds(),
        2,
        "epoch 2: still one generation per epoch"
    );
    assert_eq!(
        cache.bucket_build_records(),
        60,
        "each record bucketed exactly once, however many watches"
    );

    // The shared slice changes no output: every watch's merged history
    // still equals a cold probe of the full corpus at its threshold.
    for (t, handle) in thresholds.iter().zip(&watches) {
        let merged = merge_deltas(&handle.drain(), 3, &format!("k-watch t={t}"));
        assert_merged_equals_cold(
            &merged,
            &cold(&records, *t, &cfg),
            &format!("k-watch t={t}"),
        );
    }
}

/// Satellite pin: batch (non-streaming) sessions sharing a cache ride
/// the same epoch-persistent bucket cache — a second identical-shape
/// probe builds zero buckets, from this or any other session, and the
/// counter is visible in `memory_stats`.
#[test]
fn batch_sessions_build_buckets_once_per_corpus() {
    use plasma_core::Session;

    let records = dataset(64, 3);
    let cfg = ApssConfig {
        candidates: CandidateStrategy::Banded { bands: 8, width: 8 },
        ..ApssConfig::default()
    };
    let mut first = Session::from_records(records.clone(), Similarity::Cosine, cfg);
    first.probe(0.8);
    let cache = first.shared_cache().expect("built by first probe");
    assert_eq!(
        cache.bucket_build_records(),
        records.len() as u64,
        "first banded probe buckets the whole corpus"
    );
    first.probe(0.6);
    assert_eq!(
        cache.bucket_build_records(),
        records.len() as u64,
        "second identical-shape probe builds zero buckets"
    );
    let mut second = Session::from_records(records.clone(), Similarity::Cosine, cfg)
        .with_shared_cache(cache.clone());
    second.probe(0.7);
    assert_eq!(
        cache.bucket_build_records(),
        records.len() as u64,
        "a sibling session reuses the same buckets"
    );
    assert_eq!(
        cache.memory_stats().bucket_build_records,
        records.len() as u64
    );
    // An exhaustive probe never touches the bucket cache.
    let mut exhaustive =
        Session::from_records(records.clone(), Similarity::Cosine, ApssConfig::default());
    exhaustive.probe(0.8);
    exhaustive.probe(0.6);
    assert_eq!(
        exhaustive
            .shared_cache()
            .expect("built")
            .bucket_build_records(),
        0,
        "exhaustive probes never bucket"
    );
}
