//! Named dataset catalog mirroring the paper's evaluation tables.
//!
//! Each entry maps a dataset named in the dissertation (Tables 2.1, 3.1,
//! 4.3, 4.4, 4.6, 5.1) to a seeded synthetic generator with matching shape
//! (rows × dims × classes) and character (sparsity, duplicates, imbalance).
//!
//! Generators accept a `scale ∈ (0, 1]` multiplier on the row count so the
//! full reproduction can run on one core in minutes; `paper_n` records the
//! original size for the table printouts. Scaling down row counts shifts
//! absolute numbers but preserves every *shape* claim (who wins, where the
//! knees fall), which is what EXPERIMENTS.md compares.

use crate::datasets::corpus::CorpusSpec;
use crate::datasets::gaussian::GaussianSpec;
use crate::datasets::social::SocialSpec;
use crate::datasets::transactions::{CategoricalSpec, QuestSpec, Transactions};
use crate::datasets::webgraph::WebGraphSpec;
use crate::datasets::Dataset;
use crate::vector::SparseVector;

/// Applies a scale factor with a floor so tiny scales stay meaningful.
pub fn scaled(paper_n: usize, scale: f64) -> usize {
    ((paper_n as f64 * scale).round() as usize).clamp(64.min(paper_n), paper_n)
}

// ---------------------------------------------------------------------
// Chapter 2 (Table 2.1) + §2.3 datasets
// ---------------------------------------------------------------------

/// The 50-record toy dataset of Fig. 2.2 (5 planted clusters; parameters
/// chosen so the similarity graph is fragmented at t₁ = 0.8, shows clear
/// community structure at 0.5, and drowns in noise edges at 0.2 — the
/// figure's three columns).
pub fn toy_d1(seed: u64) -> Dataset {
    GaussianSpec {
        separation: 1.5,
        spread: 1.0,
        ..GaussianSpec::new("d1", 50, 6, 5)
    }
    .generate(seed)
}

/// UCI `wine`: 178 wines × 13 chemical attributes, 3 classes.
pub fn wine_like(seed: u64) -> Dataset {
    GaussianSpec {
        separation: 2.5,
        spread: 1.0,
        ..GaussianSpec::new("wine-like", 178, 13, 3)
    }
    .generate(seed)
}

/// UCI `credit` (Table 2.1): 690 × 39 one-hot-ish, moderate clusters.
pub fn credit_like(seed: u64) -> Dataset {
    GaussianSpec {
        separation: 1.8,
        spread: 1.0,
        ..GaussianSpec::new("credit-like", 690, 39, 2)
    }
    .generate(seed)
}

/// Twitter follower vectors (146,170 users in the paper; scaled).
pub fn twitter_like(scale: f64, seed: u64) -> Dataset {
    let n = scaled(146_170, scale / 60.0); // large graph: heavy extra scaling
    SocialSpec {
        communities: 25,
        clone_rate: 0.25,
        ..SocialSpec::new("twitter-like", n.max(800), 8)
    }
    .generate(seed)
}

/// RCV1 Reuters articles (804,414 in the paper; scaled).
pub fn rcv1_like(scale: f64, seed: u64) -> Dataset {
    let n = scaled(804_414, scale / 300.0);
    CorpusSpec {
        near_dup_rate: 0.04,
        ..CorpusSpec::new("rcv1-like", n.max(1_000), 8_000, 12)
    }
    .generate(seed)
}

/// Four sketch-cost datasets of Fig. 2.9, in paper order.
pub fn fig2_9_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    let mk_corpus = |name: &'static str, n: usize, vocab: usize, len: usize| CorpusSpec {
        doc_len_mean: len,
        ..CorpusSpec::new(name, n, vocab, 10)
    };
    vec![
        mk_corpus("rcv1-3k-like", scaled(3_000, scale.max(0.34)), 4_000, 70).generate(seed),
        SocialSpec {
            clone_rate: 0.25,
            ..SocialSpec::new(
                "twitterlinks-like",
                scaled(146_170, scale / 60.0).max(800),
                10,
            )
        }
        .generate(seed + 1),
        mk_corpus(
            "wikiwords100k-like",
            scaled(100_528, scale / 60.0).max(900),
            6_000,
            120,
        )
        .generate(seed + 2),
        mk_corpus(
            "wikilinks-like",
            scaled(1_815_914, scale / 600.0).max(1_200),
            10_000,
            24,
        )
        .generate(seed + 3),
    ]
}

// ---------------------------------------------------------------------
// Chapter 3 (Table 3.1): 11 UCI-like numeric tables
// ---------------------------------------------------------------------

/// One row of Table 3.1 plus its generator parameters.
pub struct GrowthEntry {
    /// Paper dataset name.
    pub name: &'static str,
    /// Attribute count in the paper.
    pub attributes: usize,
    /// Row count in the paper (after its own 8000-row subsampling).
    pub paper_n: usize,
    /// Generator spec.
    spec: GaussianSpec,
}

impl GrowthEntry {
    /// Generates the dataset at the given scale.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        let mut spec = self.spec.clone();
        spec.n = scaled(self.paper_n, scale);
        spec.generate(seed)
    }
}

/// The 11 datasets of Table 3.1 with shapes and quirks from the paper
/// (Spambase carries the duplicate injection the paper blames for its
/// outlier error; class counts follow the real UCI sources).
pub fn growth_catalog() -> Vec<GrowthEntry> {
    fn spec(
        name: &'static str,
        n: usize,
        d: usize,
        k: usize,
        sep: f64,
        dup: f64,
        imb: f64,
    ) -> GaussianSpec {
        GaussianSpec {
            separation: sep,
            spread: 1.0,
            duplicate_rate: dup,
            imbalance: imb,
            ..GaussianSpec::new(name, n, d, k)
        }
    }
    vec![
        GrowthEntry {
            name: "abalone",
            attributes: 8,
            paper_n: 4177,
            spec: spec("abalone-like", 4177, 8, 3, 1.2, 0.0, 0.3),
        },
        GrowthEntry {
            name: "adult",
            attributes: 5,
            paper_n: 8000,
            spec: spec("adult-like", 8000, 5, 2, 1.5, 0.02, 0.6),
        },
        GrowthEntry {
            name: "image-segmentation",
            attributes: 18,
            paper_n: 2100,
            spec: spec("image-seg-like", 2100, 18, 7, 3.0, 0.0, 0.0),
        },
        GrowthEntry {
            name: "letter-recognition",
            attributes: 16,
            paper_n: 8000,
            spec: spec("letter-like", 8000, 16, 26, 2.2, 0.0, 0.0),
        },
        GrowthEntry {
            name: "mushroom",
            attributes: 21,
            paper_n: 8000,
            spec: spec("mushroom-like", 8000, 21, 2, 2.8, 0.01, 0.1),
        },
        GrowthEntry {
            name: "online-news",
            attributes: 57,
            paper_n: 8000,
            spec: spec("news-like", 8000, 57, 5, 1.4, 0.0, 0.5),
        },
        GrowthEntry {
            name: "spambase",
            attributes: 57,
            paper_n: 4601,
            spec: spec("spambase-like", 4601, 57, 2, 1.6, 0.08, 0.4),
        },
        GrowthEntry {
            name: "statlog",
            attributes: 36,
            paper_n: 4435,
            spec: spec("statlog-like", 4435, 36, 6, 2.4, 0.0, 0.2),
        },
        GrowthEntry {
            name: "waveform-v1",
            attributes: 21,
            paper_n: 5000,
            spec: spec("waveform-like", 5000, 21, 3, 1.8, 0.0, 0.0),
        },
        GrowthEntry {
            name: "wine-quality-red",
            attributes: 11,
            paper_n: 1599,
            spec: spec("wine-red-like", 1599, 11, 6, 1.3, 0.01, 0.5),
        },
        GrowthEntry {
            name: "wine-quality-white",
            attributes: 11,
            paper_n: 4898,
            spec: spec("wine-white-like", 4898, 11, 7, 1.3, 0.01, 0.5),
        },
        GrowthEntry {
            name: "yeast",
            attributes: 8,
            paper_n: 1484,
            spec: spec("yeast-like", 1484, 8, 10, 1.7, 0.0, 0.7),
        },
    ]
}

// ---------------------------------------------------------------------
// Chapter 4: web graphs (Table 4.3), transactional (Table 4.4),
// similarity-graph sources (Table 4.6)
// ---------------------------------------------------------------------

/// One web-crawl stand-in from Table 4.3.
pub struct WebEntry {
    /// Paper dataset name.
    pub name: &'static str,
    /// Vertex count in the paper.
    pub paper_vertices: u64,
    /// Edge count in the paper.
    pub paper_edges: u64,
    /// Generator.
    pub spec: WebGraphSpec,
}

/// The five LAW crawls of Table 4.3, scaled by relative size.
pub fn web_catalog(scale: f64) -> Vec<WebEntry> {
    let base = (10_000.0 * scale.max(0.08)) as usize;
    let mk = |name: &'static str, pv: u64, pe: u64, rel: f64, deg: usize| WebEntry {
        name,
        paper_vertices: pv,
        paper_edges: pe,
        spec: WebGraphSpec::new(name, ((base as f64 * rel) as usize).max(600), deg),
    };
    vec![
        mk("it2004-like", 41_291_594, 1_150_725_436, 0.8, 26),
        mk("arabic2005-like", 22_744_080, 639_999_458, 0.5, 26),
        mk("eu2005-like", 862_664, 19_235_140, 0.25, 20),
        mk("sk2005-like", 50_636_154, 1_949_412_601, 1.0, 36),
        mk("uk2006-like", 77_741_046, 2_965_043_000, 1.2, 36),
    ]
}

/// One transactional stand-in from Table 4.4.
pub struct TxEntry {
    /// Paper dataset name.
    pub name: &'static str,
    /// Density tag the paper assigns ("sparse" / "moderate" / "dense").
    pub density: &'static str,
    /// Paper transaction count.
    pub paper_n: usize,
    /// Generator (closure so Quest and Categorical coexist).
    gen: TxGen,
}

enum TxGen {
    Quest(QuestSpec),
    Categorical(CategoricalSpec),
}

impl TxEntry {
    /// Generates the transactions (labels dropped for unlabeled families).
    pub fn generate(&self, scale: f64, seed: u64) -> Transactions {
        self.generate_labeled(scale, seed).0
    }

    /// Generates transactions plus class labels (empty when unlabeled).
    pub fn generate_labeled(&self, scale: f64, seed: u64) -> (Transactions, Vec<u32>) {
        match &self.gen {
            TxGen::Quest(q) => {
                let mut q = q.clone();
                q.transactions = scaled(self.paper_n, scale);
                (q.generate(seed), Vec::new())
            }
            TxGen::Categorical(c) => {
                let mut c = c.clone();
                c.rows = scaled(self.paper_n, scale);
                c.generate(seed)
            }
        }
    }

    /// True when the generator plants class labels (usable for Fig. 4.9).
    pub fn labeled(&self) -> bool {
        matches!(self.gen, TxGen::Categorical(_))
    }
}

/// The ten transactional datasets of Table 4.4.
pub fn tx_catalog() -> Vec<TxEntry> {
    vec![
        TxEntry {
            name: "accidents",
            density: "sparse",
            paper_n: 340_183,
            gen: TxGen::Quest(QuestSpec {
                pattern_len: 10,
                patterns_per_tx: 4,
                ..QuestSpec::new("accidents-like", 340_183, 460)
            }),
        },
        TxEntry {
            name: "adult",
            density: "moderate",
            paper_n: 48_842,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 8,
                classes: 2,
                coherence: 0.65,
                ..CategoricalSpec::new("adult-like", 48_842, 14)
            }),
        },
        TxEntry {
            name: "anneal",
            density: "moderate",
            paper_n: 898,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 5,
                classes: 5,
                coherence: 0.75,
                ..CategoricalSpec::new("anneal-like", 898, 38)
            }),
        },
        TxEntry {
            name: "breast",
            density: "dense",
            paper_n: 699,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 10,
                classes: 2,
                coherence: 0.8,
                ..CategoricalSpec::new("breast-like", 699, 9)
            }),
        },
        TxEntry {
            name: "mushroom",
            density: "dense",
            paper_n: 8124,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 6,
                classes: 2,
                coherence: 0.85,
                ..CategoricalSpec::new("mushroom-like", 8124, 21)
            }),
        },
        TxEntry {
            name: "kosarak",
            density: "sparse",
            paper_n: 990_002,
            gen: TxGen::Quest(QuestSpec {
                pattern_len: 5,
                patterns_per_tx: 2,
                noise_items: 3,
                ..QuestSpec::new("kosarak-like", 990_002, 2_000)
            }),
        },
        TxEntry {
            name: "iris",
            density: "dense",
            paper_n: 150,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 4,
                classes: 3,
                coherence: 0.85,
                ..CategoricalSpec::new("iris-like", 150, 4)
            }),
        },
        TxEntry {
            name: "pageblocks",
            density: "moderate",
            paper_n: 5473,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 6,
                classes: 5,
                coherence: 0.9,
                ..CategoricalSpec::new("pageblocks-like", 5473, 10)
            }),
        },
        TxEntry {
            name: "twitter-wcs",
            density: "sparse",
            paper_n: 1264,
            gen: TxGen::Quest(QuestSpec {
                pattern_len: 4,
                patterns_per_tx: 2,
                noise_items: 4,
                ..QuestSpec::new("twitter-wcs-like", 1264, 1_200)
            }),
        },
        TxEntry {
            name: "tictactoe",
            density: "moderate",
            paper_n: 958,
            gen: TxGen::Categorical(CategoricalSpec {
                values_per_attr: 3,
                classes: 2,
                coherence: 0.6,
                ..CategoricalSpec::new("tictactoe-like", 958, 9)
            }),
        },
    ]
}

/// The six similarity-graph source datasets of Table 4.6 (for Fig. 4.14).
pub fn compression_catalog(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        SocialSpec {
            clone_rate: 0.3,
            ..SocialSpec::new(
                "twitterlinks-like",
                scaled(146_170, scale / 60.0).max(700),
                10,
            )
        }
        .generate(seed),
        CorpusSpec {
            doc_len_mean: 90,
            near_dup_rate: 0.05,
            ..CorpusSpec::new(
                "wikiwords200-like",
                scaled(494_244, scale / 250.0).max(800),
                6_000,
                10,
            )
        }
        .generate(seed + 1),
        CorpusSpec {
            doc_len_mean: 160,
            near_dup_rate: 0.05,
            ..CorpusSpec::new(
                "wikiwords500-like",
                scaled(100_528, scale / 60.0).max(700),
                6_000,
                10,
            )
        }
        .generate(seed + 2),
        SocialSpec {
            weighted: false,
            clone_rate: 0.2,
            ..SocialSpec::new("orkut-like", scaled(3_072_626, scale / 1500.0).max(900), 8)
        }
        .generate(seed + 3),
        CorpusSpec {
            near_dup_rate: 0.04,
            ..CorpusSpec::new(
                "rcv1-like",
                scaled(804_414, scale / 400.0).max(800),
                5_000,
                12,
            )
        }
        .generate(seed + 4),
        CorpusSpec {
            doc_len_mean: 24,
            near_dup_rate: 0.02,
            ..CorpusSpec::new(
                "wikilinks-like",
                scaled(1_815_914, scale / 900.0).max(900),
                8_000,
                14,
            )
        }
        .generate(seed + 5),
    ]
}

// ---------------------------------------------------------------------
// Chapter 5 (Table 5.1): medium-dimensional cluster-viz datasets
// ---------------------------------------------------------------------

/// One parallel-coordinates dataset: raw rows, labels, display cluster
/// count from the corresponding paper figure.
pub struct ParcoordsEntry {
    /// Paper dataset name.
    pub name: &'static str,
    /// Rows in the paper.
    pub paper_n: usize,
    /// Attribute count in the paper.
    pub attributes: usize,
    /// Cluster count used in the paper's figure.
    pub figure_clusters: usize,
    spec: GaussianSpec,
}

impl ParcoordsEntry {
    /// Generates raw (z-normed) dense rows plus labels.
    pub fn generate_rows(&self, seed: u64) -> (Vec<Vec<f64>>, Vec<u32>) {
        self.spec.generate_rows(seed)
    }
}

/// The seven datasets of Figs. 5.4–5.10 / Table 5.1.
pub fn parcoords_catalog() -> Vec<ParcoordsEntry> {
    fn entry(name: &'static str, n: usize, d: usize, figk: usize, sep: f64) -> ParcoordsEntry {
        ParcoordsEntry {
            name,
            paper_n: n,
            attributes: d,
            figure_clusters: figk,
            spec: GaussianSpec {
                separation: sep,
                spread: 1.0,
                ..GaussianSpec::new(name, n, d, figk)
            },
        }
    }
    vec![
        entry("forestfires", 517, 13, 6, 2.0),
        entry("water-treatment", 527, 38, 3, 2.5),
        entry("wdbc", 569, 30, 4, 2.2),
        entry("parkinsons", 195, 22, 4, 2.0),
        entry("pima-indians-diabetes", 768, 8, 10, 1.6),
        entry("wine", 178, 13, 4, 2.5),
        entry("eighthr", 2534, 72, 2, 1.8),
    ]
}

/// LFR-style vectors for the §2.3.4 interaction experiment: spectral-like
/// embedding of a planted-partition graph, built directly as separated
/// Gaussian blobs in k dimensions (the construction's end state).
pub fn lfr_embedding(n: usize, k: usize, seed: u64) -> Dataset {
    GaussianSpec {
        separation: 5.0,
        spread: 0.8,
        ..GaussianSpec::new("lfr-embedding", n, k, k)
    }
    .generate(seed)
}

/// Converts any dataset's records into transactions over discretized
/// dimensions (used to feed similarity graphs to LAM).
pub fn records_as_sets(records: &[SparseVector]) -> Transactions {
    records.iter().map(|r| r.dims().to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor_and_cap() {
        assert_eq!(scaled(8000, 1.0), 8000);
        assert_eq!(scaled(8000, 0.5), 4000);
        assert!(scaled(8000, 0.0001) >= 64);
        assert_eq!(scaled(30, 0.001), 30); // floor capped at paper_n
    }

    #[test]
    fn wine_matches_paper_shape() {
        let ds = wine_like(1);
        assert_eq!(ds.len(), 178);
        assert_eq!(ds.dim, 13);
        assert_eq!(ds.num_classes(), Some(3));
    }

    #[test]
    fn growth_catalog_has_eleven_plus_one() {
        // Table 3.1 lists 12 rows (11 datasets + adult variant); we keep 12.
        let cat = growth_catalog();
        assert_eq!(cat.len(), 12);
        let ds = cat[2].generate(0.1, 3);
        assert_eq!(ds.dim, 18);
        assert!(ds.len() >= 64);
    }

    #[test]
    fn tx_catalog_matches_table_4_4() {
        let cat = tx_catalog();
        assert_eq!(cat.len(), 10);
        let (txs, labels) = cat[4].generate_labeled(0.05, 1); // mushroom-like
        assert!(!txs.is_empty());
        assert_eq!(txs.len(), labels.len());
        assert!(cat[4].labeled());
        assert!(!cat[0].labeled()); // accidents (quest) unlabeled
    }

    #[test]
    fn web_catalog_five_entries() {
        let cat = web_catalog(0.05);
        assert_eq!(cat.len(), 5);
        let adj = cat[2].spec.generate(1);
        assert!(adj.len() >= 400);
    }

    #[test]
    fn parcoords_catalog_matches_figures() {
        let cat = parcoords_catalog();
        assert_eq!(cat.len(), 7);
        let (rows, labels) = cat[5].generate_rows(2); // wine
        assert_eq!(rows.len(), 178);
        assert_eq!(labels.len(), 178);
        assert_eq!(rows[0].len(), 13);
    }

    #[test]
    fn compression_catalog_six_datasets() {
        let sets = compression_catalog(0.02, 9);
        assert_eq!(sets.len(), 6);
        assert!(sets.iter().all(|d| d.len() >= 500));
    }
}
