//! Zipfian topic-model corpus generator (RCV1 / Wikipedia stand-in).
//!
//! Documents draw terms from a mixture of per-topic multinomials whose rank
//! ordering is a topic-specific permutation of a global Zipf distribution.
//! A near-duplicate knob models wire-copy / template articles — the mass of
//! ≥0.9-cosine pairs that Chapter 2's high-threshold probes find in RCV1.

use rand::Rng;

use crate::datasets::{Dataset, DatasetKind};
use crate::prep::tf_idf;
use crate::rng;
use crate::similarity::Similarity;
use crate::vector::SparseVector;
use crate::zipf::Zipf;

/// Specification for a synthetic document corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of documents.
    pub docs: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of latent topics.
    pub topics: usize,
    /// Mean document length (terms drawn, with repetition).
    pub doc_len_mean: usize,
    /// Zipf exponent for term frequencies.
    pub zipf_s: f64,
    /// Fraction of documents that are near-duplicates of an earlier one.
    pub near_dup_rate: f64,
}

impl CorpusSpec {
    /// Reasonable defaults for a medium corpus.
    pub fn new(name: &'static str, docs: usize, vocab: usize, topics: usize) -> Self {
        Self {
            name,
            docs,
            vocab,
            topics,
            doc_len_mean: 80,
            zipf_s: 1.05,
            near_dup_rate: 0.02,
        }
    }

    /// Generates the corpus as TF-IDF weighted sparse vectors (cosine).
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut master = rng::seeded(seed);
        let zipf = Zipf::new(self.vocab, self.zipf_s);

        // Each topic permutes the vocabulary so its Zipf head differs.
        let topic_perms: Vec<Vec<u32>> = (0..self.topics)
            .map(|t| {
                let mut r = rng::substream(seed, t as u64 + 1);
                rng::permutation(&mut r, self.vocab)
            })
            .collect();

        let mut counts_docs: Vec<Vec<u32>> = Vec::with_capacity(self.docs);
        let mut labels: Vec<u32> = Vec::with_capacity(self.docs);
        for _ in 0..self.docs {
            if !counts_docs.is_empty() && master.gen::<f64>() < self.near_dup_rate {
                let src = master.gen_range(0..counts_docs.len());
                let mut dup = counts_docs[src].clone();
                // Perturb a few terms so the pair is near- not exact-duplicate.
                for _ in 0..3 {
                    let rank = zipf.sample(&mut master);
                    dup.push(topic_perms[labels[src] as usize][rank]);
                }
                labels.push(labels[src]);
                counts_docs.push(dup);
                continue;
            }
            let topic = master.gen_range(0..self.topics);
            // Document length ~ uniform around the mean (±50%).
            let lo = (self.doc_len_mean / 2).max(1);
            let hi = self.doc_len_mean * 3 / 2;
            let len = master.gen_range(lo..=hi.max(lo));
            let mut terms = Vec::with_capacity(len);
            for _ in 0..len {
                // 85% topic terms, 15% background (identity permutation).
                let rank = zipf.sample(&mut master);
                let term = if master.gen::<f64>() < 0.85 {
                    topic_perms[topic][rank]
                } else {
                    rank as u32
                };
                terms.push(term);
            }
            labels.push(topic as u32);
            counts_docs.push(terms);
        }

        // Term lists → count vectors.
        let raw: Vec<SparseVector> = counts_docs
            .into_iter()
            .map(|terms| {
                let pairs = terms.into_iter().map(|t| (t, 1.0)).collect();
                SparseVector::from_pairs(pairs)
            })
            .collect();
        let weighted = tf_idf(&raw);

        Dataset {
            name: self.name.to_string(),
            kind: DatasetKind::Corpus,
            records: weighted,
            labels: Some(labels),
            measure: Similarity::Cosine,
            dim: self.vocab,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine;
    use crate::stats::mean;

    #[test]
    fn corpus_shape() {
        let ds = CorpusSpec::new("c", 100, 2000, 5).generate(1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim, 2000);
        assert!(ds.avg_len() > 10.0, "documents should be non-trivial");
        assert!(ds.avg_len() < 200.0, "documents should be sparse");
    }

    #[test]
    fn same_topic_docs_are_more_similar() {
        let ds = CorpusSpec::new("c", 120, 3000, 4).generate(2);
        let labels = ds.labels.as_ref().expect("labeled");
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let s = cosine(&ds.records[i], &ds.records[j]);
                if labels[i] == labels[j] {
                    intra.push(s);
                } else {
                    inter.push(s);
                }
            }
        }
        assert!(
            mean(&intra) > mean(&inter) + 0.05,
            "intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn near_duplicates_present() {
        let spec = CorpusSpec {
            near_dup_rate: 0.3,
            ..CorpusSpec::new("c", 80, 2000, 3)
        };
        let ds = spec.generate(3);
        let mut high = 0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                if cosine(&ds.records[i], &ds.records[j]) > 0.9 {
                    high += 1;
                }
            }
        }
        assert!(high >= 5, "expected high-similarity mass, got {high}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CorpusSpec::new("c", 40, 500, 3).generate(7);
        let b = CorpusSpec::new("c", 40, 500, 3).generate(7);
        assert_eq!(a.records, b.records);
    }
}
