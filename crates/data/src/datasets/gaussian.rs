//! Gaussian-mixture generator for UCI-like numeric tables.
//!
//! Chapter 3 z-norms each numeric column and uses cosine similarity; what
//! the downstream algorithms see is therefore the *pair-similarity
//! distribution*, which a Gaussian mixture controls through cluster count,
//! separation, and spread. A duplicate-injection knob reproduces the
//! near-duplicate pathology the paper observed in Spambase ("due to
//! duplicates and near duplicates in the dataset", §3.5).

use rand::Rng;

use crate::datasets::{Dataset, DatasetKind};
use crate::prep::{rows_to_vectors, z_normalize_columns};
use crate::rng;
use crate::similarity::Similarity;

/// Specification for a Gaussian-mixture numeric table.
#[derive(Debug, Clone)]
pub struct GaussianSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of rows.
    pub n: usize,
    /// Number of numeric attributes.
    pub dim: usize,
    /// Number of mixture components (planted classes).
    pub clusters: usize,
    /// Distance scale between cluster centers.
    pub separation: f64,
    /// Within-cluster standard deviation.
    pub spread: f64,
    /// Fraction of rows that are near-duplicates of an earlier row.
    pub duplicate_rate: f64,
    /// Mixture weights skew: 0 = equal-size clusters; larger values make
    /// cluster sizes geometrically unbalanced.
    pub imbalance: f64,
}

impl GaussianSpec {
    /// A balanced default: callers override fields as needed.
    pub fn new(name: &'static str, n: usize, dim: usize, clusters: usize) -> Self {
        Self {
            name,
            n,
            dim,
            clusters,
            separation: 4.0,
            spread: 1.0,
            duplicate_rate: 0.0,
            imbalance: 0.0,
        }
    }

    /// Generates the dataset: sampled rows are z-normed per column and
    /// converted to sparse vectors with cosine as the measure.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = rng::seeded(seed);
        // Cluster centers: independent Gaussian directions scaled by
        // separation, so expected inter-center distance grows with dim.
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                (0..self.dim)
                    .map(|_| rng::gaussian(&mut rng) * self.separation)
                    .collect()
            })
            .collect();

        // Geometric cluster weights.
        let weights: Vec<f64> = (0..self.clusters)
            .map(|c| (-self.imbalance * c as f64).exp())
            .collect();
        let wsum: f64 = weights.iter().sum();

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.n);
        let mut labels: Vec<u32> = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            if !rows.is_empty() && rng.gen::<f64>() < self.duplicate_rate {
                // Near-duplicate of a random earlier row with tiny jitter.
                let src = rng.gen_range(0..rows.len());
                let mut row = rows[src].clone();
                for v in &mut row {
                    *v += rng::gaussian(&mut rng) * 1e-3;
                }
                labels.push(labels[src]);
                rows.push(row);
                continue;
            }
            let mut pick = rng.gen::<f64>() * wsum;
            let mut cluster = self.clusters - 1;
            for (c, &w) in weights.iter().enumerate() {
                pick -= w;
                if pick <= 0.0 {
                    cluster = c;
                    break;
                }
            }
            let row: Vec<f64> = centers[cluster]
                .iter()
                .map(|&c| c + rng::gaussian(&mut rng) * self.spread)
                .collect();
            labels.push(cluster as u32);
            rows.push(row);
        }

        z_normalize_columns(&mut rows);
        Dataset {
            name: self.name.to_string(),
            kind: DatasetKind::NumericTable,
            records: rows_to_vectors(&rows),
            labels: Some(labels),
            measure: Similarity::Cosine,
            dim: self.dim,
        }
    }

    /// Generates the raw (un-normalized) dense rows plus labels; used by
    /// parallel-coordinates experiments that need attribute-space values.
    pub fn generate_rows(&self, seed: u64) -> (Vec<Vec<f64>>, Vec<u32>) {
        let ds = self.generate(seed);
        // Re-derive dense rows from the (z-normed) sparse records.
        let rows = ds
            .records
            .iter()
            .map(|r| {
                let mut dense = vec![0.0; self.dim];
                for (d, w) in r.iter() {
                    dense[d as usize] = w;
                }
                dense
            })
            .collect();
        (rows, ds.labels.expect("gaussian datasets are labeled"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine;

    #[test]
    fn shape_matches_spec() {
        let ds = GaussianSpec::new("t", 120, 7, 3).generate(1);
        assert_eq!(ds.len(), 120);
        assert_eq!(ds.dim, 7);
        assert_eq!(ds.num_classes(), Some(3));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GaussianSpec::new("t", 50, 4, 2).generate(9);
        let b = GaussianSpec::new("t", 50, 4, 2).generate(9);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn intra_cluster_similarity_exceeds_inter() {
        let spec = GaussianSpec {
            separation: 6.0,
            spread: 0.5,
            ..GaussianSpec::new("t", 200, 10, 4)
        };
        let ds = spec.generate(3);
        let labels = ds.labels.as_ref().expect("labeled");
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let s = cosine(&ds.records[i], &ds.records[j]);
                if labels[i] == labels[j] {
                    intra.push(s);
                } else {
                    inter.push(s);
                }
            }
        }
        let mi = crate::stats::mean(&intra);
        let me = crate::stats::mean(&inter);
        assert!(mi > me + 0.2, "intra {mi} should exceed inter {me}");
    }

    #[test]
    fn duplicates_create_high_similarity_mass() {
        let spec = GaussianSpec {
            duplicate_rate: 0.4,
            ..GaussianSpec::new("t", 150, 8, 3)
        };
        let ds = spec.generate(5);
        let mut near_dups = 0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                if cosine(&ds.records[i], &ds.records[j]) > 0.999 {
                    near_dups += 1;
                }
            }
        }
        assert!(
            near_dups > 20,
            "expected many near-duplicate pairs, got {near_dups}"
        );
    }

    #[test]
    fn imbalance_skews_cluster_sizes() {
        let spec = GaussianSpec {
            imbalance: 1.5,
            ..GaussianSpec::new("t", 400, 5, 4)
        };
        let ds = spec.generate(7);
        let labels = ds.labels.expect("labeled");
        let mut counts = vec![0usize; 4];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        assert!(counts[0] > counts[3] * 2, "counts {counts:?}");
    }
}
