//! Synthetic dataset generators standing in for the paper's evaluation data.
//!
//! The dissertation evaluates on UCI tables, TF-IDF text corpora, social
//! graphs, FIMI transactional sets, and LAW web crawls. None are available
//! offline, so each generator here reproduces the statistical properties the
//! algorithms are sensitive to — cluster structure and pair-similarity
//! distributions for APSS/graph-growth, power-law term/degree distributions
//! for LSH pruning, and pattern redundancy for LAM. See DESIGN.md
//! ("Simulated inputs") for the per-family rationale.

pub mod catalog;
pub mod corpus;
pub mod gaussian;
pub mod social;
pub mod transactions;
pub mod webgraph;

use crate::similarity::Similarity;
use crate::vector::SparseVector;

/// Broad family of a dataset, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Dense numeric table (UCI-like), cosine over z-normed columns.
    NumericTable,
    /// Sparse TF-IDF document corpus.
    Corpus,
    /// Graph-derived neighbor-list vectors.
    SocialGraph,
}

/// A named collection of records plus optional class labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name, e.g. `"wine-like"`.
    pub name: String,
    /// Family tag.
    pub kind: DatasetKind,
    /// The records, ready for the configured similarity measure
    /// (z-normed / TF-IDF'd as appropriate).
    pub records: Vec<SparseVector>,
    /// Ground-truth class / cluster labels when the generator planted them.
    pub labels: Option<Vec<u32>>,
    /// Similarity measure the paper uses for this dataset.
    pub measure: Similarity,
    /// Nominal dimensionality (vocabulary size for corpora).
    pub dim: usize,
}

impl Dataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of non-zero entries across all records ("Nnz" in the
    /// paper's dataset tables).
    pub fn nnz(&self) -> u64 {
        self.records.iter().map(|r| r.nnz() as u64).sum()
    }

    /// Average record length (non-zeros per record).
    pub fn avg_len(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.records.len() as f64
        }
    }

    /// Number of distinct classes, if labeled.
    pub fn num_classes(&self) -> Option<usize> {
        self.labels
            .as_ref()
            .map(|ls| ls.iter().copied().max().map_or(0, |m| m as usize + 1))
    }

    /// Returns a row-subsampled copy with at most `n` records (keeping
    /// labels aligned), mimicking the paper's "8000 of 32561" subsampling.
    pub fn subsample(&self, n: usize, seed: u64) -> Dataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut rng = crate::rng::seeded(seed);
        let idx = crate::rng::sample_without_replacement(&mut rng, self.len(), n);
        Dataset {
            name: self.name.clone(),
            kind: self.kind,
            records: idx
                .iter()
                .map(|&i| self.records[i as usize].clone())
                .collect(),
            labels: self
                .labels
                .as_ref()
                .map(|ls| idx.iter().map(|&i| ls[i as usize]).collect()),
            measure: self.measure,
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            kind: DatasetKind::NumericTable,
            records: vec![
                SparseVector::from_dense(&[1.0, 0.0]),
                SparseVector::from_dense(&[0.0, 1.0]),
                SparseVector::from_dense(&[1.0, 1.0]),
            ],
            labels: Some(vec![0, 1, 1]),
            measure: Similarity::Cosine,
            dim: 2,
        }
    }

    #[test]
    fn nnz_and_avg_len() {
        let d = tiny();
        assert_eq!(d.nnz(), 4);
        assert!((d.avg_len() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn num_classes_from_labels() {
        assert_eq!(tiny().num_classes(), Some(2));
    }

    #[test]
    fn subsample_keeps_labels_aligned() {
        let d = tiny();
        let s = d.subsample(2, 7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels.as_ref().map(|l| l.len()), Some(2));
        // Oversized request returns everything.
        assert_eq!(d.subsample(10, 7).len(), 3);
    }
}
