//! Social-graph dataset generator (Twitter / Orkut stand-in).
//!
//! The paper represents each Twitter user as a TF-IDF weighted vector of its
//! followers and each Orkut user as a TF-IDF weighted friend list (Tables
//! 2.1 / 4.6). We generate a preferential-attachment graph with planted
//! communities (power-law degrees + local clustering, the two properties the
//! similarity structure depends on) and expose each node's neighbor list as
//! its record.

use rand::Rng;

use crate::datasets::{Dataset, DatasetKind};
use crate::prep::tf_idf;
use crate::rng;
use crate::similarity::Similarity;
use crate::vector::SparseVector;

/// Specification for a community-structured preferential-attachment graph.
#[derive(Debug, Clone)]
pub struct SocialSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of nodes (= records).
    pub nodes: usize,
    /// Edges added per arriving node.
    pub edges_per_node: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Probability an edge endpoint is drawn from the node's own community
    /// (vs the global preferential pool).
    pub homophily: f64,
    /// Weighting: `true` → TF-IDF (cosine), `false` → unweighted sets
    /// (Jaccard), matching Orkut being the one unweighted dataset.
    pub weighted: bool,
    /// Fraction of arriving nodes that clone an earlier node's neighbor
    /// list with light mutation. Real follower graphs carry heavy
    /// co-follower duplication (Fig. 2.7 finds thousands of ≥0.95-cosine
    /// pairs in TwitterLinks); this knob supplies that mass.
    pub clone_rate: f64,
}

impl SocialSpec {
    /// Defaults tuned to give realistic clustering.
    pub fn new(name: &'static str, nodes: usize, edges_per_node: usize) -> Self {
        Self {
            name,
            nodes,
            edges_per_node,
            communities: 20,
            homophily: 0.7,
            weighted: true,
            clone_rate: 0.0,
        }
    }

    /// Generates the neighbor-list dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let adj = self.generate_adjacency(seed);
        let labels: Vec<u32> = (0..self.nodes)
            .map(|i| (i % self.communities) as u32)
            .collect();

        let raw: Vec<SparseVector> = adj
            .into_iter()
            .map(|ns| {
                if self.weighted {
                    SparseVector::from_pairs(ns.into_iter().map(|n| (n, 1.0)).collect())
                } else {
                    SparseVector::from_set(ns)
                }
            })
            .collect();
        let records = if self.weighted { tf_idf(&raw) } else { raw };

        Dataset {
            name: self.name.to_string(),
            kind: DatasetKind::SocialGraph,
            records,
            labels: Some(labels),
            measure: if self.weighted {
                Similarity::Cosine
            } else {
                Similarity::Jaccard
            },
            dim: self.nodes,
        }
    }

    /// Generates just the adjacency lists (used by LAM web-graph style
    /// experiments that mine adjacency structure directly).
    pub fn generate_adjacency(&self, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = rng::seeded(seed);
        let m = self.edges_per_node.max(1);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.nodes];
        // Preferential pool: node ids repeated once per incident edge.
        let mut pool: Vec<u32> = Vec::with_capacity(self.nodes * m * 2);
        // Per-community pools for homophilous attachment.
        let mut com_pool: Vec<Vec<u32>> = vec![Vec::new(); self.communities];

        // Seed clique over the first m+1 nodes.
        let seed_n = (m + 1).min(self.nodes);
        for i in 0..seed_n {
            for j in (i + 1)..seed_n {
                adj[i].push(j as u32);
                adj[j].push(i as u32);
                pool.extend_from_slice(&[i as u32, j as u32]);
                com_pool[i % self.communities].push(j as u32);
                com_pool[j % self.communities].push(i as u32);
            }
        }

        for v in seed_n..self.nodes {
            let community = v % self.communities;
            if v > seed_n + 4 && rng.gen::<f64>() < self.clone_rate {
                // Clone an earlier node's neighborhood with ~10% mutation.
                let proto = rng.gen_range(seed_n as u32..v as u32);
                let neighbors: Vec<u32> = adj[proto as usize]
                    .iter()
                    .copied()
                    .filter(|&t| t != v as u32 && rng.gen::<f64>() < 0.9)
                    .collect();
                for target in neighbors {
                    if adj[v].contains(&target) {
                        continue;
                    }
                    adj[v].push(target);
                    adj[target as usize].push(v as u32);
                    pool.extend_from_slice(&[v as u32, target]);
                }
                continue;
            }
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < m && guard < m * 30 {
                guard += 1;
                let own = &com_pool[community];
                let target = if !own.is_empty() && rng.gen::<f64>() < self.homophily {
                    own[rng.gen_range(0..own.len())]
                } else if !pool.is_empty() {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    rng.gen_range(0..v as u32)
                };
                if target as usize == v || adj[v].contains(&target) {
                    continue;
                }
                adj[v].push(target);
                adj[target as usize].push(v as u32);
                pool.extend_from_slice(&[v as u32, target]);
                com_pool[community].push(target);
                com_pool[target as usize % self.communities].push(v as u32);
                added += 1;
            }
        }
        for ns in &mut adj {
            ns.sort_unstable();
            ns.dedup();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_heavy_tailed() {
        let spec = SocialSpec::new("s", 1000, 4);
        let adj = spec.generate_adjacency(1);
        let mut degs: Vec<usize> = adj.iter().map(|a| a.len()).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Max degree should be far above the mean (power-law-ish hub).
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            degs[0] as f64 > mean * 4.0,
            "max {} vs mean {mean}",
            degs[0]
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        let adj = SocialSpec::new("s", 300, 3).generate_adjacency(2);
        for (u, ns) in adj.iter().enumerate() {
            for &v in ns {
                assert!(
                    adj[v as usize].contains(&(u as u32)),
                    "edge {u}-{v} not symmetric"
                );
            }
        }
    }

    #[test]
    fn weighted_flag_selects_measure() {
        let cos = SocialSpec::new("s", 100, 3).generate(3);
        assert_eq!(cos.measure, Similarity::Cosine);
        let spec = SocialSpec {
            weighted: false,
            ..SocialSpec::new("s", 100, 3)
        };
        let jac = spec.generate(3);
        assert_eq!(jac.measure, Similarity::Jaccard);
        // Unweighted records have unit weights.
        assert!(jac.records[5].weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn no_self_loops() {
        let adj = SocialSpec::new("s", 200, 4).generate_adjacency(4);
        for (u, ns) in adj.iter().enumerate() {
            assert!(!ns.contains(&(u as u32)));
        }
    }
}
