//! Transactional dataset generators (FIMI stand-ins) for LAM and baselines.
//!
//! Two families cover the paper's Table 4.4 spectrum:
//!
//! * **Quest-style** (IBM synthetic-market-basket model): a pool of source
//!   patterns with Zipfian popularity; each transaction stitches together a
//!   few (possibly corrupted) patterns plus noise items. This yields the
//!   frequent-itemset structure sparse sets like Kosarak/Accidents have.
//! * **One-hot categorical**: every transaction has exactly one item per
//!   attribute (mushroom/adult-like "dense" sets), which is where
//!   code-table methods like Krimp shine.

use rand::Rng;

use crate::rng;
use crate::zipf::Zipf;

/// A transaction database: each row is a sorted, deduplicated item list.
pub type Transactions = Vec<Vec<u32>>;

/// Specification for a Quest-style sparse transactional dataset.
#[derive(Debug, Clone)]
pub struct QuestSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of transactions.
    pub transactions: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Number of source patterns in the pool.
    pub patterns: usize,
    /// Mean source-pattern length.
    pub pattern_len: usize,
    /// Mean number of patterns composed into one transaction.
    pub patterns_per_tx: usize,
    /// Probability each pattern item is dropped when instantiated
    /// (corruption, per the Quest model).
    pub corruption: f64,
    /// Mean count of uniform-random noise items appended.
    pub noise_items: usize,
}

impl QuestSpec {
    /// Balanced defaults for a medium sparse set.
    pub fn new(name: &'static str, transactions: usize, items: usize) -> Self {
        Self {
            name,
            transactions,
            items,
            patterns: (items / 10).max(8),
            pattern_len: 6,
            patterns_per_tx: 3,
            corruption: 0.25,
            noise_items: 2,
        }
    }

    /// Generates the transaction database.
    pub fn generate(&self, seed: u64) -> Transactions {
        let mut rng = rng::seeded(seed);
        // Pattern pool: Zipfian popularity so a few patterns dominate, which
        // is what makes these datasets compressible.
        let pool: Vec<Vec<u32>> = (0..self.patterns)
            .map(|_| {
                let len = rng.gen_range(2..=self.pattern_len * 2 - 2);
                let mut p: Vec<u32> = (0..len)
                    .map(|_| rng.gen_range(0..self.items as u32))
                    .collect();
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        let popularity = Zipf::new(self.patterns, 1.0);

        (0..self.transactions)
            .map(|_| {
                let k = rng.gen_range(1..=self.patterns_per_tx * 2 - 1);
                let mut tx: Vec<u32> = Vec::new();
                for _ in 0..k {
                    let p = &pool[popularity.sample(&mut rng)];
                    for &item in p {
                        if rng.gen::<f64>() >= self.corruption {
                            tx.push(item);
                        }
                    }
                }
                for _ in 0..self.noise_items {
                    tx.push(rng.gen_range(0..self.items as u32));
                }
                tx.sort_unstable();
                tx.dedup();
                if tx.is_empty() {
                    tx.push(rng.gen_range(0..self.items as u32));
                }
                tx
            })
            .collect()
    }
}

/// Specification for a one-hot categorical table (dense transactional set).
#[derive(Debug, Clone)]
pub struct CategoricalSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of rows.
    pub rows: usize,
    /// Number of categorical attributes.
    pub attributes: usize,
    /// Number of values per attribute.
    pub values_per_attr: usize,
    /// Number of latent classes driving value correlations.
    pub classes: usize,
    /// Probability a cell takes its class's modal value (vs uniform noise).
    pub coherence: f64,
}

impl CategoricalSpec {
    /// Defaults giving a mushroom-like dense set.
    pub fn new(name: &'static str, rows: usize, attributes: usize) -> Self {
        Self {
            name,
            rows,
            attributes,
            values_per_attr: 4,
            classes: 2,
            coherence: 0.8,
        }
    }

    /// Generates transactions plus class labels.
    ///
    /// Item ids are `attr * values_per_attr + value`, so every transaction
    /// has exactly `attributes` items — the dense one-hot encoding the
    /// paper's Adult/Mushroom rows use.
    pub fn generate(&self, seed: u64) -> (Transactions, Vec<u32>) {
        let mut rng = rng::seeded(seed);
        // Per-class modal value for each attribute.
        let modal: Vec<Vec<u32>> = (0..self.classes)
            .map(|_| {
                (0..self.attributes)
                    .map(|_| rng.gen_range(0..self.values_per_attr as u32))
                    .collect()
            })
            .collect();
        let mut txs = Vec::with_capacity(self.rows);
        let mut labels = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            let class = rng.gen_range(0..self.classes);
            let tx: Vec<u32> = (0..self.attributes)
                .map(|a| {
                    let val = if rng.gen::<f64>() < self.coherence {
                        modal[class][a]
                    } else {
                        rng.gen_range(0..self.values_per_attr as u32)
                    };
                    (a * self.values_per_attr) as u32 + val
                })
                .collect();
            txs.push(tx); // already sorted: attribute-major ids
            labels.push(class as u32);
        }
        (txs, labels)
    }
}

/// Summary stats for reporting transactional datasets (Table 4.4 style).
pub struct TxStats {
    /// Number of transactions.
    pub transactions: usize,
    /// Total item occurrences ("size" in the paper's byte-ish units).
    pub size: u64,
    /// Number of distinct items.
    pub distinct_items: usize,
    /// Mean transaction length.
    pub avg_len: f64,
}

/// Computes summary statistics of a transaction database.
pub fn tx_stats(txs: &Transactions) -> TxStats {
    let size: u64 = txs.iter().map(|t| t.len() as u64).sum();
    let distinct = {
        let mut set = crate::hash::FxHashSet::default();
        for t in txs {
            set.extend(t.iter().copied());
        }
        set.len()
    };
    TxStats {
        transactions: txs.len(),
        size,
        distinct_items: distinct,
        avg_len: if txs.is_empty() {
            0.0
        } else {
            size as f64 / txs.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest_transactions_sorted_unique_nonempty() {
        let txs = QuestSpec::new("q", 300, 200).generate(1);
        assert_eq!(txs.len(), 300);
        for t in &txs {
            assert!(!t.is_empty());
            for w in t.windows(2) {
                assert!(w[0] < w[1], "must be strictly sorted");
            }
        }
    }

    #[test]
    fn quest_has_repeated_patterns() {
        // The whole point: some item pairs co-occur far above chance.
        let txs = QuestSpec::new("q", 500, 300).generate(2);
        let mut pair_counts: crate::hash::FxHashMap<(u32, u32), u32> =
            crate::hash::FxHashMap::default();
        for t in &txs {
            for i in 0..t.len().min(12) {
                for j in (i + 1)..t.len().min(12) {
                    *pair_counts.entry((t[i], t[j])).or_insert(0) += 1;
                }
            }
        }
        let max = pair_counts.values().copied().max().unwrap_or(0);
        assert!(max > 25, "expected strongly co-occurring pair, max {max}");
    }

    #[test]
    fn categorical_rows_have_fixed_length() {
        let (txs, labels) = CategoricalSpec::new("c", 100, 15).generate(3);
        assert_eq!(txs.len(), 100);
        assert_eq!(labels.len(), 100);
        for t in &txs {
            assert_eq!(t.len(), 15);
        }
    }

    #[test]
    fn categorical_items_partition_by_attribute() {
        let spec = CategoricalSpec::new("c", 50, 6);
        let (txs, _) = spec.generate(4);
        for t in &txs {
            for (a, &item) in t.iter().enumerate() {
                let attr = item as usize / spec.values_per_attr;
                assert_eq!(attr, a, "item {item} not in attribute slot {a}");
            }
        }
    }

    #[test]
    fn tx_stats_counts() {
        let txs = vec![vec![1, 2, 3], vec![2, 3], vec![9]];
        let s = tx_stats(&txs);
        assert_eq!(s.transactions, 3);
        assert_eq!(s.size, 6);
        assert_eq!(s.distinct_items, 4);
        assert!((s.avg_len - 2.0).abs() < 1e-12);
    }
}
