//! Copy-model web-graph generator (EU2005 / UK2006 stand-in).
//!
//! LAW web crawls compress extremely well because pages on the same site
//! share long runs of out-links (navigation templates). The standard
//! generative explanation is the *copy model*: a new page picks a prototype
//! and copies its out-links with some mutation. LAM's localization phase
//! exploits exactly this Jaccard-clustered redundancy, so a copy-model
//! graph exercises the same code path as the paper's Table 4.3 crawls.

use rand::Rng;

use crate::rng;

/// Specification for a copy-model web graph.
#[derive(Debug, Clone)]
pub struct WebGraphSpec {
    /// Dataset name for reporting.
    pub name: &'static str,
    /// Number of pages (adjacency lists).
    pub pages: usize,
    /// Mean out-degree.
    pub out_degree: usize,
    /// Number of "sites": prototypes are drawn within the same site,
    /// producing the per-host template redundancy crawls exhibit.
    pub sites: usize,
    /// Probability each copied link is kept (vs replaced by a fresh one).
    pub copy_fidelity: f64,
}

impl WebGraphSpec {
    /// Defaults calibrated so LAM reaches compression ratios in the 2–4×
    /// band the paper reports for EU2005.
    pub fn new(name: &'static str, pages: usize, out_degree: usize) -> Self {
        Self {
            name,
            pages,
            out_degree,
            sites: (pages / 30).max(4),
            copy_fidelity: 0.95,
        }
    }

    /// Generates adjacency lists (each sorted and deduplicated).
    pub fn generate(&self, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = rng::seeded(seed);
        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(self.pages);
        // Track pages per site for prototype selection.
        let mut site_members: Vec<Vec<u32>> = vec![Vec::new(); self.sites];

        for v in 0..self.pages {
            let site = rng.gen_range(0..self.sites);
            let mut links: Vec<u32> = Vec::with_capacity(self.out_degree);
            let members = &site_members[site];
            if !members.is_empty() && rng.gen::<f64>() < 0.9 {
                // Copy from a same-site prototype.
                let proto = members[rng.gen_range(0..members.len())] as usize;
                for &l in &adj[proto] {
                    if rng.gen::<f64>() < self.copy_fidelity {
                        links.push(l);
                    } else {
                        links.push(rng.gen_range(0..self.pages as u32));
                    }
                }
            }
            // Top up to around the target out-degree.
            while links.len() < self.out_degree {
                links.push(rng.gen_range(0..self.pages as u32));
            }
            links.sort_unstable();
            links.dedup();
            site_members[site].push(v as u32);
            adj.push(links);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_jaccard(a: &[u32], b: &[u32]) -> f64 {
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    #[test]
    fn shape_matches_spec() {
        let adj = WebGraphSpec::new("w", 500, 12).generate(1);
        assert_eq!(adj.len(), 500);
        let avg: f64 = adj.iter().map(|a| a.len() as f64).sum::<f64>() / 500.0;
        assert!((8.0..=20.0).contains(&avg), "avg out-degree {avg}");
    }

    #[test]
    fn copy_model_creates_similar_lists() {
        // A noticeable share of list pairs should have high Jaccard — that's
        // the redundancy LAM compresses. Compare to an all-random baseline.
        let adj = WebGraphSpec::new("w", 400, 15).generate(2);
        let mut high = 0;
        let mut total = 0;
        for i in 0..adj.len() {
            for j in (i + 1)..adj.len().min(i + 40) {
                total += 1;
                if list_jaccard(&adj[i], &adj[j]) > 0.5 {
                    high += 1;
                }
            }
        }
        assert!(
            high as f64 / total as f64 > 0.01,
            "expected ≥1% high-overlap pairs, got {high}/{total}"
        );
    }

    #[test]
    fn lists_sorted_and_unique() {
        let adj = WebGraphSpec::new("w", 200, 10).generate(3);
        for l in &adj {
            for w in l.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
