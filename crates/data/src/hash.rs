//! Fast non-cryptographic hashing.
//!
//! Hot paths (LSH sketching, LAM localization, dedup sets keyed by small
//! integers) need a hasher much faster than SipHash. This module provides an
//! FxHash-style multiplicative hasher and type aliases, avoiding an external
//! dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: fast multiplicative mixing, not HashDoS-resistant.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Stateless 64-bit integer mix (SplitMix64 finalizer). Used where a keyed
/// hash function family is needed (min-wise hashing draws one key per
/// permutation).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Keyed hash of a 32-bit item: `h_key(item)`. Each distinct `key` induces
/// an (approximately) min-wise independent permutation of the item space,
/// following Bohman et al.'s practical construction referenced in §4.4.1.
#[inline]
pub fn keyed_hash(key: u64, item: u32) -> u64 {
    keyed_hash_spread(key, spread_item(item))
}

/// The item-dependent half of [`keyed_hash`]. Hot loops that evaluate many
/// keys against one item (dim-outer sketching) compute this once per item
/// and finish each lane with [`keyed_hash_spread`].
#[inline]
pub fn spread_item(item: u32) -> u64 {
    (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Completes a keyed hash from a pre-spread item word:
/// `keyed_hash(key, item) == keyed_hash_spread(key, spread_item(item))`,
/// bit for bit.
#[inline]
pub fn keyed_hash_spread(key: u64, spread: u64) -> u64 {
    mix64(key ^ spread)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Injectivity spot check: no collisions over a contiguous range.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn spread_form_matches_keyed_hash() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for item in [0u32, 1, 42, 9_999, u32::MAX] {
                assert_eq!(
                    keyed_hash(key, item),
                    keyed_hash_spread(key, spread_item(item))
                );
            }
        }
    }

    #[test]
    fn keyed_hash_differs_by_key() {
        let a = keyed_hash(1, 42);
        let b = keyed_hash(2, 42);
        assert_ne!(a, b);
    }

    #[test]
    fn keyed_hash_minwise_probability_matches_jaccard() {
        // For sets A, B the probability that argmin_h over A∪B lands in A∩B
        // equals |A∩B|/|A∪B|. Check empirically across many keys.
        let a: Vec<u32> = (0..30).collect(); // A = {0..29}
        let b: Vec<u32> = (15..45).collect(); // B = {15..44}, |∩|=15, |∪|=45
        let expected = 15.0 / 45.0;
        let trials = 4000;
        let mut agree = 0;
        for key in 0..trials {
            let min_a = a.iter().map(|&x| keyed_hash(key, x)).min().unwrap();
            let min_b = b.iter().map(|&x| keyed_hash(key, x)).min().unwrap();
            if min_a == min_b {
                agree += 1;
            }
        }
        let p = agree as f64 / trials as f64;
        assert!(
            (p - expected).abs() < 0.03,
            "min-hash agreement {p} vs expected {expected}"
        );
    }
}
