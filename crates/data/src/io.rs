//! Loading user data from disk.
//!
//! The synthetic catalog serves the reproduction; real use starts from
//! files. Two plain-text formats cover the paper's input families without
//! external dependencies:
//!
//! * **Delimited numeric tables** (CSV/TSV) → dense rows, optionally
//!   z-normed, for the cosine workflows of Chapters 2/3/5.
//! * **Transaction lists** (one whitespace-separated item list per line,
//!   the FIMI convention) → LAM / Jaccard workflows.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::datasets::{Dataset, DatasetKind};
use crate::prep::{rows_to_vectors, z_normalize_columns};
use crate::similarity::Similarity;

/// Errors from data loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number (line, column, token).
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// The offending token.
        token: String,
    },
    /// A row had a different number of columns than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// The input contained no data rows.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadNumber {
                line,
                column,
                token,
            } => write!(
                f,
                "line {line}, column {column}: cannot parse {token:?} as a number"
            ),
            LoadError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} columns, expected {expected}"),
            LoadError::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Options for table loading.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Cell delimiter; `None` auto-detects comma / tab / semicolon from
    /// the first data line (whitespace otherwise).
    pub delimiter: Option<char>,
    /// Skip the first line (header).
    pub has_header: bool,
    /// Z-normalize every column after loading (Ch. 3's preparation).
    pub z_normalize: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            delimiter: None,
            has_header: true,
            z_normalize: true,
        }
    }
}

/// Loads a delimited numeric table from a reader.
pub fn read_table<R: Read>(reader: R, opts: &TableOptions) -> Result<Vec<Vec<f64>>, LoadError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expected = 0usize;
    let mut delim = opts.delimiter;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if opts.has_header && rows.is_empty() && lineno == 0 {
            continue;
        }
        let d = *delim.get_or_insert_with(|| detect_delimiter(trimmed));
        let cells: Vec<&str> = if d == ' ' {
            trimmed.split_whitespace().collect()
        } else {
            trimmed.split(d).collect()
        };
        let mut row = Vec::with_capacity(cells.len());
        for (col, cell) in cells.iter().enumerate() {
            let token = cell.trim();
            match token.parse::<f64>() {
                Ok(v) if v.is_finite() => row.push(v),
                _ => {
                    return Err(LoadError::BadNumber {
                        line: lineno + 1,
                        column: col + 1,
                        token: token.to_string(),
                    })
                }
            }
        }
        if rows.is_empty() {
            expected = row.len();
        } else if row.len() != expected {
            return Err(LoadError::RaggedRow {
                line: lineno + 1,
                found: row.len(),
                expected,
            });
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(LoadError::Empty);
    }
    if opts.z_normalize {
        z_normalize_columns(&mut rows);
    }
    Ok(rows)
}

fn detect_delimiter(line: &str) -> char {
    for d in [',', '\t', ';'] {
        if line.contains(d) {
            return d;
        }
    }
    ' '
}

/// Loads a numeric table from a file and wraps it as a cosine [`Dataset`].
pub fn load_table_dataset<P: AsRef<Path>>(
    path: P,
    opts: &TableOptions,
) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(&path)?;
    let rows = read_table(file, opts)?;
    let dim = rows[0].len();
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string());
    Ok(Dataset {
        name,
        kind: DatasetKind::NumericTable,
        records: rows_to_vectors(&rows),
        labels: None,
        measure: Similarity::Cosine,
        dim,
    })
}

/// Reads FIMI-style transactions (one whitespace-separated item list per
/// line; `#` comments and blank lines skipped).
pub fn read_transactions<R: Read>(reader: R) -> Result<Vec<Vec<u32>>, LoadError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tx = Vec::new();
        for (col, token) in trimmed.split_whitespace().enumerate() {
            match token.parse::<u32>() {
                Ok(v) => tx.push(v),
                Err(_) => {
                    return Err(LoadError::BadNumber {
                        line: lineno + 1,
                        column: col + 1,
                        token: token.to_string(),
                    })
                }
            }
        }
        tx.sort_unstable();
        tx.dedup();
        if !tx.is_empty() {
            out.push(tx);
        }
    }
    if out.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(out)
}

/// Loads FIMI-style transactions from a file.
pub fn load_transactions<P: AsRef<Path>>(path: P) -> Result<Vec<Vec<u32>>, LoadError> {
    let file = std::fs::File::open(path)?;
    read_transactions(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_with_header_and_znorm() {
        let csv = "a,b\n1,10\n2,10\n3,10\n";
        let rows = read_table(csv.as_bytes(), &TableOptions::default()).expect("parses");
        assert_eq!(rows.len(), 3);
        // First column z-normed; constant column zeroed.
        assert!(rows.iter().map(|r| r[0]).sum::<f64>().abs() < 1e-9);
        assert!(rows.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn tsv_and_semicolon_autodetect() {
        let tsv = "1\t2\n3\t4\n";
        let opts = TableOptions {
            has_header: false,
            z_normalize: false,
            ..TableOptions::default()
        };
        assert_eq!(
            read_table(tsv.as_bytes(), &opts).expect("tsv"),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        let semi = "1;2\n3;4\n";
        assert_eq!(read_table(semi.as_bytes(), &opts).expect("semi").len(), 2);
        let ws = "1 2\n3 4\n";
        assert_eq!(read_table(ws.as_bytes(), &opts).expect("ws").len(), 2);
    }

    #[test]
    fn bad_number_is_located() {
        let csv = "1,2\n3,oops\n";
        let opts = TableOptions {
            has_header: false,
            z_normalize: false,
            ..TableOptions::default()
        };
        match read_table(csv.as_bytes(), &opts) {
            Err(LoadError::BadNumber {
                line,
                column,
                token,
            }) => {
                assert_eq!((line, column), (2, 2));
                assert_eq!(token, "oops");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "1,2\n3\n";
        let opts = TableOptions {
            has_header: false,
            z_normalize: false,
            ..TableOptions::default()
        };
        assert!(matches!(
            read_table(csv.as_bytes(), &opts),
            Err(LoadError::RaggedRow {
                line: 2,
                found: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            read_table("# only comments\n".as_bytes(), &TableOptions::default()),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn nan_and_inf_rejected() {
        let opts = TableOptions {
            has_header: false,
            z_normalize: false,
            ..TableOptions::default()
        };
        assert!(read_table("NaN,1\n".as_bytes(), &opts).is_err());
        assert!(read_table("inf,1\n".as_bytes(), &opts).is_err());
    }

    #[test]
    fn transactions_roundtrip() {
        let fimi = "# a comment\n3 1 2\n\n5 5 4\n";
        let txs = read_transactions(fimi.as_bytes()).expect("parses");
        assert_eq!(txs, vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn file_loading_end_to_end() {
        let dir = std::env::temp_dir();
        let p = dir.join("plasma_io_test.csv");
        std::fs::write(&p, "x,y\n1,4\n2,5\n3,6\n").expect("write temp file");
        let ds = load_table_dataset(&p, &TableOptions::default()).expect("loads");
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim, 2);
        assert_eq!(ds.name, "plasma_io_test");
        std::fs::remove_file(&p).ok();
    }
}
