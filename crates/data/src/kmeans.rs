//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used by Chapter 3's *stratified sampling* method ("the data is divided
//! into 10 clusters using K-means clustering; each cluster serves as a
//! strata") and by parallel-coordinates experiments that need discovered
//! clusters to visualize.

use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each input row to a centroid index.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Runs k-means on dense rows.
///
/// `k` is clamped to the number of rows. Empty clusters are re-seeded with
/// the point farthest from its centroid, so all `k` clusters stay non-empty.
pub fn kmeans<R: Rng>(rows: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut R) -> KMeans {
    assert!(!rows.is_empty(), "kmeans needs at least one row");
    let k = k.clamp(1, rows.len());
    let d = rows[0].len();

    let mut centroids = kmeans_pp_init(rows, k, rng);
    let mut assignments = vec![0usize; rows.len()];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, row) in rows.iter().enumerate() {
            let (best, dist) = nearest(row, &centroids);
            assignments[i] = best;
            new_inertia += dist;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (row, &a) in rows.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fit point.
                let far = rows
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[0]]))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty rows");
                centroids[c] = rows[far].clone();
            } else {
                for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        // Convergence check: inertia stopped improving.
        if (inertia - new_inertia).abs() <= 1e-9 * inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

fn kmeans_pp_init<R: Rng>(rows: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(rows[rng.gen_range(0..rows.len())].clone());
    let mut dists: Vec<f64> = rows.iter().map(|r| sq_dist(r, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..rows.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = rows.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(rows[next].clone());
        for (i, r) in rows.iter().enumerate() {
            let d = sq_dist(r, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = sq_dist(row, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![0.0 + (i % 3) as f64 * 0.01, 0.0]);
            rows.push(vec![10.0 + (i % 3) as f64 * 0.01, 10.0]);
        }
        rows
    }

    #[test]
    fn separates_two_blobs() {
        let rows = two_blobs();
        let mut rng = seeded(5);
        let km = kmeans(&rows, 2, 50, &mut rng);
        // All even-indexed rows (blob A) share a label distinct from odds.
        let a = km.assignments[0];
        let b = km.assignments[1];
        assert_ne!(a, b);
        for (i, &asg) in km.assignments.iter().enumerate() {
            assert_eq!(asg, if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn k_clamped_to_n() {
        let rows = vec![vec![1.0], vec![2.0]];
        let mut rng = seeded(1);
        let km = kmeans(&rows, 10, 10, &mut rng);
        assert_eq!(km.centroids.len(), 2);
    }

    #[test]
    fn inertia_zero_for_k_equals_n() {
        let rows = vec![vec![1.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]];
        let mut rng = seeded(2);
        let km = kmeans(&rows, 3, 30, &mut rng);
        assert!(km.inertia < 1e-9);
    }

    #[test]
    fn assignments_cover_all_rows() {
        let rows = two_blobs();
        let mut rng = seeded(9);
        let km = kmeans(&rows, 4, 25, &mut rng);
        assert_eq!(km.assignments.len(), rows.len());
        assert!(km.assignments.iter().all(|&a| a < 4));
    }
}
