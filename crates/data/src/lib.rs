//! Data substrate for PLASMA-HD.
//!
//! This crate provides everything the higher layers consume as "a dataset":
//! sparse and dense vector types, exact similarity measures (cosine and
//! Jaccard), feature preparation (z-normalization, TF-IDF), summary
//! statistics, ordinary least squares regression, k-means clustering, and a
//! catalog of seeded synthetic dataset generators that stand in for the
//! UCI / text-corpus / social-graph / transactional datasets used in the
//! paper's evaluation (see DESIGN.md for the substitution rationale).

pub mod datasets;
pub mod hash;
pub mod io;
pub mod kmeans;
pub mod prep;
pub mod regression;
pub mod rng;
pub mod similarity;
pub mod stats;
pub mod vector;
pub mod zipf;

pub use datasets::{Dataset, DatasetKind};
pub use similarity::{cosine, jaccard, Similarity};
pub use vector::SparseVector;
