//! Feature preparation: column z-normalization and TF-IDF weighting.
//!
//! Chapter 3 z-norms every numeric column ("each used column was z-normed to
//! center and normalize variance") before computing cosine similarities;
//! Chapters 2 and 4 use TF-IDF weighted document/neighbor vectors.

use crate::hash::FxHashMap;
use crate::stats::{mean, std_dev};
use crate::vector::SparseVector;

/// Z-normalizes each column of a dense row-major table in place.
///
/// Columns with zero variance are centered only (left at 0), matching the
/// standard convention so constant attributes do not produce NaNs.
pub fn z_normalize_columns(rows: &mut [Vec<f64>]) {
    if rows.is_empty() {
        return;
    }
    let d = rows[0].len();
    debug_assert!(rows.iter().all(|r| r.len() == d), "ragged table");
    for col in 0..d {
        let column: Vec<f64> = rows.iter().map(|r| r[col]).collect();
        let m = mean(&column);
        let s = std_dev(&column);
        for r in rows.iter_mut() {
            r[col] = if s > 0.0 { (r[col] - m) / s } else { 0.0 };
        }
    }
}

/// Converts a dense table to sparse vectors (one per row).
pub fn rows_to_vectors(rows: &[Vec<f64>]) -> Vec<SparseVector> {
    rows.iter().map(|r| SparseVector::from_dense(r)).collect()
}

/// Applies TF-IDF weighting to a collection of raw term-count vectors.
///
/// `tfidf(t, d) = tf(t, d) * ln(N / df(t))`, the classic formulation. Terms
/// appearing in every document get weight 0 and drop out.
pub fn tf_idf(docs: &[SparseVector]) -> Vec<SparseVector> {
    let n = docs.len() as f64;
    let mut df: FxHashMap<u32, u32> = FxHashMap::default();
    for d in docs {
        for (t, _) in d.iter() {
            *df.entry(t).or_insert(0) += 1;
        }
    }
    docs.iter()
        .map(|d| {
            let pairs: Vec<(u32, f64)> = d
                .iter()
                .map(|(t, tf)| {
                    let idf = (n / df[&t] as f64).ln();
                    (t, tf * idf)
                })
                .collect();
            SparseVector::from_pairs(pairs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znorm_centers_and_scales() {
        let mut rows = vec![vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 10.0]];
        z_normalize_columns(&mut rows);
        let col0: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        assert!(mean(&col0).abs() < 1e-12);
        assert!((std_dev(&col0) - 1.0).abs() < 1e-12);
        // Constant column becomes all-zero, not NaN.
        assert!(rows.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn znorm_empty_table_ok() {
        let mut rows: Vec<Vec<f64>> = vec![];
        z_normalize_columns(&mut rows);
    }

    #[test]
    fn tfidf_zeroes_ubiquitous_terms() {
        let docs = vec![
            SparseVector::from_pairs(vec![(0, 2.0), (1, 1.0)]),
            SparseVector::from_pairs(vec![(0, 1.0), (2, 3.0)]),
        ];
        let w = tf_idf(&docs);
        // Term 0 appears in both docs: idf = ln(1) = 0 → dropped.
        assert_eq!(w[0].get(0), 0.0);
        assert!(w[0].get(1) > 0.0);
        assert!(w[1].get(2) > 0.0);
    }

    #[test]
    fn tfidf_weights_scale_with_tf() {
        let docs = vec![
            SparseVector::from_pairs(vec![(1, 4.0)]),
            SparseVector::from_pairs(vec![(2, 1.0)]),
        ];
        let w = tf_idf(&docs);
        let idf = (2.0f64).ln();
        assert!((w[0].get(1) - 4.0 * idf).abs() < 1e-12);
    }
}
