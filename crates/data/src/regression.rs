//! Ordinary least squares linear regression.
//!
//! Chapter 3's Regression predictor fits
//! `realy = b0 + b1·synthx + b2·synthy + b3·realx`
//! by minimizing the sum of squared deviations (§3.4). This module solves
//! the normal equations with Gaussian elimination plus ridge jitter when the
//! design matrix is singular — plenty for the ≤4-predictor models the paper
//! uses, without pulling in a linear-algebra dependency.

/// A fitted linear model `y = b0 + Σ b_i x_i`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Coefficients: `coef[0]` is the intercept.
    pub coef: Vec<f64>,
}

impl LinearModel {
    /// Fits OLS on rows of predictors `xs` against responses `ys`.
    ///
    /// Each row of `xs` is one observation's predictor vector (without the
    /// intercept column; it is added internally).
    ///
    /// # Panics
    /// Panics if `xs` and `ys` lengths differ or `xs` is empty.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "predictor/response length mismatch");
        assert!(!xs.is_empty(), "cannot fit a model on zero observations");
        let p = xs[0].len() + 1; // +1 intercept
        debug_assert!(xs.iter().all(|r| r.len() + 1 == p), "ragged predictors");

        // Normal equations: (XᵀX) b = Xᵀy.
        let mut xtx = vec![vec![0.0f64; p]; p];
        let mut xty = vec![0.0f64; p];
        let mut row = vec![0.0f64; p];
        for (x, &y) in xs.iter().zip(ys) {
            row[0] = 1.0;
            row[1..p].copy_from_slice(x);
            for i in 0..p {
                xty[i] += row[i] * y;
                for j in 0..p {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let coef = solve_spd(xtx, xty);
        Self { coef }
    }

    /// Predicts the response for one predictor vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len() + 1, self.coef.len());
        self.coef[0]
            + self.coef[1..]
                .iter()
                .zip(x)
                .map(|(b, v)| b * v)
                .sum::<f64>()
    }

    /// Coefficient of determination on a dataset.
    pub fn r_squared(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = y - self.predict(x);
                e * e
            })
            .sum();
        if ss_tot == 0.0 {
            if ss_res == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Solves `A x = b` for symmetric positive semi-definite `A` using Gaussian
/// elimination with partial pivoting; adds ridge jitter on near-singular
/// pivots (collinear predictors appear when a sampled curve is flat).
fn solve_spd(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    // Scale-aware singularity threshold.
    let scale = a
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1.0);
    let ridge = scale * 1e-12;
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += ridge;
    }
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite pivots")
            })
            .expect("non-empty column range");
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        if pivot.abs() < scale * 1e-14 {
            continue; // leave coefficient at whatever back-substitution gives
        }
        for row in (col + 1)..n {
            let f = a[row][col] / pivot;
            if f == 0.0 {
                continue;
            }
            let (pivot_rows, tail) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (k, cell) in tail[0].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < scale * 1e-14 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.coef[0] - 3.0).abs() < 1e-6);
        assert!((m.coef[1] - 2.0).abs() < 1e-6);
        assert!((m.r_squared(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_multivariate_plane() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                xs.push(vec![i as f64, j as f64]);
                ys.push(1.0 - 0.5 * i as f64 + 4.0 * j as f64);
            }
        }
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.coef[0] - 1.0).abs() < 1e-7);
        assert!((m.coef[1] + 0.5).abs() < 1e-7);
        assert!((m.coef[2] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn tolerates_collinear_predictors() {
        // Second predictor duplicates the first; fit must not blow up and
        // predictions must still be accurate.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 5.0 + 3.0 * i as f64).collect();
        let m = LinearModel::fit(&xs, &ys);
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 1e-4);
        }
    }

    #[test]
    fn r_squared_of_noise_is_low() {
        // Responses independent of predictor → R² near zero.
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let ys = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let m = LinearModel::fit(&xs, &ys);
        assert!(m.r_squared(&xs, &ys) < 0.2);
    }
}
