//! Seeded randomness helpers.
//!
//! Every experiment in the repository must be reproducible, so all
//! stochastic code paths accept a seed and derive their generators from it
//! here. Gaussian sampling is implemented with the Box–Muller transform
//! (the `rand` crate alone does not ship a normal distribution).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the standard seeded generator used across the workspace.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream from a base seed and a stream index.
///
/// Uses SplitMix64-style mixing so that nearby `(seed, stream)` pairs give
/// unrelated generators.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Samples a standard normal deviate via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln(u1) is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std^2)`.
pub fn gaussian_with<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * gaussian(rng)
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a permutation vector.
pub fn permutation<R: Rng>(rng: &mut R, n: usize) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Samples `k` distinct indices from `0..n` without replacement.
///
/// Uses a partial Fisher–Yates when `k` is a large fraction of `n`, and
/// rejection sampling otherwise.
pub fn sample_without_replacement<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<u32> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    if k * 3 >= n {
        let mut p = permutation(rng, n);
        p.truncate(k);
        p
    } else {
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let x = rng.gen_range(0..n) as u32;
            if seen.insert(x) {
                out.push(x);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: u64 = seeded(7).gen();
        let b: u64 = seeded(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn substreams_differ() {
        let a: u64 = substream(7, 0).gen();
        let b: u64 = substream(7, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = seeded(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(1);
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = seeded(3);
        for &(n, k) in &[(10usize, 10usize), (1000, 5), (50, 30)] {
            let s = sample_without_replacement(&mut rng, n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&x| (x as usize) < n));
        }
    }
}
