//! Exact pairwise similarity measures.
//!
//! PLASMA-HD is parameterized by a "similarity measure-of-interest"
//! (§2.1). The dissertation uses cosine similarity for weighted data and
//! Jaccard for unweighted sets (Orkut is the one unweighted dataset in
//! Table 4.6); both are exposed behind the [`Similarity`] enum so the APSS
//! engine, LSH sketches, and ground-truth computations agree on semantics.

use crate::vector::SparseVector;

/// The similarity measure used to form edges between records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Similarity {
    /// Cosine of the angle between weighted vectors, mapped to `[0, 1]`
    /// for z-normed data via the convention below.
    Cosine,
    /// Jaccard set overlap `|A ∩ B| / |A ∪ B|` over dimension sets.
    Jaccard,
}

impl Similarity {
    /// Computes the similarity of two records in `[−1, 1]` (cosine) or
    /// `[0, 1]` (Jaccard).
    pub fn compute(self, a: &SparseVector, b: &SparseVector) -> f64 {
        match self {
            Similarity::Cosine => cosine(a, b),
            Similarity::Jaccard => jaccard(a, b),
        }
    }

    /// Human-readable name as used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Similarity::Cosine => "cosine",
            Similarity::Jaccard => "jaccard",
        }
    }
}

/// Cosine similarity. Returns 0.0 when either vector has zero norm.
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        (a.dot(b) / denom).clamp(-1.0, 1.0)
    }
}

/// Jaccard similarity over the dimension *sets* (weights ignored).
/// Returns 0.0 when both vectors are empty.
pub fn jaccard(a: &SparseVector, b: &SparseVector) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.nnz() + b.nnz() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Exact all-pairs similarity: returns every unordered pair `(i, j, sim)`
/// with `sim >= threshold`. Quadratic; used for ground truth on small data.
pub fn all_pairs_exact(
    records: &[SparseVector],
    measure: Similarity,
    threshold: f64,
) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::new();
    for i in 0..records.len() {
        for j in (i + 1)..records.len() {
            let s = measure.compute(&records[i], &records[j]);
            if s >= threshold {
                out.push((i as u32, j as u32, s));
            }
        }
    }
    out
}

/// Exact count of pairs meeting each of a sorted list of thresholds.
///
/// Returns `counts[k]` = number of pairs with similarity ≥ `thresholds[k]`.
/// This is the ground truth behind the Cumulative APSS Graph (Fig. 2.3/2.4).
pub fn pair_counts_at_thresholds(
    records: &[SparseVector],
    measure: Similarity,
    thresholds: &[f64],
) -> Vec<u64> {
    let mut counts = vec![0u64; thresholds.len()];
    for i in 0..records.len() {
        for j in (i + 1)..records.len() {
            let s = measure.compute(&records[i], &records[j]);
            for (k, &t) in thresholds.iter().enumerate() {
                if s >= t {
                    counts[k] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(d: &[f64]) -> SparseVector {
        SparseVector::from_dense(d)
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = v(&[1.0, 2.0, 3.0]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let a = v(&[1.0, 1.0]);
        let b = v(&[-1.0, -1.0]);
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let a = v(&[1.0]);
        let z = SparseVector::new();
        assert_eq!(cosine(&a, &z), 0.0);
    }

    #[test]
    fn jaccard_basic() {
        let a = SparseVector::from_set(vec![1, 2, 3]);
        let b = SparseVector::from_set(vec![2, 3, 4]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_pair_is_zero() {
        let e = SparseVector::new();
        assert_eq!(jaccard(&e, &e), 0.0);
    }

    #[test]
    fn all_pairs_exact_respects_threshold() {
        let recs = vec![v(&[1.0, 0.0]), v(&[1.0, 0.1]), v(&[0.0, 1.0])];
        let pairs = all_pairs_exact(&recs, Similarity::Cosine, 0.9);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
    }

    #[test]
    fn pair_counts_monotone_in_threshold() {
        let recs: Vec<_> = (0..8).map(|i| v(&[1.0, i as f64 * 0.2])).collect();
        let th = [0.2, 0.5, 0.8, 0.99];
        let counts = pair_counts_at_thresholds(&recs, Similarity::Cosine, &th);
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "counts must be non-increasing in threshold");
        }
    }
}
