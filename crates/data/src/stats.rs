//! Summary statistics used by experiments and estimators.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `q` in `[0, 1]`. Sorts a copy.
///
/// Returns `None` for an empty slice: a percentile of nothing is not a
/// number, and the old `0.0` fallback let empty latency sets publish a
/// fake p99 into benchmark reports.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    })
}

/// Median (50th percentile); `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 0.5)
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Values outside the range are clamped into the first/last bucket, which is
/// the behavior wanted for similarity values that may be exactly `hi`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Cumulative count of observations at or above each bucket's lower
    /// edge, i.e. a survival curve. `survival()[i]` = #observations in
    /// buckets `i..`. This is exactly the shape of the Cumulative APSS
    /// Graph (§2.1) when buckets are similarity thresholds.
    pub fn survival(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.counts.len()];
        let mut acc = 0u64;
        for i in (0..self.counts.len()).rev() {
            acc += self.counts[i];
            out[i] = acc;
        }
        out
    }
}

/// Number of buckets in a [`Log2Histogram`]; covers the full `u64` range.
pub const LOG2_BUCKETS: usize = 64;

/// Fixed-bucket base-2 histogram over `u64` observations (latency
/// nanoseconds in the load harness).
///
/// Bucket `0` covers `{0, 1}`; bucket `i ≥ 1` covers `[2^i, 2^(i+1))`.
/// Recording is a single increment — no allocation, no sort — so one
/// sample per request stays cheap on the measured path, and bucket
/// counts are exact integers that replay bit-identically under a fixed
/// schedule (unlike any representation that stores raw timestamps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index holding `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            v.ilog2() as usize
        }
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Inclusive upper edge of bucket `i` (the largest value it holds).
    pub fn bucket_hi(i: usize) -> u64 {
        if i >= LOG2_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Bucket counts, low to high.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observation recorded; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Nearest-rank percentile estimate, `q` in `[0, 1]`; `None` when
    /// empty.
    ///
    /// Walks the cumulative counts to the bucket holding the rank
    /// `ceil(q·total)` observation and returns that bucket's upper edge
    /// (clamped to the recorded maximum), so the estimate lands in the
    /// same bucket as the true nearest-rank sample — i.e. it is accurate
    /// to within one bucket width.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Self::bucket_hi(i).min(self.max));
            }
        }
        unreachable!("cumulative count covers total")
    }
}

/// Mean relative error of `pred` vs `truth`: mean(|p−t| / max(|t|, eps)).
pub fn mean_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t.abs().max(eps))
        .sum();
    total / pred.len() as f64
}

/// Relative errors per element (used for mean/σ reporting in Table 3.2).
pub fn relative_errors(pred: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), truth.len());
    let eps = 1e-12;
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t.abs().max(eps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn percentile_empty() {
        // An empty set has no percentiles — the old 0.0 fallback would
        // publish a phantom p99 into benchmark snapshots.
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[], 0.99), None);
        assert_eq!(median(&[]), None);
        assert_eq!(Log2Histogram::new().percentile(0.99), None);
        assert_eq!(Log2Histogram::new().mean(), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 0.5).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), Some(0.0));
        assert_eq!(percentile(&xs, 1.0), Some(10.0));
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn log2_histogram_bucket_edges() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 0);
        assert_eq!(Log2Histogram::bucket_index(2), 1);
        assert_eq!(Log2Histogram::bucket_index(3), 1);
        assert_eq!(Log2Histogram::bucket_index(4), 2);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 63);
        for i in 0..LOG2_BUCKETS {
            assert_eq!(Log2Histogram::bucket_index(Log2Histogram::bucket_lo(i)), i);
            assert_eq!(Log2Histogram::bucket_index(Log2Histogram::bucket_hi(i)), i);
        }
    }

    #[test]
    fn log2_histogram_percentile_hits_nearest_rank_bucket() {
        let samples: Vec<u64> = vec![3, 5, 9, 17, 33, 65, 129, 1025];
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.total(), samples.len() as u64);
        assert_eq!(h.max(), 1025);
        for &(q, want) in &[(0.0, 3u64), (0.5, 17), (0.99, 1025), (1.0, 1025)] {
            let rank_bucket = Log2Histogram::bucket_index(want);
            let est = h.percentile(q).unwrap();
            assert_eq!(
                Log2Histogram::bucket_index(est),
                rank_bucket,
                "q={q}: estimate {est} not in bucket of nearest-rank sample {want}"
            );
        }
    }

    #[test]
    fn log2_histogram_merge_sums_counts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(10);
        a.record(100);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max(), 1000);
        assert!((a.mean().unwrap() - (10.0 + 100.0 + 1000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.1);
        h.add(0.3);
        h.add(0.9);
        h.add(-5.0); // clamped into first bin
        h.add(2.0); // clamped into last bin
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_survival_is_nonincreasing() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..50 {
            h.add(i as f64 / 50.0);
        }
        let s = h.survival();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(s[0], 50);
    }

    #[test]
    fn bin_center_midpoints() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mre_basics() {
        let e = mean_relative_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((e - 0.05).abs() < 1e-9);
    }
}
