//! Summary statistics used by experiments and estimators.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation percentile, `q` in `[0, 1]`. Sorts a copy.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Values outside the range are clamped into the first/last bucket, which is
/// the behavior wanted for similarity values that may be exactly `hi`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Cumulative count of observations at or above each bucket's lower
    /// edge, i.e. a survival curve. `survival()[i]` = #observations in
    /// buckets `i..`. This is exactly the shape of the Cumulative APSS
    /// Graph (§2.1) when buckets are similarity thresholds.
    pub fn survival(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.counts.len()];
        let mut acc = 0u64;
        for i in (0..self.counts.len()).rev() {
            acc += self.counts[i];
            out[i] = acc;
        }
        out
    }
}

/// Mean relative error of `pred` vs `truth`: mean(|p−t| / max(|t|, eps)).
pub fn mean_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t.abs().max(eps))
        .sum();
    total / pred.len() as f64
}

/// Relative errors per element (used for mean/σ reporting in Table 3.2).
pub fn relative_errors(pred: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), truth.len());
    let eps = 1e-12;
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t.abs().max(eps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.1);
        h.add(0.3);
        h.add(0.9);
        h.add(-5.0); // clamped into first bin
        h.add(2.0); // clamped into last bin
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_survival_is_nonincreasing() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..50 {
            h.add(i as f64 / 50.0);
        }
        let s = h.survival();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(s[0], 50);
    }

    #[test]
    fn bin_center_midpoints() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mre_basics() {
        let e = mean_relative_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((e - 0.05).abs() < 1e-9);
    }
}
