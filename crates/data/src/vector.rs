//! Sparse vector representation used throughout PLASMA-HD.
//!
//! Records are stored as sorted `(dimension, weight)` pairs. The paper's
//! datasets range from dense 13-dimensional UCI tables to 47k-dimensional
//! TF-IDF document vectors; a single sorted-pair representation serves both
//! since dense data simply has one entry per dimension.

/// A sparse vector: strictly increasing dimension indices with `f64` weights.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    dims: Vec<u32>,
    weights: Vec<f64>,
}

impl SparseVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from unsorted `(dim, weight)` pairs.
    ///
    /// Pairs are sorted by dimension; duplicate dimensions have their
    /// weights summed; zero weights are dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(d, _)| d);
        let mut dims = Vec::with_capacity(pairs.len());
        let mut weights = Vec::with_capacity(pairs.len());
        for (d, w) in pairs {
            if w == 0.0 {
                continue;
            }
            if dims.last() == Some(&d) {
                *weights.last_mut().expect("weights parallel to dims") += w;
            } else {
                dims.push(d);
                weights.push(w);
            }
        }
        Self { dims, weights }
    }

    /// Builds a dense vector: entry `i` gets weight `values[i]`.
    pub fn from_dense(values: &[f64]) -> Self {
        let pairs = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        Self::from_pairs(pairs)
    }

    /// Builds an unweighted set vector (weight 1.0 for each member).
    pub fn from_set(mut members: Vec<u32>) -> Self {
        members.sort_unstable();
        members.dedup();
        let weights = vec![1.0; members.len()];
        Self {
            dims: members,
            weights,
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.dims.len()
    }

    /// True if the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Sorted dimension indices.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Weights parallel to [`dims`](Self::dims).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterates `(dim, weight)` pairs in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.dims.iter().copied().zip(self.weights.iter().copied())
    }

    /// Weight at `dim`, or 0.0 when absent.
    pub fn get(&self, dim: u32) -> f64 {
        match self.dims.binary_search(&dim) {
            Ok(i) => self.weights[i],
            Err(_) => 0.0,
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product via a linear merge of the two sorted dimension lists.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.dims.len() && j < other.dims.len() {
            match self.dims[i].cmp(&other.dims[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.weights[i] * other.weights[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Size of the intersection of the two dimension sets.
    pub fn intersection_size(&self, other: &SparseVector) -> usize {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0usize;
        while i < self.dims.len() && j < other.dims.len() {
            match self.dims[i].cmp(&other.dims[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Scales every weight so the vector has unit L2 norm.
    ///
    /// Vectors with zero norm are left unchanged.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for w in &mut self.weights {
                *w /= n;
            }
        }
    }

    /// Returns a unit-norm copy.
    pub fn normalized(&self) -> SparseVector {
        let mut v = self.clone();
        v.normalize();
        v
    }

    /// Largest dimension index plus one, or 0 for an empty vector.
    pub fn dim_bound(&self) -> u32 {
        self.dims.last().map_or(0, |d| d + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5), (2, 0.0)]);
        assert_eq!(v.dims(), &[1, 3]);
        assert_eq!(v.weights(), &[2.0, 1.5]);
    }

    #[test]
    fn from_dense_skips_zeros() {
        let v = SparseVector::from_dense(&[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(v.dims(), &[1, 3]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn from_set_dedups() {
        let v = SparseVector::from_set(vec![5, 1, 5, 2]);
        assert_eq!(v.dims(), &[1, 2, 5]);
        assert_eq!(v.weights(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn dot_of_disjoint_is_zero() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseVector::from_pairs(vec![(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn dot_matches_dense_computation() {
        let a = SparseVector::from_dense(&[1.0, 2.0, 3.0]);
        let b = SparseVector::from_dense(&[4.0, 5.0, 6.0]);
        assert!((a.dot(&b) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = SparseVector::from_dense(&[3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = SparseVector::new();
        v.normalize();
        assert!(v.is_empty());
    }

    #[test]
    fn get_present_and_absent() {
        let v = SparseVector::from_pairs(vec![(2, 7.0)]);
        assert_eq!(v.get(2), 7.0);
        assert_eq!(v.get(3), 0.0);
    }

    #[test]
    fn intersection_size_counts_common_dims() {
        let a = SparseVector::from_set(vec![1, 2, 3, 4]);
        let b = SparseVector::from_set(vec![3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
    }

    #[test]
    fn dim_bound_is_max_plus_one() {
        let v = SparseVector::from_set(vec![0, 9]);
        assert_eq!(v.dim_bound(), 10);
        assert_eq!(SparseVector::new().dim_bound(), 0);
    }
}
