//! Zipfian sampling for synthetic text corpora.
//!
//! Real term-frequency distributions are heavy-tailed; the corpus generators
//! standing in for RCV1/Wikipedia draw terms from Zipf(s) over a vocabulary,
//! which preserves the sparsity and near-duplicate structure BayesLSH's
//! pruning behavior depends on.

use rand::Rng;

/// Precomputed Zipf(s) sampler over ranks `0..n` (rank 0 most probable).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Samples one rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn head_ranks_dominate() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = seeded(11);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks should carry a large share of the mass.
        assert!(head as f64 / n as f64 > 0.35, "head share {head}/{n}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(50, 1.0);
        let mut rng = seeded(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn rank_frequencies_decay() {
        let z = Zipf::new(100, 1.2);
        let mut rng = seeded(17);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
    }
}
