//! Property tests for the data substrate's core invariants.

use proptest::prelude::*;

use plasma_data::similarity::{cosine, jaccard};
use plasma_data::stats::{mean, percentile, std_dev, Histogram, Log2Histogram};
use plasma_data::vector::SparseVector;

fn sparse_vec() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..500, -10.0f64..10.0), 0..40).prop_map(SparseVector::from_pairs)
}

fn item_set() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec(0u32..200, 0..40).prop_map(SparseVector::from_set)
}

proptest! {
    #[test]
    fn dot_is_symmetric(a in sparse_vec(), b in sparse_vec()) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
    }

    #[test]
    fn dot_with_self_is_norm_squared(a in sparse_vec()) {
        let n = a.norm();
        prop_assert!((a.dot(&a) - n * n).abs() < 1e-6 * (1.0 + n * n));
    }

    #[test]
    fn cosine_bounded_and_symmetric(a in sparse_vec(), b in sparse_vec()) {
        let s = cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert!((s - cosine(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn cosine_self_is_one_for_nonzero(a in sparse_vec()) {
        if a.norm() > 1e-9 {
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn jaccard_bounded_and_symmetric(a in item_set(), b in item_set()) {
        let s = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - jaccard(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_distance_satisfies_triangle_inequality(
        a in item_set(),
        b in item_set(),
        c in item_set()
    ) {
        // 1 − jaccard is a metric (Steinhaus); verify on random triples.
        let dab = 1.0 - jaccard(&a, &b);
        let dbc = 1.0 - jaccard(&b, &c);
        let dac = 1.0 - jaccard(&a, &c);
        prop_assert!(dac <= dab + dbc + 1e-9);
    }

    #[test]
    fn normalize_yields_unit_norm(a in sparse_vec()) {
        if a.norm() > 1e-9 {
            let n = a.normalized();
            prop_assert!((n.norm() - 1.0).abs() < 1e-9);
            // Direction preserved: cosine(a, normalized(a)) = 1.
            prop_assert!((cosine(&a, &n) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn intersection_size_bounds(a in item_set(), b in item_set()) {
        let i = a.intersection_size(&b);
        prop_assert!(i <= a.nnz().min(b.nnz()));
    }

    #[test]
    fn histogram_conserves_observations(values in proptest::collection::vec(-5.0f64..5.0, 0..200)) {
        let mut h = Histogram::new(-1.0, 1.0, 10);
        for &v in &values {
            h.add(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let surv = h.survival();
        prop_assert_eq!(surv.first().copied().unwrap_or(0), values.len() as u64);
    }

    #[test]
    fn percentile_is_monotone_in_q(values in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
        let p25 = percentile(&values, 0.25).unwrap();
        let p50 = percentile(&values, 0.5).unwrap();
        let p75 = percentile(&values, 0.75).unwrap();
        prop_assert!(p25 <= p50 + 1e-12);
        prop_assert!(p50 <= p75 + 1e-12);
    }

    #[test]
    fn log2_histogram_percentiles_match_raw_within_one_bucket(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..120),
        q in 0.0f64..1.0,
    ) {
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let est = h.percentile(q).unwrap();
        // The true nearest-rank sample: rank ceil(q·n) in the sorted order.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let raw = sorted[rank - 1];
        // Same log2 bucket == within one bucket width of the raw value.
        prop_assert_eq!(
            Log2Histogram::bucket_index(est),
            Log2Histogram::bucket_index(raw),
            "estimate {} vs raw nearest-rank {}", est, raw
        );
        // And the interpolating float percentile on the raw samples lies
        // within the same bucket's span (its two bracketing samples both
        // bound the bucket edge by construction of nearest rank).
        let floats: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        let interp = percentile(&floats, q).unwrap();
        prop_assert!(interp <= Log2Histogram::bucket_hi(Log2Histogram::bucket_index(sorted[sorted.len() - 1])) as f64);
    }

    #[test]
    fn std_dev_zero_iff_constant(x in -50.0f64..50.0, n in 2usize..20) {
        let values = vec![x; n];
        prop_assert!(std_dev(&values) < 1e-12);
        prop_assert!((mean(&values) - x).abs() < 1e-9);
    }
}
