//! Graph builders: similarity-threshold graphs and densifying series.
//!
//! Chapter 3 generates "a series of networks of increasing density from
//! real-world data … by connecting items with a decreasing similarity
//! threshold", with edge counts growing as `|E_i| = 2^i · N`. These
//! builders compute the exact pairwise similarities once, sort them, and
//! slice prefixes — so one `O(n²)` pass yields the entire series.

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

use crate::csr::Graph;

/// Exact similarity graph: all pairs with `sim ≥ threshold` are edges.
pub fn similarity_graph(records: &[SparseVector], measure: Similarity, threshold: f64) -> Graph {
    let edges: Vec<(u32, u32)> =
        plasma_data::similarity::all_pairs_exact(records, measure, threshold)
            .into_iter()
            .map(|(i, j, _)| (i, j))
            .collect();
    Graph::from_edges(records.len(), &edges)
}

/// All pair similarities sorted descending: `(similarity, i, j)`.
///
/// The backbone of a densifying series: the graph with `k` edges is the
/// first `k` entries.
pub fn sorted_pairs(records: &[SparseVector], measure: Similarity) -> Vec<(f64, u32, u32)> {
    let n = records.len();
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let s = measure.compute(&records[i], &records[j]);
            pairs.push((s, i as u32, j as u32));
        }
    }
    pairs.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("similarities are finite"));
    pairs
}

/// A series of graphs of strictly increasing edge counts over a fixed
/// vertex set, each a prefix of the similarity-sorted pair list.
pub struct DensifyingSeries {
    /// Number of vertices.
    pub n: usize,
    /// Pairs sorted by descending similarity.
    pub pairs: Vec<(f64, u32, u32)>,
}

impl DensifyingSeries {
    /// Precomputes the series backbone for a record set.
    pub fn new(records: &[SparseVector], measure: Similarity) -> Self {
        Self {
            n: records.len(),
            pairs: sorted_pairs(records, measure),
        }
    }

    /// Maximum possible edge count, `n·(n−1)/2`.
    pub fn max_edges(&self) -> usize {
        self.pairs.len()
    }

    /// Graph with (up to) the `k` highest-similarity edges.
    pub fn graph_with_edges(&self, k: usize) -> Graph {
        let k = k.min(self.pairs.len());
        let edges: Vec<(u32, u32)> = self.pairs[..k].iter().map(|&(_, i, j)| (i, j)).collect();
        Graph::from_edges(self.n, &edges)
    }

    /// Similarity threshold realized by the `k`-edge graph (the similarity
    /// of its weakest edge), or `1.0` when `k == 0`.
    pub fn threshold_for_edges(&self, k: usize) -> f64 {
        if k == 0 || self.pairs.is_empty() {
            1.0
        } else {
            self.pairs[k.min(self.pairs.len()) - 1].0
        }
    }

    /// The paper's geometric edge-count schedule `2^i · N`, `i = 0..`,
    /// truncated at the complete graph (whose count is appended last).
    pub fn geometric_schedule(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut k = self.n.max(1);
        while k < self.max_edges() {
            out.push(k);
            k *= 2;
        }
        out.push(self.max_edges());
        out
    }

    /// All pairwise similarity values (for distribution plots, Fig. 3.18).
    pub fn similarities(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(s, _, _)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<SparseVector> {
        vec![
            SparseVector::from_dense(&[1.0, 0.0]),
            SparseVector::from_dense(&[0.9, 0.1]),
            SparseVector::from_dense(&[0.0, 1.0]),
            SparseVector::from_dense(&[0.1, 0.9]),
        ]
    }

    #[test]
    fn similarity_graph_thresholds() {
        let g = similarity_graph(&records(), Similarity::Cosine, 0.95);
        // Only (0,1) and (2,3) are ≥ 0.95.
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn sorted_pairs_descending() {
        let ps = sorted_pairs(&records(), Similarity::Cosine);
        assert_eq!(ps.len(), 6);
        for w in ps.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn series_prefix_matches_threshold_graph() {
        let recs = records();
        let series = DensifyingSeries::new(&recs, Similarity::Cosine);
        let g2 = series.graph_with_edges(2);
        let t = series.threshold_for_edges(2);
        let gt = similarity_graph(&recs, Similarity::Cosine, t);
        assert_eq!(g2.m(), gt.m());
    }

    #[test]
    fn geometric_schedule_doubles_and_caps() {
        let recs: Vec<SparseVector> = (0..20)
            .map(|i| SparseVector::from_dense(&[1.0, i as f64 * 0.05]))
            .collect();
        let series = DensifyingSeries::new(&recs, Similarity::Cosine);
        let sched = series.geometric_schedule();
        assert_eq!(sched[0], 20);
        assert_eq!(sched[1], 40);
        assert_eq!(*sched.last().expect("non-empty"), 190);
        for w in sched.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn graph_with_edges_clamps() {
        let recs = records();
        let series = DensifyingSeries::new(&recs, Similarity::Cosine);
        let g = series.graph_with_edges(1_000);
        assert_eq!(g.m(), 6);
    }
}
