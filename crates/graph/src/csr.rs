//! Compressed sparse row (CSR) undirected graph.
//!
//! Immutable after construction; neighbor lists are sorted, enabling
//! merge-based triangle counting and `O(log d)` adjacency tests.

/// An undirected simple graph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    /// Self-loops are dropped; duplicate edges are merged.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            debug_assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        Self::from_adjacency(adj)
    }

    /// Builds from per-vertex adjacency lists (symmetry is enforced by the
    /// caller for `from_edges`; this constructor sorts and dedups only).
    pub fn from_adjacency(mut adj: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0u32);
        let total: usize = adj.iter().map(|a| a.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbor list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether edge `(u, v)` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Edge density `2m / (n(n−1))`.
    pub fn density(&self) -> f64 {
        let n = self.n() as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.m() as f64 / (n * (n - 1.0))
        }
    }

    /// Induced subgraph on the given (sorted or unsorted) vertex set;
    /// returns the subgraph and the mapping from new ids to old ids.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let mut order: Vec<u32> = vertices.to_vec();
        order.sort_unstable();
        order.dedup();
        let mut remap = plasma_data::hash::FxHashMap::default();
        for (new, &old) in order.iter().enumerate() {
            remap.insert(old, new as u32);
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); order.len()];
        for (new, &old) in order.iter().enumerate() {
            for &nb in self.neighbors(old) {
                if let Some(&nn) = remap.get(&nb) {
                    adj[new].push(nn);
                }
            }
        }
        (Graph::from_adjacency(adj), order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolate() -> Graph {
        // 0-1-2 triangle, 3 isolated.
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_isolate();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn duplicate_and_self_edges_cleaned() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn has_edge_symmetry() {
        let g = triangle_plus_isolate();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_unique() {
        let g = triangle_plus_isolate();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle_plus_isolate();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1); // only 0-1 survives
        assert_eq!(map, vec![0, 1, 3]);
    }
}
