//! Reference graph generators: Erdős–Rényi, preferential attachment, and
//! random geometric — the three models Chapter 3 contrasts real data with
//! ("to focus our study we restrict ourselves to the three more intuitive
//! and widely known models of ER, PA, and Geom"). Each model exposes a
//! *target edge count* parameterization because the growth study's only
//! requirement is "the ability to control approximate edge count".

use rand::Rng;

use plasma_data::hash::FxHashSet;
use plasma_data::rng;

use crate::csr::Graph;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.min(max_m);
    let mut chosen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut edges = Vec::with_capacity(m);
    // Dense case: enumerate and sample; sparse case: rejection-sample.
    if m * 3 > max_m && n <= 4000 {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_m);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                all.push((i, j));
            }
        }
        for k in 0..m {
            let swap = rng.gen_range(k..all.len());
            all.swap(k, swap);
        }
        all.truncate(m);
        edges = all;
    } else {
        while edges.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if chosen.insert(key) {
                edges.push(key);
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Preferential attachment targeting roughly `m_target` edges: vertices
/// arrive one at a time and attach `k ≈ m_target / n` edges to endpoints
/// sampled proportionally to degree (Barabási–Albert).
pub fn preferential_attachment<R: Rng>(n: usize, m_target: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "preferential attachment needs at least 2 vertices");
    let k = (m_target / n.max(1)).max(1);
    let mut pool: Vec<u32> = Vec::with_capacity(m_target * 2 + 4);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_target + n);
    // Seed: a single edge.
    edges.push((0, 1));
    pool.extend_from_slice(&[0, 1]);
    for v in 2..n as u32 {
        let mut targets: FxHashSet<u32> = FxHashSet::default();
        let mut guard = 0;
        while targets.len() < k.min(v as usize) && guard < 20 * k {
            guard += 1;
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    // Top up with preferential extra edges to approach m_target.
    let mut have: FxHashSet<(u32, u32)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    let mut guard = 0;
    while have.len() < m_target && guard < m_target * 20 {
        guard += 1;
        let u = pool[rng.gen_range(0..pool.len())];
        let v = pool[rng.gen_range(0..pool.len())];
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if have.insert(key) {
            pool.push(u);
            pool.push(v);
        }
    }
    let final_edges: Vec<(u32, u32)> = have.into_iter().collect();
    Graph::from_edges(n, &final_edges)
}

/// Random geometric graph on the unit square with exactly (up to ties) the
/// `m` closest pairs connected — equivalent to choosing the radius that
/// yields `m` edges, which is how the growth study controls density.
pub fn random_geometric<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    geometric_from_points(&pts, m)
}

/// Geometric graph from fixed points: connect the `m` closest pairs.
pub fn geometric_from_points(pts: &[(f64, f64)], m: usize) -> Graph {
    let n = pts.len();
    let mut pairs: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            pairs.push((dx * dx + dy * dy, i as u32, j as u32));
        }
    }
    let m = m.min(pairs.len());
    if m > 0 {
        let nth = m - 1;
        pairs.select_nth_unstable_by(nth, |a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    }
    let edges: Vec<(u32, u32)> = pairs[..m].iter().map(|&(_, i, j)| (i, j)).collect();
    Graph::from_edges(n, &edges)
}

/// LFR-style planted-partition benchmark graph: power-law-ish degrees with
/// a configurable fraction `mu` of inter-community edges. Returns the graph
/// and ground-truth community labels (§2.3.4 uses LFR networks to generate
/// clusterable vector data).
pub fn lfr_like(
    n: usize,
    communities: usize,
    avg_degree: usize,
    mu: f64,
    seed: u64,
) -> (Graph, Vec<u32>) {
    let mut rng = rng::seeded(seed);
    let labels: Vec<u32> = (0..n).map(|i| (i % communities) as u32).collect();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); communities];
    for (i, &c) in labels.iter().enumerate() {
        members[c as usize].push(i as u32);
    }
    let mut have: FxHashSet<(u32, u32)> = FxHashSet::default();
    let target_m = n * avg_degree / 2;
    let mut guard = 0;
    while have.len() < target_m && guard < target_m * 50 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        // Power-law-ish: square the uniform to bias toward low indices
        // within the chosen pool, giving hubs.
        let v = if rng.gen::<f64>() < mu {
            rng.gen_range(0..n as u32)
        } else {
            let pool = &members[labels[u as usize] as usize];
            let t = rng.gen::<f64>();
            pool[((t * t) * pool.len() as f64) as usize]
        };
        if u == v {
            continue;
        }
        have.insert((u.min(v), u.max(v)));
    }
    let edges: Vec<(u32, u32)> = have.into_iter().collect();
    (Graph::from_edges(n, &edges), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::rng::seeded;

    #[test]
    fn er_hits_edge_target() {
        let mut rng = seeded(1);
        let g = erdos_renyi(100, 300, &mut rng);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 300);
    }

    #[test]
    fn er_dense_path() {
        let mut rng = seeded(2);
        let g = erdos_renyi(40, 700, &mut rng); // max is 780 → dense path
        assert_eq!(g.m(), 700);
    }

    #[test]
    fn er_caps_at_complete() {
        let mut rng = seeded(3);
        let g = erdos_renyi(10, 1000, &mut rng);
        assert_eq!(g.m(), 45);
    }

    #[test]
    fn pa_produces_hubs() {
        let mut rng = seeded(4);
        let g = preferential_attachment(500, 1500, &mut rng);
        let mut degs: Vec<usize> = (0..500).map(|v| g.degree(v as u32)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let mean = 2.0 * g.m() as f64 / 500.0;
        assert!(
            degs[0] as f64 > 3.0 * mean,
            "hub degree {} vs mean {mean}",
            degs[0]
        );
        // Edge count within 20% of target.
        assert!(
            (g.m() as f64 - 1500.0).abs() / 1500.0 < 0.2,
            "m = {}",
            g.m()
        );
    }

    #[test]
    fn geometric_connects_closest_pairs() {
        let pts = vec![(0.0, 0.0), (0.01, 0.0), (0.5, 0.5), (0.51, 0.5), (0.9, 0.9)];
        let g = geometric_from_points(&pts, 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn random_geometric_edge_count() {
        let mut rng = seeded(5);
        let g = random_geometric(80, 200, &mut rng);
        assert_eq!(g.m(), 200);
    }

    #[test]
    fn lfr_like_is_assortative() {
        let (g, labels) = lfr_like(400, 4, 10, 0.1, 6);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > inter * 3,
            "low mu must give mostly intra-community edges ({intra} vs {inter})"
        );
    }
}
