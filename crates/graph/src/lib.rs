//! Graph substrate for PLASMA-HD.
//!
//! PLASMA-HD turns a high-dimensional dataset into a similarity graph and
//! interrogates it with network-analytic measures. This crate provides the
//! CSR graph type, builders (edge lists, similarity thresholds, densifying
//! series), the measure suite of Chapter 3 (triangles, cliques, cores,
//! components, diameter, betweenness, spectra, …) and the reference
//! generators (Erdős–Rényi, preferential attachment, random geometric)
//! Chapter 3 compares real data against.

pub mod builders;
pub mod csr;
pub mod generators;
pub mod measures;

pub use csr::Graph;
pub use measures::MeasureKind;
