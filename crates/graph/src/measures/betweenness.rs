//! Betweenness centrality (Brandes' algorithm), exact and pivot-sampled.
//!
//! Chapter 2 classes betweenness among the "complex global measures …
//! using sampling & regression"; the sampled variant runs Brandes'
//! dependency accumulation from `k` random pivots and rescales, the
//! standard unbiased estimator.

use rand::Rng;

use crate::csr::Graph;

/// Accumulates Brandes dependencies from a single source into `bc`.
fn accumulate_from(g: &Graph, s: u32, bc: &mut [f64]) {
    let n = g.n();
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    sigma[s as usize] = 1.0;
    dist[s as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        stack.push(v);
        for &w in g.neighbors(v) {
            if dist[w as usize] < 0 {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
            if dist[w as usize] == dist[v as usize] + 1 {
                sigma[w as usize] += sigma[v as usize];
                preds[w as usize].push(v);
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    while let Some(w) = stack.pop() {
        for &v in &preds[w as usize] {
            delta[v as usize] += sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
        }
        if w != s {
            bc[w as usize] += delta[w as usize];
        }
    }
}

/// Exact betweenness centrality of every vertex, normalized by
/// `(n−1)(n−2)` (undirected convention, matching NetworkX).
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.n();
    let mut bc = vec![0.0f64; n];
    for s in 0..n as u32 {
        accumulate_from(g, s, &mut bc);
    }
    normalize(&mut bc, n, 1.0);
    bc
}

/// Pivot-sampled betweenness: Brandes from `k` random sources, scaled by
/// `n / k`.
pub fn betweenness_sampled<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<f64> {
    let n = g.n();
    let mut bc = vec![0.0f64; n];
    if n == 0 {
        return bc;
    }
    let k = k.clamp(1, n);
    let pivots = plasma_data::rng::sample_without_replacement(rng, n, k);
    for &s in &pivots {
        accumulate_from(g, s, &mut bc);
    }
    normalize(&mut bc, n, n as f64 / k as f64);
    bc
}

fn normalize(bc: &mut [f64], n: usize, scale: f64) {
    if n > 2 {
        // Each undirected pair counted twice; standard 1/((n−1)(n−2)).
        let norm = scale / ((n as f64 - 1.0) * (n as f64 - 2.0));
        for b in bc.iter_mut() {
            *b *= norm;
        }
    } else {
        for b in bc.iter_mut() {
            *b = 0.0;
        }
    }
}

/// Mean exact betweenness centrality.
pub fn mean_betweenness(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    betweenness(g).iter().sum::<f64>() / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::rng::seeded;

    #[test]
    fn path_center_has_max_betweenness() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = betweenness(&g);
        assert!(bc[2] > bc[1]);
        assert!(bc[1] > bc[0]);
        assert!((bc[0] - 0.0).abs() < 1e-12);
        // Middle of P5: 2 lies on {0,1}×{3,4} + (0,3),(1,4),(0,4)... exact
        // value: pairs through 2 = (0,3),(0,4),(1,3),(1,4) = 4 of 6 pairs
        // per direction → normalized 4/((4)(3)/2)/... check against 2/3.
        assert!((bc[2] - 4.0 / 6.0).abs() < 1e-9, "bc[2] = {}", bc[2]);
    }

    #[test]
    fn star_hub_betweenness_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = betweenness(&g);
        assert!((bc[0] - 1.0).abs() < 1e-9, "hub bc {}", bc[0]);
        assert!(bc[1].abs() < 1e-12);
    }

    #[test]
    fn complete_graph_betweenness_zero() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges);
        assert!(mean_betweenness(&g).abs() < 1e-12);
    }

    #[test]
    fn sampled_with_all_pivots_matches_exact() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]);
        let exact = betweenness(&g);
        let mut rng = seeded(1);
        let sampled = betweenness_sampled(&g, 6, &mut rng);
        for (e, s) in exact.iter().zip(&sampled) {
            assert!((e - s).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_estimator_is_close_on_average() {
        use crate::generators::erdos_renyi;
        let mut rng = seeded(2);
        let g = erdos_renyi(80, 240, &mut rng);
        let exact = mean_betweenness(&g);
        let sampled: f64 = {
            let bc = betweenness_sampled(&g, 40, &mut rng);
            bc.iter().sum::<f64>() / bc.len() as f64
        };
        assert!(
            (exact - sampled).abs() < exact.max(0.01) * 0.5,
            "exact {exact} vs sampled {sampled}"
        );
    }
}
