//! Maximal clique enumeration (Bron–Kerbosch with pivoting) and the
//! clique-distribution "density plot" visual cue.
//!
//! Fig. 2.5c's triangle/clique *density plot* visualizes the clique
//! distribution of a graph; flat peaks indicate potential cliques (§2.2.3).
//! Enumeration is budgeted: on pathological inputs the walk stops after a
//! configurable number of recursion steps and reports a partial count
//! (saturating), which keeps the measure sweep's runtime bounded exactly
//! like the paper's timeout-based harness.

use crate::csr::Graph;

/// Result of a budgeted clique enumeration.
#[derive(Debug, Clone)]
pub struct CliqueStats {
    /// Number of maximal cliques found.
    pub count: u64,
    /// Size of the largest clique found.
    pub max_size: u32,
    /// Histogram: `sizes[k]` = number of maximal cliques of size `k`.
    pub size_histogram: Vec<u64>,
    /// True if the enumeration budget was exhausted (results are lower
    /// bounds).
    pub truncated: bool,
}

/// Enumerates maximal cliques with a recursion budget.
pub fn maximal_cliques(g: &Graph, budget: u64) -> CliqueStats {
    let n = g.n();
    let mut stats = CliqueStats {
        count: 0,
        max_size: 0,
        size_histogram: vec![0; 4],
        truncated: false,
    };
    if n == 0 {
        return stats;
    }
    // Degeneracy ordering shrinks the candidate sets (standard trick).
    let order = degeneracy_order(g);
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    let mut budget_left = budget;
    for &v in &order {
        let mut p: Vec<u32> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] > rank[v as usize])
            .collect();
        let mut x: Vec<u32> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] < rank[v as usize])
            .collect();
        let mut r = vec![v];
        bron_kerbosch(g, &mut r, &mut p, &mut x, &mut stats, &mut budget_left);
        if budget_left == 0 {
            stats.truncated = true;
            break;
        }
    }
    stats
}

fn bron_kerbosch(
    g: &Graph,
    r: &mut Vec<u32>,
    p: &mut Vec<u32>,
    x: &mut Vec<u32>,
    stats: &mut CliqueStats,
    budget: &mut u64,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if p.is_empty() && x.is_empty() {
        stats.count += 1;
        let k = r.len() as u32;
        if k > stats.max_size {
            stats.max_size = k;
        }
        if stats.size_histogram.len() <= k as usize {
            stats.size_histogram.resize(k as usize + 1, 0);
        }
        stats.size_histogram[k as usize] += 1;
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.has_edge(u, w)).count())
        .expect("P ∪ X non-empty here");
    let candidates: Vec<u32> = p
        .iter()
        .copied()
        .filter(|&u| !g.has_edge(pivot, u))
        .collect();
    for u in candidates {
        let np: Vec<u32> = p.iter().copied().filter(|&w| g.has_edge(u, w)).collect();
        let nx: Vec<u32> = x.iter().copied().filter(|&w| g.has_edge(u, w)).collect();
        r.push(u);
        let (mut np, mut nx) = (np, nx);
        bron_kerbosch(g, r, &mut np, &mut nx, stats, budget);
        r.pop();
        p.retain(|&w| w != u);
        x.push(u);
        if *budget == 0 {
            return;
        }
    }
}

/// Degeneracy (min-degree peeling) order.
fn degeneracy_order(g: &Graph) -> Vec<u32> {
    let cores = super::cores::core_numbers(g);
    let mut order: Vec<u32> = (0..g.n() as u32).collect();
    order.sort_unstable_by_key(|&v| (cores[v as usize], v));
    order
}

/// Clique number (size of the largest clique), budgeted.
pub fn clique_number(g: &Graph) -> u32 {
    maximal_cliques(g, DEFAULT_BUDGET).max_size
}

/// Number of maximal cliques, budgeted.
pub fn count_maximal_cliques(g: &Graph) -> u64 {
    maximal_cliques(g, DEFAULT_BUDGET).count
}

/// Default recursion budget for the measure sweep.
pub const DEFAULT_BUDGET: u64 = 3_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn complete_graph_single_clique() {
        let stats = maximal_cliques(&complete(6), DEFAULT_BUDGET);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.max_size, 6);
        assert!(!stats.truncated);
    }

    #[test]
    fn triangle_plus_edge() {
        // Triangle {0,1,2} and maximal edge {2,3}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let stats = maximal_cliques(&g, DEFAULT_BUDGET);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.max_size, 3);
        assert_eq!(stats.size_histogram[2], 1);
        assert_eq!(stats.size_histogram[3], 1);
    }

    #[test]
    fn edgeless_graph_singletons() {
        let g = Graph::from_edges(3, &[]);
        let stats = maximal_cliques(&g, DEFAULT_BUDGET);
        // Each isolated vertex is a maximal 1-clique.
        assert_eq!(stats.count, 3);
        assert_eq!(stats.max_size, 1);
    }

    #[test]
    fn moon_moser_counts() {
        // K_{3,3,3} complement-style: 3 groups of 3, edges between groups
        // only → 27 maximal cliques (one per cross-group triple).
        let mut edges = Vec::new();
        for a in 0..3u32 {
            for b in 3..6u32 {
                edges.push((a, b));
            }
        }
        for a in 0..3u32 {
            for c in 6..9u32 {
                edges.push((a, c));
            }
        }
        for b in 3..6u32 {
            for c in 6..9u32 {
                edges.push((b, c));
            }
        }
        let g = Graph::from_edges(9, &edges);
        let stats = maximal_cliques(&g, DEFAULT_BUDGET);
        assert_eq!(stats.count, 27);
        assert_eq!(stats.max_size, 3);
    }

    #[test]
    fn budget_truncation_flags() {
        let g = complete(12);
        let stats = maximal_cliques(&g, 2);
        assert!(stats.truncated);
    }

    #[test]
    fn clique_number_of_random_graph_at_least_triangle() {
        use crate::generators::erdos_renyi;
        let mut rng = plasma_data::rng::seeded(8);
        let g = erdos_renyi(40, 200, &mut rng);
        if super::super::triangles::count_triangles(&g) > 0 {
            assert!(clique_number(&g) >= 3);
        }
    }
}
