//! Community-quality measures: modularity and conductance.
//!
//! PLASMA-HD's whole premise is that some thresholds reveal "clusterable"
//! graphs; these are the standard quantities for scoring a candidate
//! partition against the similarity graph (used by the Fig. 2.2-style
//! analyses and available to downstream users evaluating the communities
//! a probe exposes).

use crate::csr::Graph;

/// Newman modularity of a vertex partition:
/// `Q = Σ_c (e_c/m − (deg_c / 2m)²)` where `e_c` is the number of
/// intra-community edges and `deg_c` the total degree of community `c`.
/// Returns 0 for empty graphs.
pub fn modularity(g: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.n(), "one label per vertex");
    let m = g.m() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x as usize + 1);
    let mut intra = vec![0u64; k];
    let mut degree = vec![0u64; k];
    for v in 0..g.n() as u32 {
        degree[labels[v as usize] as usize] += g.degree(v) as u64;
    }
    for (u, v) in g.edges() {
        if labels[u as usize] == labels[v as usize] {
            intra[labels[u as usize] as usize] += 1;
        }
    }
    (0..k)
        .map(|c| {
            let e_c = intra[c] as f64 / m;
            let d_c = degree[c] as f64 / (2.0 * m);
            e_c - d_c * d_c
        })
        .sum()
}

/// Conductance of a vertex set: `cut(S, V∖S) / min(vol(S), vol(V∖S))`.
/// Lower is better (a well-separated cluster). Returns 1.0 when either
/// side has zero volume.
pub fn conductance(g: &Graph, set: &[u32]) -> f64 {
    let member: plasma_data::hash::FxHashSet<u32> = set.iter().copied().collect();
    let mut cut = 0u64;
    let mut vol_in = 0u64;
    let mut vol_out = 0u64;
    for v in 0..g.n() as u32 {
        let inside = member.contains(&v);
        let d = g.degree(v) as u64;
        if inside {
            vol_in += d;
        } else {
            vol_out += d;
        }
        if inside {
            for &u in g.neighbors(v) {
                if !member.contains(&u) {
                    cut += 1;
                }
            }
        }
    }
    let denom = vol_in.min(vol_out);
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

/// Mean conductance over the communities of a labeling — a scalar
/// "clusterability at this threshold" summary.
pub fn mean_conductance(g: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.n());
    let k = labels.iter().copied().max().map_or(0, |x| x as usize + 1);
    if k == 0 {
        return 1.0;
    }
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (v, &l) in labels.iter().enumerate() {
        members[l as usize].push(v as u32);
    }
    let present: Vec<&Vec<u32>> = members.iter().filter(|m| !m.is_empty()).collect();
    if present.is_empty() {
        return 1.0;
    }
    present.iter().map(|m| conductance(g, m)).sum::<f64>() / present.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one edge.
    fn barbell() -> (Graph, Vec<u32>) {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        (g, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn barbell_modularity_is_high_for_true_partition() {
        let (g, labels) = barbell();
        let q = modularity(&g, &labels);
        assert!(q > 0.3, "true partition modularity {q}");
        // Random-ish partition scores worse.
        let bad = vec![0, 1, 0, 1, 0, 1];
        assert!(modularity(&g, &bad) < q);
    }

    #[test]
    fn single_community_modularity_is_zero() {
        let (g, _) = barbell();
        let one = vec![0u32; 6];
        assert!(modularity(&g, &one).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_good_cluster_is_low() {
        let (g, _) = barbell();
        let c = conductance(&g, &[0, 1, 2]);
        // One cut edge over volume 7.
        assert!((c - 1.0 / 7.0).abs() < 1e-12, "conductance {c}");
    }

    #[test]
    fn conductance_of_random_half_is_higher() {
        let (g, _) = barbell();
        let good = conductance(&g, &[0, 1, 2]);
        let bad = conductance(&g, &[0, 3, 5]);
        assert!(bad > good);
    }

    #[test]
    fn conductance_degenerate_sets() {
        let (g, _) = barbell();
        assert_eq!(conductance(&g, &[]), 1.0);
        let all: Vec<u32> = (0..6).collect();
        assert_eq!(conductance(&g, &all), 1.0);
    }

    #[test]
    fn mean_conductance_tracks_partition_quality() {
        let (g, labels) = barbell();
        let good = mean_conductance(&g, &labels);
        let bad = mean_conductance(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(good < bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn empty_graph_is_neutral() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(modularity(&g, &[]), 0.0);
        assert_eq!(mean_conductance(&g, &[]), 1.0);
    }
}
