//! Connected components via union–find with path halving + union by size.

use crate::csr::Graph;

/// Disjoint-set forest over vertex ids.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x` (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

fn build_uf(g: &Graph) -> UnionFind {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf
}

/// Number of connected components (isolated vertices count).
pub fn count_components(g: &Graph) -> usize {
    let mut uf = build_uf(g);
    let mut roots = plasma_data::hash::FxHashSet::default();
    for v in 0..g.n() as u32 {
        roots.insert(uf.find(v));
    }
    roots.len()
}

/// Vertex count of the largest connected component (0 for empty graphs).
pub fn largest_component_size(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let mut uf = build_uf(g);
    (0..g.n() as u32)
        .map(|v| uf.set_size(v) as usize)
        .max()
        .unwrap_or(0)
}

/// Vertex ids of the largest connected component.
pub fn largest_component(g: &Graph) -> Vec<u32> {
    if g.n() == 0 {
        return Vec::new();
    }
    let mut uf = build_uf(g);
    let best_root = (0..g.n() as u32)
        .max_by_key(|&v| uf.set_size(v))
        .expect("non-empty graph");
    let best_root = uf.find(best_root);
    (0..g.n() as u32)
        .filter(|&v| uf.find(v) == best_root)
        .collect()
}

/// Component label per vertex (labels are arbitrary but consistent).
pub fn component_labels(g: &Graph) -> Vec<u32> {
    let mut uf = build_uf(g);
    let mut next = 0u32;
    let mut remap = plasma_data::hash::FxHashMap::default();
    (0..g.n() as u32)
        .map(|v| {
            let r = uf.find(v);
            *remap.entry(r).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_and_isolate() -> Graph {
        Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn counts_components() {
        assert_eq!(count_components(&two_triangles_and_isolate()), 3);
    }

    #[test]
    fn largest_component_of_tie_is_three() {
        assert_eq!(largest_component_size(&two_triangles_and_isolate()), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(count_components(&g), 0);
        assert_eq!(largest_component_size(&g), 0);
    }

    #[test]
    fn edgeless_graph_components() {
        let g = Graph::from_edges(5, &[]);
        assert_eq!(count_components(&g), 5);
        assert_eq!(largest_component_size(&g), 1);
    }

    #[test]
    fn labels_are_consistent() {
        let g = two_triangles_and_isolate();
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
    }

    #[test]
    fn largest_component_members() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let comp = largest_component(&g);
        assert_eq!(comp, vec![0, 1, 2]);
    }
}
