//! k-core decomposition (Batagelj–Zaveršnik bucket peeling, `O(n + m)`).

use crate::csr::Graph;

/// Core number of every vertex: the largest `k` such that the vertex
/// belongs to a subgraph where all degrees are ≥ `k`.
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0u32; n];
    let mut vert = vec![0u32; n];
    let mut fill = bin.clone();
    for v in 0..n as u32 {
        let d = degree[v as usize] as usize;
        pos[v as usize] = fill[d];
        vert[fill[d] as usize] = v;
        fill[d] += 1;
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = degree[v as usize];
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bin[du];
                let w = vert[pw as usize];
                if u != w {
                    vert.swap(pu as usize, pw as usize);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Mean core number over all vertices.
pub fn mean_core_number(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    core_numbers(g).iter().map(|&c| c as f64).sum::<f64>() / g.n() as f64
}

/// Maximum core number (degeneracy).
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (core 2), tail 2-3 (vertex 3 core 1).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn path_graph_cores_are_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn complete_graph_cores() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, &edges);
        assert!(core_numbers(&g).iter().all(|&c| c == 5));
        assert!((mean_core_number(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(mean_core_number(&g), 0.0);
    }

    #[test]
    fn core_le_degree_invariant() {
        use crate::generators::erdos_renyi;
        let mut rng = plasma_data::rng::seeded(4);
        let g = erdos_renyi(60, 240, &mut rng);
        let cores = core_numbers(&g);
        for v in 0..g.n() as u32 {
            assert!(cores[v as usize] <= g.degree(v) as u32);
        }
    }
}
