//! Degree-based measures.

use crate::csr::Graph;

/// Degree of each vertex.
pub fn degrees(g: &Graph) -> Vec<u32> {
    (0..g.n() as u32).map(|v| g.degree(v) as u32).collect()
}

/// Mean degree.
pub fn mean_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        2.0 * g.m() as f64 / g.n() as f64
    }
}

/// Mean degree centrality: mean of `deg(v) / (n−1)`.
pub fn mean_degree_centrality(g: &Graph) -> f64 {
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    mean_degree(g) / (n as f64 - 1.0)
}

/// Average neighbor degree of each vertex (0 for isolated vertices).
pub fn average_neighbor_degree(g: &Graph) -> Vec<f64> {
    (0..g.n() as u32)
        .map(|v| {
            let ns = g.neighbors(v);
            if ns.is_empty() {
                0.0
            } else {
                ns.iter().map(|&u| g.degree(u) as f64).sum::<f64>() / ns.len() as f64
            }
        })
        .collect()
}

/// Mean over vertices of the average neighbor degree.
pub fn mean_average_neighbor_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    average_neighbor_degree(g).iter().sum::<f64>() / g.n() as f64
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<u32> {
    let degs = degrees(g);
    let max = degs.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u32; max + 1];
    for d in degs {
        hist[d as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn star_degrees() {
        let g = star();
        assert_eq!(degrees(&g), vec![4, 1, 1, 1, 1]);
        assert!((mean_degree(&g) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn star_neighbor_degrees() {
        let g = star();
        let and = average_neighbor_degree(&g);
        assert_eq!(and[0], 1.0); // hub's neighbors are leaves
        assert_eq!(and[1], 4.0); // leaf's neighbor is the hub
    }

    #[test]
    fn degree_centrality_of_complete_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((mean_degree_centrality(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_shape() {
        let g = star();
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn empty_graph_zeroes() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(mean_degree(&g), 0.0);
        assert_eq!(mean_average_neighbor_degree(&g), 0.0);
        assert_eq!(mean_degree_centrality(&g), 0.0);
    }
}
