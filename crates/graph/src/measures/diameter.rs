//! Diameter computation.
//!
//! Exact diameter needs all-pairs BFS (`O(n·m)`), which dominates the
//! measure-sweep runtime on dense graphs exactly as Fig. 3.19 shows. A
//! budgeted variant falls back to the double-sweep lower bound (BFS from a
//! far vertex of a far vertex) when `n·m` exceeds a work budget — the
//! standard approximation, exact on trees and very tight on real graphs.

use crate::csr::Graph;

/// BFS distances from `src` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of `src` within its component.
pub fn eccentricity(g: &Graph, src: u32) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Exact diameter of the component containing the given vertices
/// (all-pairs BFS over `vertices`).
fn exact_diameter_over(g: &Graph, vertices: &[u32]) -> u32 {
    vertices
        .iter()
        .map(|&v| eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound: BFS from `start`, then BFS from the farthest
/// vertex found.
pub fn double_sweep(g: &Graph, start: u32) -> u32 {
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as u32)
        .unwrap_or(start);
    eccentricity(g, far)
}

/// Diameter of the largest connected component: exact when the work bound
/// `|component| · m` permits, double-sweep estimate otherwise.
pub fn diameter_of_largest_component(g: &Graph) -> u32 {
    diameter_with_budget(g, 40_000_000)
}

/// Diameter with an explicit work budget (vertex·edge product).
pub fn diameter_with_budget(g: &Graph, budget: u64) -> u32 {
    let comp = super::components::largest_component(g);
    if comp.len() < 2 {
        return 0;
    }
    let work = comp.len() as u64 * g.m().max(1) as u64;
    if work <= budget {
        exact_diameter_over(g, &comp)
    } else {
        double_sweep(g, comp[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_diameter() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(diameter_of_largest_component(&g), 4);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnected_takes_largest_component() {
        // Path of 4 (diameter 3) + edge (diameter 1).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        assert_eq!(diameter_of_largest_component(&g), 3);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        // A tree: double sweep is provably exact.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (1, 3), (3, 4), (4, 5), (4, 6)]);
        let exact = diameter_of_largest_component(&g);
        assert_eq!(double_sweep(&g, 0), exact);
    }

    #[test]
    fn budget_fallback_still_reasonable() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // Budget 0 forces double-sweep, which is exact on a path.
        assert_eq!(diameter_with_budget(&g, 0), 4);
    }

    #[test]
    fn singleton_diameter_zero() {
        let g = Graph::from_edges(1, &[]);
        assert_eq!(diameter_of_largest_component(&g), 0);
    }
}
