//! Graph analytic measures.
//!
//! The Chapter 3 growth study sweeps twelve measures over densifying graphs
//! (Figs. 3.19/3.20): average clustering, clique number, diameter,
//! eigenvalues, largest connected component, mean average-neighbor degree,
//! mean betweenness centrality, mean core number, mean degree centrality,
//! number of connected components, number of cliques, and triangles.
//! [`MeasureKind`] names them and dispatches; each lives in its own module.
//!
//! Complete graphs get analytic answers in constant time, mirroring §3.5's
//! "special exception to the usual rule that denser graphs take longer":
//! e.g. `C(n, 3)` triangles instead of enumeration.

pub mod betweenness;
pub mod cliques;
pub mod community;
pub mod components;
pub mod cores;
pub mod degree;
pub mod diameter;
pub mod spectral;
pub mod triangles;

use crate::csr::Graph;

/// The twelve measures of Figs. 3.19/3.20, in the paper's display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Mean local clustering coefficient.
    AverageClustering,
    /// Size of the largest clique.
    CliqueNumber,
    /// Diameter of the largest connected component.
    Diameter,
    /// Largest adjacency eigenvalue (power iteration).
    Eigenvalues,
    /// Vertex count of the largest connected component.
    LargestConnectedComponent,
    /// Mean over vertices of the mean degree of their neighbors.
    MeanAverageNeighborDegree,
    /// Mean betweenness centrality (Brandes).
    MeanBetweennessCentrality,
    /// Mean k-core number.
    MeanCoreNumber,
    /// Mean degree centrality `deg / (n−1)`.
    MeanDegreeCentrality,
    /// Number of connected components.
    NumberConnectedComponents,
    /// Number of maximal cliques (Bron–Kerbosch, budgeted).
    NumberOfCliques,
    /// Exact triangle count.
    Triangles,
}

impl MeasureKind {
    /// All twelve measures in paper order.
    pub fn all() -> [MeasureKind; 12] {
        use MeasureKind::*;
        [
            AverageClustering,
            CliqueNumber,
            Diameter,
            Eigenvalues,
            LargestConnectedComponent,
            MeanAverageNeighborDegree,
            MeanBetweennessCentrality,
            MeanCoreNumber,
            MeanDegreeCentrality,
            NumberConnectedComponents,
            NumberOfCliques,
            Triangles,
        ]
    }

    /// Display name matching the paper's subplot titles.
    pub fn name(self) -> &'static str {
        use MeasureKind::*;
        match self {
            AverageClustering => "Average Clustering",
            CliqueNumber => "Clique Number",
            Diameter => "Diameter",
            Eigenvalues => "Eigenvalues",
            LargestConnectedComponent => "Largest Connected Component",
            MeanAverageNeighborDegree => "Mean Average Neighbor Degree",
            MeanBetweennessCentrality => "Mean Betweenness Centrality",
            MeanCoreNumber => "Mean Core Number",
            MeanDegreeCentrality => "Mean Degree Centrality",
            NumberConnectedComponents => "Number Connected Components",
            NumberOfCliques => "Number Of Cliques",
            Triangles => "Triangles",
        }
    }

    /// Computes the measure, using the analytic shortcut on complete
    /// graphs.
    pub fn compute(self, g: &Graph) -> f64 {
        if let Some(v) = self.complete_graph_value(g) {
            return v;
        }
        use MeasureKind::*;
        match self {
            AverageClustering => triangles::average_clustering(g),
            CliqueNumber => cliques::clique_number(g) as f64,
            Diameter => diameter::diameter_of_largest_component(g) as f64,
            Eigenvalues => spectral::largest_eigenvalue(g),
            LargestConnectedComponent => components::largest_component_size(g) as f64,
            MeanAverageNeighborDegree => degree::mean_average_neighbor_degree(g),
            MeanBetweennessCentrality => betweenness::mean_betweenness(g),
            MeanCoreNumber => cores::mean_core_number(g),
            MeanDegreeCentrality => degree::mean_degree_centrality(g),
            NumberConnectedComponents => components::count_components(g) as f64,
            NumberOfCliques => cliques::count_maximal_cliques(g) as f64,
            Triangles => triangles::count_triangles(g) as f64,
        }
    }

    /// Analytic value on the complete graph, or `None` when `g` is not
    /// complete (or the measure has no worthwhile shortcut).
    pub fn complete_graph_value(self, g: &Graph) -> Option<f64> {
        let n = g.n();
        if n < 2 || g.m() != n * (n - 1) / 2 {
            return None;
        }
        let nf = n as f64;
        use MeasureKind::*;
        Some(match self {
            AverageClustering => 1.0,
            CliqueNumber => nf,
            Diameter => 1.0,
            Eigenvalues => nf - 1.0,
            LargestConnectedComponent => nf,
            MeanAverageNeighborDegree => nf - 1.0,
            MeanBetweennessCentrality => 0.0,
            MeanCoreNumber => nf - 1.0,
            MeanDegreeCentrality => 1.0,
            NumberConnectedComponents => 1.0,
            NumberOfCliques => 1.0,
            Triangles => nf * (nf - 1.0) * (nf - 2.0) / 6.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn analytic_matches_direct_on_complete_graph() {
        let g = complete(7);
        for kind in MeasureKind::all() {
            let analytic = kind
                .complete_graph_value(&g)
                .expect("complete graph must shortcut");
            // Recompute directly by bypassing the shortcut through the
            // individual measure functions.
            use MeasureKind::*;
            let direct = match kind {
                AverageClustering => triangles::average_clustering(&g),
                CliqueNumber => cliques::clique_number(&g) as f64,
                Diameter => diameter::diameter_of_largest_component(&g) as f64,
                Eigenvalues => spectral::largest_eigenvalue(&g),
                LargestConnectedComponent => components::largest_component_size(&g) as f64,
                MeanAverageNeighborDegree => degree::mean_average_neighbor_degree(&g),
                MeanBetweennessCentrality => betweenness::mean_betweenness(&g),
                MeanCoreNumber => cores::mean_core_number(&g),
                MeanDegreeCentrality => degree::mean_degree_centrality(&g),
                NumberConnectedComponents => components::count_components(&g) as f64,
                NumberOfCliques => cliques::count_maximal_cliques(&g) as f64,
                Triangles => triangles::count_triangles(&g) as f64,
            };
            assert!(
                (analytic - direct).abs() < 1e-6,
                "{}: analytic {analytic} vs direct {direct}",
                kind.name()
            );
        }
    }

    #[test]
    fn incomplete_graph_has_no_shortcut() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        assert!(MeasureKind::Triangles.complete_graph_value(&g).is_none());
    }

    #[test]
    fn all_measures_run_on_small_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]);
        for kind in MeasureKind::all() {
            let v = kind.compute(&g);
            assert!(v.is_finite(), "{} produced {v}", kind.name());
        }
    }
}
