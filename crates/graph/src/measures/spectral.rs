//! Spectral measures: top adjacency eigenvalues via power iteration with
//! deflation, and Laplacian spectral embedding (used by the §2.3.4 LFR →
//! vector construction).

use crate::csr::Graph;

/// Largest adjacency eigenvalue (by magnitude; non-negative for adjacency
/// matrices of non-empty graphs by Perron–Frobenius).
pub fn largest_eigenvalue(g: &Graph) -> f64 {
    top_eigenvalues(g, 1, 200).first().copied().unwrap_or(0.0)
}

/// Top-`k` adjacency eigenvalues via power iteration with deflation.
///
/// Deterministic start vectors; `iters` power steps per eigenpair. Accuracy
/// is plenty for the measure sweep (the paper itself plots library-computed
/// eigenvalues only as a runtime datapoint).
pub fn top_eigenvalues(g: &Graph, k: usize, iters: usize) -> Vec<f64> {
    let n = g.n();
    if n == 0 || g.m() == 0 {
        return vec![0.0; k.min(n)];
    }
    let mut eigvals = Vec::with_capacity(k);
    let mut eigvecs: Vec<Vec<f64>> = Vec::with_capacity(k);
    // Power-iterate on A + cI so bipartite spectra (λ and −λ tied in
    // magnitude) still have a strictly dominant eigenvalue; report the
    // Rayleigh quotient on A itself.
    let shift = 1.0 + 2.0 * g.m() as f64 / n as f64;
    for comp in 0..k.min(n) {
        // Deterministic pseudo-random start.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let h = plasma_data::hash::mix64((i as u64 + 1) * (comp as u64 + 13));
                (h as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        orthogonalize(&mut v, &eigvecs);
        normalize(&mut v);
        let mut lambda = 0.0;
        for _ in 0..iters {
            let mut w = matvec(g, &v);
            for (wi, &vi) in w.iter_mut().zip(&v) {
                *wi += shift * vi;
            }
            orthogonalize(&mut w, &eigvecs);
            let norm = normalize(&mut w);
            if norm < 1e-14 {
                break;
            }
            lambda = dot(&w, &matvec(g, &w));
            v = w;
        }
        eigvals.push(lambda);
        eigvecs.push(v);
    }
    eigvals
}

/// Spectral embedding: rows are vertices, columns the eigenvectors of the
/// normalized Laplacian associated with the `k` smallest non-trivial
/// eigenvalues (approximated via power iteration on `2I − L`).
pub fn laplacian_embedding(g: &Graph, k: usize, iters: usize) -> Vec<Vec<f64>> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Power iteration on M = 2I − L_sym finds L's smallest eigenvectors
    // (M's largest). The all-ones direction (trivial eigenvector) is
    // deflated first.
    let deg: Vec<f64> = (0..n as u32).map(|v| g.degree(v).max(1) as f64).collect();
    let trivial: Vec<f64> = {
        let mut t: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
        normalize(&mut t);
        t
    };
    let mut vecs: Vec<Vec<f64>> = vec![trivial];
    for comp in 0..k {
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let h = plasma_data::hash::mix64((i as u64 + 7) * (comp as u64 + 3));
                (h as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        orthogonalize(&mut v, &vecs);
        normalize(&mut v);
        for _ in 0..iters {
            // w = M v = 2v − L_sym v, where
            // L_sym v = v − D^{-1/2} A D^{-1/2} v.
            let mut av = vec![0.0f64; n];
            for u in 0..n as u32 {
                let vu = v[u as usize] / deg[u as usize].sqrt();
                for &nb in g.neighbors(u) {
                    av[nb as usize] += vu;
                }
            }
            let mut w: Vec<f64> = (0..n).map(|i| v[i] + av[i] / deg[i].sqrt()).collect();
            orthogonalize(&mut w, &vecs);
            if normalize(&mut w) < 1e-14 {
                break;
            }
            v = w;
        }
        vecs.push(v);
    }
    // Rows of the embedding = per-vertex coordinates in the k vectors
    // (skipping the trivial one).
    (0..n)
        .map(|i| vecs[1..].iter().map(|v| v[i]).collect())
        .collect()
}

fn matvec(g: &Graph, v: &[f64]) -> Vec<f64> {
    let n = g.n();
    let mut out = vec![0.0f64; n];
    for u in 0..n as u32 {
        let vu = v[u as usize];
        for &nb in g.neighbors(u) {
            out[nb as usize] += vu;
        }
    }
    out
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let proj = dot(v, b);
        for (x, &bx) in v.iter_mut().zip(b) {
            *x -= proj * bx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn complete_graph_top_eigenvalue() {
        // K_n has top adjacency eigenvalue n−1.
        let g = complete(6);
        assert!((largest_eigenvalue(&g) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn star_eigenvalue_is_sqrt_leaves() {
        // Star S_k has top eigenvalue sqrt(k).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!((largest_eigenvalue(&g) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn top_two_of_complete_graph() {
        // K_n spectrum: {n−1, −1, …, −1}; magnitudes {5, 1, …}.
        let vals = top_eigenvalues(&complete(6), 2, 400);
        assert!((vals[0] - 5.0).abs() < 1e-6);
        assert!((vals[1].abs() - 1.0).abs() < 0.05, "second {vals:?}");
    }

    #[test]
    fn empty_graph_eigenvalue_zero() {
        let g = Graph::from_edges(4, &[]);
        assert_eq!(largest_eigenvalue(&g), 0.0);
    }

    #[test]
    fn embedding_separates_two_cliques() {
        // Two 5-cliques joined by one edge: the Fiedler coordinate must
        // separate them.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
                edges.push((i + 5, j + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges);
        let emb = laplacian_embedding(&g, 1, 300);
        let left: f64 = (0..5).map(|i| emb[i][0]).sum::<f64>() / 5.0;
        let right: f64 = (5..10).map(|i| emb[i][0]).sum::<f64>() / 5.0;
        assert!(
            left.signum() != right.signum(),
            "Fiedler coordinate should split the cliques: {left} vs {right}"
        );
    }
}
