//! Triangle counting and clustering coefficients.
//!
//! Triangle count is the growth study's focus measure (§3.1 gives four
//! reasons). The exact counter uses the standard degree-ordered
//! edge-iterator: orient each edge toward the higher-degree endpoint and
//! merge sorted out-neighborhoods, `O(m^{3/2})` worst case.

use crate::csr::Graph;

/// Exact global triangle count.
pub fn count_triangles(g: &Graph) -> u64 {
    per_vertex_triangles(g)
        .iter()
        .map(|&t| t as u64)
        .sum::<u64>()
        / 3
}

/// Number of triangles incident on each vertex (each triangle contributes
/// 1 to each of its three corners). This is the "triangle vertex cover
/// histogram" raw data of Fig. 2.5b.
pub fn per_vertex_triangles(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut counts = vec![0u32; n];
    // rank = degree-ordered position; orient edges low rank → high rank.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    // Forward adjacency: neighbors with higher rank, sorted by vertex id.
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        for &u in g.neighbors(v) {
            if rank[u as usize] > rank[v as usize] {
                fwd[v as usize].push(u);
            }
        }
    }
    for v in 0..n as u32 {
        let fv = &fwd[v as usize];
        for &u in fv.iter() {
            let fu = &fwd[u as usize];
            // Common forward neighbors of v and u complete a triangle whose
            // rank-middle vertex is u; merge the two id-sorted lists.
            let (mut a, mut b) = (0usize, 0usize);
            while a < fv.len() && b < fu.len() {
                match fv[a].cmp(&fu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let w = fv[a];
                        counts[v as usize] += 1;
                        counts[u as usize] += 1;
                        counts[w as usize] += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Local clustering coefficient of each vertex: triangles at `v` divided by
/// `deg(v)·(deg(v)−1)/2`; 0 for degree < 2.
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    let tri = per_vertex_triangles(g);
    (0..g.n() as u32)
        .map(|v| {
            let d = g.degree(v) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1.0))
            }
        })
        .collect()
}

/// Mean local clustering coefficient (NetworkX `average_clustering`).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    local_clustering(g).iter().sum::<f64>() / g.n() as f64
}

/// Global transitivity: `3·triangles / #connected-triples`.
pub fn transitivity(g: &Graph) -> f64 {
    let triples: u64 = (0..g.n() as u32)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if triples == 0 {
        0.0
    } else {
        3.0 * count_triangles(g) as f64 / triples as f64
    }
}

/// Naive `O(n³)`-ish triangle counter over vertex triples with adjacency
/// tests; retained as a differential-testing oracle.
pub fn count_triangles_naive(g: &Graph) -> u64 {
    let n = g.n() as u32;
    let mut count = 0u64;
    for u in 0..n {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                if g.has_edge(u, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::rng::seeded;

    #[test]
    fn triangle_graph_counts_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count_triangles(&g), 1);
        assert_eq!(per_vertex_triangles(&g), vec![1, 1, 1]);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn complete_graph_counts_choose_three() {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(8, &edges);
        assert_eq!(count_triangles(&g), 56); // C(8,3)
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        use crate::generators::erdos_renyi;
        let mut rng = seeded(7);
        for &(n, m) in &[(30usize, 60usize), (50, 200), (40, 300)] {
            let g = erdos_renyi(n, m, &mut rng);
            assert_eq!(count_triangles(&g), count_triangles_naive(&g));
        }
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn empty_graph_clustering() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
