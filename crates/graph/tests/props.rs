//! Property tests for graph measures: fast implementations against oracles
//! and structural invariants on arbitrary graphs.

use proptest::prelude::*;

use plasma_graph::measures::{
    betweenness, cliques, components, cores, degree, diameter, triangles,
};
use plasma_graph::Graph;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..120)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn triangle_counter_matches_naive(g in arb_graph()) {
        prop_assert_eq!(
            triangles::count_triangles(&g),
            triangles::count_triangles_naive(&g)
        );
    }

    #[test]
    fn per_vertex_triangles_sum_to_three_times_total(g in arb_graph()) {
        let per = triangles::per_vertex_triangles(&g);
        let total: u64 = per.iter().map(|&t| t as u64).sum();
        prop_assert_eq!(total, 3 * triangles::count_triangles(&g));
    }

    #[test]
    fn core_numbers_bounded_by_degree_and_degeneracy_consistent(g in arb_graph()) {
        let cores = cores::core_numbers(&g);
        for v in 0..g.n() as u32 {
            prop_assert!(cores[v as usize] <= g.degree(v) as u32);
        }
        let degeneracy = cores.iter().copied().max().unwrap_or(0);
        // Every graph has a vertex of degree ≤ degeneracy in some subgraph;
        // spot-check the global bound 2m/n ≤ max_core bound direction:
        if g.n() > 0 && g.m() > 0 {
            prop_assert!(degeneracy >= 1);
        }
    }

    #[test]
    fn component_counts_consistent(g in arb_graph()) {
        let count = components::count_components(&g);
        let largest = components::largest_component_size(&g);
        let labels = components::component_labels(&g);
        prop_assert!(count >= 1);
        prop_assert!(largest <= g.n());
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        prop_assert_eq!(distinct.len(), count);
        // Largest component size matches the biggest label class.
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        prop_assert_eq!(sizes.values().copied().max().unwrap_or(0), largest);
    }

    #[test]
    fn diameter_bounded_by_component_size(g in arb_graph()) {
        let d = diameter::diameter_of_largest_component(&g);
        let largest = components::largest_component_size(&g);
        prop_assert!((d as usize) < largest.max(1));
    }

    #[test]
    fn double_sweep_lower_bounds_exact_diameter(g in arb_graph()) {
        let comp = components::largest_component(&g);
        if comp.len() >= 2 {
            let exact = diameter::diameter_of_largest_component(&g);
            let ds = diameter::double_sweep(&g, comp[0]);
            prop_assert!(ds <= exact, "double sweep {ds} exceeds exact {exact}");
        }
    }

    #[test]
    fn betweenness_values_are_normalized(g in arb_graph()) {
        let bc = betweenness::betweenness(&g);
        for &b in &bc {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&b), "betweenness {b} out of range");
        }
    }

    #[test]
    fn clique_stats_internally_consistent(g in arb_graph()) {
        let stats = cliques::maximal_cliques(&g, 500_000);
        if !stats.truncated {
            let hist_total: u64 = stats.size_histogram.iter().sum();
            prop_assert_eq!(hist_total, stats.count);
            if stats.count > 0 {
                prop_assert!(stats.max_size >= 1);
                prop_assert!(stats.size_histogram[stats.max_size as usize] > 0);
            }
            // A graph with an edge has a clique of size ≥ 2.
            if g.m() > 0 {
                prop_assert!(stats.max_size >= 2);
            }
        }
    }

    #[test]
    fn mean_degree_matches_handshake(g in arb_graph()) {
        let d = degree::mean_degree(&g);
        prop_assert!((d - 2.0 * g.m() as f64 / g.n() as f64).abs() < 1e-9);
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in arb_graph()) {
        let keep: Vec<u32> = (0..g.n() as u32).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        for a in 0..sub.n() as u32 {
            for b in 0..sub.n() as u32 {
                if a != b {
                    prop_assert_eq!(
                        sub.has_edge(a, b),
                        g.has_edge(map[a as usize], map[b as usize])
                    );
                }
            }
        }
    }
}
