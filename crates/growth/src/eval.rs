//! End-to-end growth experiment (Algorithm 1) and log-space error metrics.
//!
//! For one dataset + sampling method: sample `p` records, build both
//! densifying series, measure the whole sample series and the sparse half
//! of the real series, predict the dense half with both methods, and score
//! `mean relative error of log10(measure)` against ground truth — the
//! quantity Table 3.2 reports.

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_graph::measures::MeasureKind;

use crate::predict::{regression, translation_scaling, Prediction};
use crate::sampling::SamplingMethod;
use crate::series::{measure_series, MeasureCurve};

/// Everything one growth experiment produces.
#[derive(Debug, Clone)]
pub struct GrowthOutcome {
    /// The sample curve (measured across all densities).
    pub sample_curve: MeasureCurve,
    /// The real curve (measured across all densities — dense half is the
    /// evaluation's ground truth).
    pub real_curve: MeasureCurve,
    /// Dense-half progress points evaluated.
    pub test_progress: Vec<f64>,
    /// Ground-truth values on the dense half.
    pub truth: Vec<f64>,
    /// Translation–Scaling predictions on the dense half.
    pub ts: Prediction,
    /// Regression predictions on the dense half.
    pub reg: Prediction,
    /// Seconds to measure the sample series plus the sparse real half
    /// (the training cost of §3.5's speedup accounting).
    pub train_seconds: f64,
    /// Seconds to measure the dense real half (the cost prediction avoids).
    pub dense_seconds: f64,
}

/// Per-method log-space relative errors.
#[derive(Debug, Clone, Copy)]
pub struct LogErrors {
    /// Mean relative error of `log10(y+1)`.
    pub mean: f64,
    /// Standard deviation of the relative errors.
    pub std_dev: f64,
}

impl GrowthOutcome {
    fn log_errors(pred: &[f64], truth: &[f64]) -> LogErrors {
        let lp: Vec<f64> = pred.iter().map(|&y| (y.max(0.0) + 1.0).log10()).collect();
        let lt: Vec<f64> = truth.iter().map(|&y| (y.max(0.0) + 1.0).log10()).collect();
        let errs = plasma_data::stats::relative_errors(&lp, &lt);
        LogErrors {
            mean: plasma_data::stats::mean(&errs),
            std_dev: plasma_data::stats::std_dev(&errs),
        }
    }

    /// Translation–Scaling error (Table 3.2's "TS Mean"/"TS StdDev").
    pub fn ts_errors(&self) -> LogErrors {
        Self::log_errors(&self.ts.predicted, &self.truth)
    }

    /// Regression error (Table 3.2's "Reg Mean"/"Reg StdDev").
    pub fn reg_errors(&self) -> LogErrors {
        Self::log_errors(&self.reg.predicted, &self.truth)
    }

    /// Speedup from predicting the dense half instead of measuring it
    /// (§3.5's "speedups for the four datasets are 7.4x, 109.3x, …").
    pub fn speedup(&self) -> f64 {
        if self.train_seconds <= 0.0 {
            return 1.0;
        }
        (self.train_seconds + self.dense_seconds) / self.train_seconds
    }
}

/// Runs Algorithm 1 for one dataset / measure / sampling method.
///
/// `p` is the sample size (the paper uses 1000; scale down with the data).
pub fn run_growth_experiment(
    records: &[SparseVector],
    similarity: Similarity,
    measure: MeasureKind,
    method: SamplingMethod,
    p: usize,
    seed: u64,
) -> GrowthOutcome {
    // 1. Node sample.
    let sample_records = method.sample_records(records, similarity, p, seed);

    // 2–3. Sample series measured at every density.
    let sample_curve = measure_series(&sample_records, measure, similarity, None);

    // 4. Real series measured at every density (dense half = ground truth).
    let real_curve = measure_series(records, measure, similarity, None);

    // Split: sparse half trains, dense half tests.
    let steps = real_curve.points.len();
    let half = steps / 2;
    let real_train = MeasureCurve {
        measure,
        n: real_curve.n,
        points: real_curve.points[..=half.min(steps - 1)].to_vec(),
    };
    let test_progress: Vec<f64> = real_curve.points[half..]
        .iter()
        .map(|pt| pt.progress)
        .collect();
    let truth: Vec<f64> = real_curve.points[half..]
        .iter()
        .map(|pt| pt.value)
        .collect();

    // 5–6. Predict the dense half.
    let real_first = real_curve.points.first().map_or(0.0, |pt| pt.value);
    let complete = complete_value(measure, records.len());
    let ts = translation_scaling(&sample_curve, real_first, complete, &test_progress);

    let reg = regression(&sample_curve, &real_train, 100, &test_progress);

    let train_seconds = sample_curve.total_seconds()
        + real_curve.points[..half]
            .iter()
            .map(|pt| pt.seconds)
            .sum::<f64>();
    let dense_seconds = real_curve.points[half..]
        .iter()
        .map(|pt| pt.seconds)
        .sum::<f64>();

    GrowthOutcome {
        sample_curve,
        real_curve,
        test_progress,
        truth,
        ts,
        reg,
        train_seconds,
        dense_seconds,
    }
}

/// Analytic measure value on the complete graph of `n` vertices.
pub fn complete_value(measure: MeasureKind, n: usize) -> f64 {
    // Build a tiny stand-in: MeasureKind::complete_graph_value needs a
    // graph only for its shape check, so compute directly here.
    let nf = n as f64;
    use MeasureKind::*;
    match measure {
        AverageClustering => 1.0,
        CliqueNumber => nf,
        Diameter => 1.0,
        Eigenvalues => nf - 1.0,
        LargestConnectedComponent => nf,
        MeanAverageNeighborDegree => nf - 1.0,
        MeanBetweennessCentrality => 0.0,
        MeanCoreNumber => nf - 1.0,
        MeanDegreeCentrality => 1.0,
        NumberConnectedComponents => 1.0,
        NumberOfCliques => 1.0,
        Triangles => nf * (nf - 1.0) * (nf - 2.0) / 6.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;

    fn records(n: usize) -> Vec<SparseVector> {
        GaussianSpec {
            separation: 3.0,
            spread: 1.0,
            ..GaussianSpec::new("t", n, 8, 4)
        }
        .generate(71)
        .records
    }

    #[test]
    fn experiment_produces_reasonable_triangle_errors() {
        let recs = records(150);
        let out = run_growth_experiment(
            &recs,
            Similarity::Cosine,
            MeasureKind::Triangles,
            SamplingMethod::Random,
            60,
            5,
        );
        let ts = out.ts_errors();
        let reg = out.reg_errors();
        // Log-space errors should be small-ish (paper: 0.3%–28%).
        assert!(ts.mean < 0.5, "TS mean error {}", ts.mean);
        assert!(reg.mean < 0.3, "Reg mean error {}", reg.mean);
        assert!(out.truth.len() == out.ts.predicted.len());
        assert!(out.truth.len() == out.reg.predicted.len());
    }

    #[test]
    fn complete_values_match_graph_shortcut() {
        use plasma_graph::Graph;
        let n = 9;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(n, &edges);
        for kind in MeasureKind::all() {
            let expected = kind
                .complete_graph_value(&g)
                .expect("complete graph shortcut");
            assert_eq!(complete_value(kind, n), expected, "{}", kind.name());
        }
    }

    #[test]
    fn speedup_is_at_least_one() {
        let recs = records(120);
        let out = run_growth_experiment(
            &recs,
            Similarity::Cosine,
            MeasureKind::Triangles,
            SamplingMethod::Concentrated,
            50,
            3,
        );
        assert!(out.speedup() >= 1.0);
    }

    #[test]
    fn all_sampling_methods_complete() {
        let recs = records(100);
        for m in SamplingMethod::all() {
            let out =
                run_growth_experiment(&recs, Similarity::Cosine, MeasureKind::Triangles, m, 40, 7);
            assert!(out.reg_errors().mean.is_finite(), "{}", m.name());
        }
    }
}
