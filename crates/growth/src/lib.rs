//! Graph Growth: predicting measures of densifying graphs (Ch. 3).
//!
//! The question: can expensive measures of *dense* similarity graphs be
//! predicted from cheap measurements on (a) the sparse prefixes of the real
//! graph and (b) a small node-sampled graph measured across all densities?
//!
//! Pipeline (Algorithm 1): node-sample `p` records → build densifying
//! series for both sample and full data (edge schedule `2^i · N`) → measure
//! `γ` on the whole sample series and the sparse half of the real series →
//! train a predictor → predict the dense half → evaluate in log space.
//!
//! * [`sampling`] — the three node-sampling methods (§3.3): random,
//!   concentrated, stratified.
//! * [`series`] — measure curves over densifying series (real data and the
//!   ER / PA / Geom reference models).
//! * [`predict`] — the two predictors (§3.4): Translation–Scaling and
//!   piecewise-linear Regression.
//! * [`eval`] — the end-to-end experiment harness and log-space error
//!   metrics (Table 3.2).

pub mod eval;
pub mod predict;
pub mod sampling;
pub mod series;

pub use eval::{run_growth_experiment, GrowthOutcome};
pub use sampling::SamplingMethod;
pub use series::MeasureCurve;
