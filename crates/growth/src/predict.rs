//! The two prediction methods of §3.4.
//!
//! Both operate on measure curves resampled to `q` piecewise-linear points
//! over normalized schedule progress, and both work in `log10(y+1)` space —
//! the paper plots and scores triangle counts in log space because counts
//! grow cubically and high-density errors would otherwise swamp everything.
//!
//! * **Translation–Scaling** — map the sample curve onto the real curve by
//!   matching endpoints. The dense endpoint of the real curve is *known
//!   analytically* (complete-graph measure), which is the trick that makes
//!   this method free.
//! * **Regression** — OLS on predictors `(synthx, synthy, realx)` against
//!   `realy`, trained on the sparse half where `realy` is cheap, following
//!   the paper's `realy = b0 + b1·synthx + b2·synthy + b3·realx`. The `x`
//!   predictors are the density parameters `log2(edges/n)` of the two
//!   curves (§3.4's "graph density parameter"), which are linear in the
//!   geometric schedule and therefore extrapolate stably.

use plasma_data::regression::LinearModel;

use crate::series::MeasureCurve;

/// Transforms a raw measure value into prediction space.
fn to_log(y: f64) -> f64 {
    (y + 1.0).log10()
}

/// Inverse of [`to_log`].
fn from_log(ly: f64) -> f64 {
    10f64.powf(ly.clamp(-12.0, 300.0)) - 1.0
}

/// A predicted curve: `(progress, predicted value)` over the dense half.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Normalized progress points predicted.
    pub progress: Vec<f64>,
    /// Predicted measure values (raw space).
    pub predicted: Vec<f64>,
}

/// Translation–Scaling (§3.4).
///
/// `real_first_value` supplies the real curve's known sparse endpoint;
/// `real_complete_value` is the analytic measure of the complete real
/// graph. The sample curve is affinely mapped so its endpoints land on
/// those values, then evaluated at the requested progress points.
pub fn translation_scaling(
    sample: &MeasureCurve,
    real_first_value: f64,
    real_complete_value: f64,
    predict_at: &[f64],
) -> Prediction {
    let sx_min = sample.points.first().map_or(0.0, |p| p.progress);
    let sx_max = sample.points.last().map_or(1.0, |p| p.progress);
    let sy_min = to_log(sample.points.first().map_or(0.0, |p| p.value));
    let sy_max = to_log(sample.points.last().map_or(1.0, |p| p.value));
    let ry_min = to_log(real_first_value);
    let ry_max = to_log(real_complete_value);
    let (rx_min, rx_max) = (0.0, 1.0);

    let predicted = predict_at
        .iter()
        .map(|&u| {
            // Invert the x map: which sample progress corresponds to real
            // progress u?
            let sx = if rx_max > rx_min {
                sx_min + (u - rx_min) * (sx_max - sx_min) / (rx_max - rx_min)
            } else {
                sx_min
            };
            let sy = to_log(sample.value_at(sx));
            let ry = if sy_max > sy_min {
                ry_min + (sy - sy_min) * (ry_max - ry_min) / (sy_max - sy_min)
            } else {
                ry_min
            };
            from_log(ry)
        })
        .collect();
    Prediction {
        progress: predict_at.to_vec(),
        predicted,
    }
}

/// Regression (§3.4): fit `realy ~ synthx + synthy + realx` on the sparse
/// training half, predict the dense half.
///
/// `q` controls the piecewise-linear discretization of the training curves.
pub fn regression(
    sample: &MeasureCurve,
    real_train: &MeasureCurve,
    q: usize,
    predict_at: &[f64],
) -> Prediction {
    let train_max = real_train
        .points
        .last()
        .map_or(0.5, |p| p.progress)
        .max(1e-9);
    let q = q.max(2);
    let mut xs = Vec::with_capacity(q);
    let mut ys = Vec::with_capacity(q);
    for k in 0..q {
        let u = train_max * k as f64 / (q - 1) as f64;
        xs.push(predictors(sample, real_train, u));
        ys.push(to_log(real_train.value_at(u)));
    }
    let model = LinearModel::fit(&xs, &ys);
    let predicted = predict_at
        .iter()
        .map(|&u| from_log(model.predict(&predictors(sample, real_train, u))))
        .collect();
    Prediction {
        progress: predict_at.to_vec(),
        predicted,
    }
}

/// Predictor vector at progress `u`: `(synthx, synthy, realx)`.
///
/// Density parameters are known for every `u` without measuring anything
/// (the similarity schedule fixes the edge counts), so the dense half's
/// `realx` is available at prediction time.
fn predictors(sample: &MeasureCurve, real: &MeasureCurve, u: f64) -> Vec<f64> {
    // `real.density_at` extrapolates linearly past the training range
    // because the geometric schedule is linear in the doubling index.
    let real_density = if u <= real.points.last().map_or(1.0, |p| p.progress) {
        real.density_at(u)
    } else {
        let last = real.points.last().expect("non-empty curve");
        let slope = density_slope(real);
        (last.edges.max(1) as f64 / real.n.max(1) as f64).log2() + slope * (u - last.progress)
    };
    vec![
        sample.density_at(u),
        to_log(sample.value_at(u)),
        real_density,
    ]
}

/// Average density-parameter increase per unit progress.
fn density_slope(curve: &MeasureCurve) -> f64 {
    if curve.points.len() < 2 {
        return 0.0;
    }
    let n = curve.n.max(1) as f64;
    let first = curve.points.first().expect("non-empty");
    let last = curve.points.last().expect("non-empty");
    let span = (last.progress - first.progress).max(1e-9);
    ((last.edges.max(1) as f64 / n).log2() - (first.edges.max(1) as f64 / n).log2()) / span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{CurvePoint, MeasureCurve};
    use plasma_graph::measures::MeasureKind;

    /// Synthetic curve: value = a · 10^(b·progress), edges double per step.
    fn curve(a: f64, b: f64, n_pts: usize, max_progress: f64, n: usize) -> MeasureCurve {
        let points = (0..n_pts)
            .map(|i| {
                let u = max_progress * i as f64 / (n_pts - 1) as f64;
                CurvePoint {
                    progress: u,
                    edges: (n as f64 * 2f64.powf(u * 8.0)) as usize,
                    threshold: 1.0 - u,
                    value: a * 10f64.powf(b * u),
                    seconds: 0.0,
                }
            })
            .collect();
        MeasureCurve {
            measure: MeasureKind::Triangles,
            n,
            points,
        }
    }

    #[test]
    fn ts_maps_endpoints_exactly() {
        let sample = curve(10.0, 2.0, 20, 1.0, 100);
        let real_first = 100.0;
        let real_complete = 1_000_000.0;
        let pred = translation_scaling(&sample, real_first, real_complete, &[0.0, 1.0]);
        assert!((pred.predicted[0] - real_first).abs() / real_first < 1e-6);
        assert!((pred.predicted[1] - real_complete).abs() / real_complete < 1e-6);
    }

    #[test]
    fn ts_interpolates_monotonically_for_monotone_samples() {
        let sample = curve(1.0, 3.0, 25, 1.0, 100);
        let grid: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let pred = translation_scaling(&sample, 10.0, 1e9, &grid);
        for w in pred.predicted.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn regression_recovers_proportional_curves() {
        // Real curve = 100 × sample curve (raw space) → exact linear
        // relation in log space; regression must nail the dense half.
        let sample = curve(1.0, 3.0, 30, 1.0, 100);
        let real_full = curve(100.0, 3.0, 30, 1.0, 500);
        let real_train = MeasureCurve {
            measure: MeasureKind::Triangles,
            n: 500,
            points: real_full
                .points
                .iter()
                .copied()
                .filter(|p| p.progress <= 0.5)
                .collect(),
        };
        let grid: Vec<f64> = (0..=10).map(|k| 0.5 + 0.05 * k as f64).collect();
        let pred = regression(&sample, &real_train, 50, &grid);
        for (u, p) in grid.iter().zip(&pred.predicted) {
            let truth = real_full.value_at(*u);
            let rel_log =
                ((p + 1.0).log10() - (truth + 1.0).log10()).abs() / (truth + 1.0).log10().max(1e-9);
            assert!(rel_log < 0.05, "at {u}: predicted {p} vs truth {truth}");
        }
    }

    #[test]
    fn regression_extrapolation_stays_bounded() {
        // Even with imperfect proportionality, log-space predictions must
        // stay within a few decades of the training range's trend.
        let sample = curve(1.0, 2.5, 30, 1.0, 100);
        let real_full = curve(40.0, 3.1, 30, 1.0, 800);
        let real_train = MeasureCurve {
            measure: MeasureKind::Triangles,
            n: 800,
            points: real_full.points[..15].to_vec(),
        };
        let pred = regression(&sample, &real_train, 60, &[0.7, 1.0]);
        for (&p, &u) in pred.predicted.iter().zip(&[0.7, 1.0]) {
            let truth = real_full.value_at(u);
            let gap = ((p + 1.0).log10() - (truth + 1.0).log10()).abs();
            assert!(gap < 1.0, "at {u}: predicted {p} vs truth {truth}");
        }
    }
}
