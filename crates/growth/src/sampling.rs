//! Node-sampling methods (§3.3).
//!
//! * **Random** — `p` points uniformly without replacement.
//! * **Concentrated** — a random seed point plus its `p−1` nearest
//!   neighbors ("snowball"-like; a concentrated blob).
//! * **Stratified** — k-means into 10 clusters; points drawn per cluster
//!   proportionally to cluster size.

use plasma_data::kmeans::kmeans;
use plasma_data::rng;
use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use rand::Rng;

/// The three sampling methods of the growth study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingMethod {
    /// Uniform without replacement.
    Random,
    /// Seed point plus nearest neighbors.
    Concentrated,
    /// K-means strata, proportional allocation.
    Stratified,
}

impl SamplingMethod {
    /// All methods in paper order (concentrated, random, stratified as the
    /// result tables list them).
    pub fn all() -> [SamplingMethod; 3] {
        [
            SamplingMethod::Concentrated,
            SamplingMethod::Random,
            SamplingMethod::Stratified,
        ]
    }

    /// Short name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            SamplingMethod::Random => "Random",
            SamplingMethod::Concentrated => "Concentrated",
            SamplingMethod::Stratified => "Stratified",
        }
    }

    /// Samples `p` record indices from the dataset.
    pub fn sample(
        self,
        records: &[SparseVector],
        measure: Similarity,
        p: usize,
        seed: u64,
    ) -> Vec<u32> {
        let n = records.len();
        let p = p.min(n);
        let mut rng = rng::seeded(seed);
        match self {
            SamplingMethod::Random => rng::sample_without_replacement(&mut rng, n, p),
            SamplingMethod::Concentrated => {
                let seed_idx = rng.gen_range(0..n);
                // Rank all points by similarity to the seed; take the top p
                // (the seed itself is its own most-similar point).
                let mut scored: Vec<(f64, u32)> = (0..n)
                    .map(|i| {
                        let s = if i == seed_idx {
                            f64::INFINITY
                        } else {
                            measure.compute(&records[seed_idx], &records[i])
                        };
                        (s, i as u32)
                    })
                    .collect();
                scored.sort_unstable_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("similarities are finite")
                });
                scored[..p].iter().map(|&(_, i)| i).collect()
            }
            SamplingMethod::Stratified => {
                // Densify records for k-means (strata in attribute space).
                let dim = records.iter().map(|r| r.dim_bound()).max().unwrap_or(0) as usize;
                let rows: Vec<Vec<f64>> = records
                    .iter()
                    .map(|r| {
                        let mut d = vec![0.0; dim.max(1)];
                        for (di, w) in r.iter() {
                            d[di as usize] = w;
                        }
                        d
                    })
                    .collect();
                let km = kmeans(&rows, 10, 25, &mut rng);
                let k = km.centroids.len();
                let mut strata: Vec<Vec<u32>> = vec![Vec::new(); k];
                for (i, &a) in km.assignments.iter().enumerate() {
                    strata[a].push(i as u32);
                }
                // Proportional allocation with largest-remainder rounding.
                let mut out = Vec::with_capacity(p);
                let mut allocations: Vec<(usize, f64)> = strata
                    .iter()
                    .enumerate()
                    .map(|(c, members)| (c, members.len() as f64 * p as f64 / n as f64))
                    .collect();
                let mut taken = 0usize;
                for &(c, alloc) in &allocations {
                    let base = alloc.floor() as usize;
                    let base = base.min(strata[c].len());
                    let picks = rng::sample_without_replacement(&mut rng, strata[c].len(), base);
                    out.extend(picks.iter().map(|&x| strata[c][x as usize]));
                    taken += base;
                }
                // Distribute the remainder by largest fractional part.
                allocations.sort_unstable_by(|a, b| {
                    (b.1 - b.1.floor())
                        .partial_cmp(&(a.1 - a.1.floor()))
                        .expect("finite fractions")
                });
                let chosen: plasma_data::hash::FxHashSet<u32> = out.iter().copied().collect();
                let mut ai = 0usize;
                while taken < p && ai < allocations.len() * 4 {
                    let (c, _) = allocations[ai % allocations.len()];
                    ai += 1;
                    if let Some(&cand) = strata[c]
                        .iter()
                        .find(|&&m| !chosen.contains(&m) && !out.contains(&m))
                    {
                        out.push(cand);
                        taken += 1;
                    }
                }
                // Top up randomly if strata ran dry.
                while out.len() < p {
                    let x = rng.gen_range(0..n) as u32;
                    if !out.contains(&x) {
                        out.push(x);
                    }
                }
                out.truncate(p);
                out
            }
        }
    }

    /// Materializes the sampled records.
    pub fn sample_records(
        self,
        records: &[SparseVector],
        measure: Similarity,
        p: usize,
        seed: u64,
    ) -> Vec<SparseVector> {
        self.sample(records, measure, p, seed)
            .into_iter()
            .map(|i| records[i as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;
    use plasma_data::stats::mean;

    fn dataset() -> Vec<SparseVector> {
        GaussianSpec {
            separation: 5.0,
            spread: 0.8,
            ..GaussianSpec::new("t", 300, 6, 4)
        }
        .generate(51)
        .records
    }

    #[test]
    fn all_methods_return_p_distinct_indices() {
        let records = dataset();
        for method in SamplingMethod::all() {
            let s = method.sample(&records, Similarity::Cosine, 50, 7);
            assert_eq!(s.len(), 50, "{}", method.name());
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 50, "{} returned duplicates", method.name());
        }
    }

    #[test]
    fn concentrated_sample_is_more_self_similar() {
        let records = dataset();
        let mean_pairwise = |idx: &[u32]| -> f64 {
            let mut sims = Vec::new();
            for a in 0..idx.len().min(40) {
                for b in (a + 1)..idx.len().min(40) {
                    sims.push(
                        Similarity::Cosine
                            .compute(&records[idx[a] as usize], &records[idx[b] as usize]),
                    );
                }
            }
            mean(&sims)
        };
        let conc = SamplingMethod::Concentrated.sample(&records, Similarity::Cosine, 40, 3);
        let rand = SamplingMethod::Random.sample(&records, Similarity::Cosine, 40, 3);
        assert!(
            mean_pairwise(&conc) > mean_pairwise(&rand) + 0.1,
            "concentrated {} vs random {}",
            mean_pairwise(&conc),
            mean_pairwise(&rand)
        );
    }

    #[test]
    fn p_clamped_to_population() {
        let records = dataset();
        let s = SamplingMethod::Random.sample(&records, Similarity::Cosine, 10_000, 1);
        assert_eq!(s.len(), records.len());
    }

    #[test]
    fn sampling_is_deterministic() {
        let records = dataset();
        for method in SamplingMethod::all() {
            let a = method.sample(&records, Similarity::Cosine, 30, 9);
            let b = method.sample(&records, Similarity::Cosine, 30, 9);
            assert_eq!(a, b, "{} not deterministic", method.name());
        }
    }

    #[test]
    fn stratified_covers_multiple_clusters() {
        let records = dataset();
        let idx = SamplingMethod::Stratified.sample(&records, Similarity::Cosine, 60, 5);
        // With 4 well-separated blobs and proportional allocation, the
        // sample should hit ≥ 3 of them. Blob id via nearest of the 4 means
        // is overkill; check spread via pairwise dissimilarity instead.
        let mut low_sim_pairs = 0;
        for a in 0..idx.len().min(30) {
            for b in (a + 1)..idx.len().min(30) {
                let s = Similarity::Cosine
                    .compute(&records[idx[a] as usize], &records[idx[b] as usize]);
                if s < 0.3 {
                    low_sim_pairs += 1;
                }
            }
        }
        assert!(
            low_sim_pairs > 10,
            "stratified sample looks too concentrated"
        );
    }
}
