//! Measure curves over densifying graph series.
//!
//! A [`MeasureCurve`] records, for each step of the geometric edge schedule
//! `|E_i| = 2^i · N`, the realized similarity threshold, edge count, the
//! measure value, and the seconds it took to compute — the raw material for
//! Figs. 3.1–3.6 (measure shapes) and 3.19–3.21 (runtimes).

use std::time::Instant;

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;
use plasma_graph::builders::DensifyingSeries;
use plasma_graph::generators;
use plasma_graph::measures::MeasureKind;
use plasma_graph::Graph;

/// One point of a measure-vs-density curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Normalized schedule progress in `[0, 1]`.
    pub progress: f64,
    /// Edge count of the graph at this step.
    pub edges: usize,
    /// Realized similarity threshold (for data-driven series; the model
    /// series store a density parameter here).
    pub threshold: f64,
    /// Measure value.
    pub value: f64,
    /// Seconds spent computing the measure.
    pub seconds: f64,
}

/// A measure evaluated along a densifying series.
#[derive(Debug, Clone)]
pub struct MeasureCurve {
    /// The measure.
    pub measure: MeasureKind,
    /// Number of vertices in every graph of the series.
    pub n: usize,
    /// Curve points, sparse → dense.
    pub points: Vec<CurvePoint>,
}

impl MeasureCurve {
    /// y-values of the curve.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Total measure-computation seconds.
    pub fn total_seconds(&self) -> f64 {
        self.points.iter().map(|p| p.seconds).sum()
    }

    /// Linear interpolation of the value at normalized progress `u`.
    pub fn value_at(&self, u: f64) -> f64 {
        interp(
            &self
                .points
                .iter()
                .map(|p| (p.progress, p.value))
                .collect::<Vec<_>>(),
            u,
        )
    }

    /// Linear interpolation of the *density parameter* `log2(edges / n)`
    /// at normalized progress `u`. Under the geometric schedule this is the
    /// doubling index — the paper's "graph density parameter (larger being
    /// more dense)" x-axis, and a well-conditioned regression predictor.
    pub fn density_at(&self, u: f64) -> f64 {
        let n = self.n.max(1) as f64;
        interp(
            &self
                .points
                .iter()
                .map(|p| (p.progress, (p.edges.max(1) as f64 / n).log2()))
                .collect::<Vec<_>>(),
            u,
        )
    }

    /// Linear interpolation of the threshold at normalized progress `u`.
    pub fn threshold_at(&self, u: f64) -> f64 {
        interp(
            &self
                .points
                .iter()
                .map(|p| (p.progress, p.threshold))
                .collect::<Vec<_>>(),
            u,
        )
    }
}

/// Piecewise-linear interpolation over `(x, y)` points with ascending `x`.
pub fn interp(pts: &[(f64, f64)], x: f64) -> f64 {
    if pts.is_empty() {
        return 0.0;
    }
    if x <= pts[0].0 {
        return pts[0].1;
    }
    if x >= pts[pts.len() - 1].0 {
        return pts[pts.len() - 1].1;
    }
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
            return y0 + t * (y1 - y0);
        }
    }
    pts[pts.len() - 1].1
}

/// Evaluates a measure along a data-driven densifying series.
///
/// `schedule` defaults (when `None`) to the geometric `2^i · N` schedule.
pub fn measure_series(
    records: &[SparseVector],
    measure_fn: MeasureKind,
    similarity: Similarity,
    schedule: Option<&[usize]>,
) -> MeasureCurve {
    let series = DensifyingSeries::new(records, similarity);
    let default_schedule;
    let schedule = match schedule {
        Some(s) => s,
        None => {
            default_schedule = series.geometric_schedule();
            &default_schedule
        }
    };
    let last = schedule.len().max(2) - 1;
    let points = schedule
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let g = series.graph_with_edges(k);
            let threshold = series.threshold_for_edges(k);
            let start = Instant::now();
            let value = measure_fn.compute(&g);
            CurvePoint {
                progress: i as f64 / last as f64,
                edges: g.m(),
                threshold,
                value,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();
    MeasureCurve {
        measure: measure_fn,
        n: records.len(),
        points,
    }
}

/// The reference generation models of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthModel {
    /// Erdős–Rényi `G(n, m)`.
    ErdosRenyi,
    /// Preferential attachment.
    PreferentialAttachment,
    /// Random geometric.
    Geometric,
}

impl GrowthModel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GrowthModel::ErdosRenyi => "Erdos-Renyi",
            GrowthModel::PreferentialAttachment => "Preferential Attachment",
            GrowthModel::Geometric => "Random Geometric",
        }
    }

    /// Generates the model graph with (approximately) `m` edges.
    pub fn generate(self, n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = plasma_data::rng::seeded(seed);
        match self {
            GrowthModel::ErdosRenyi => generators::erdos_renyi(n, m, &mut rng),
            GrowthModel::PreferentialAttachment => {
                generators::preferential_attachment(n, m, &mut rng)
            }
            GrowthModel::Geometric => generators::random_geometric(n, m, &mut rng),
        }
    }
}

/// Evaluates a measure along a model-generated densifying series using the
/// same geometric schedule as a data series of `n` vertices.
pub fn model_series(
    model: GrowthModel,
    n: usize,
    measure_fn: MeasureKind,
    schedule: &[usize],
    seed: u64,
) -> MeasureCurve {
    let last = schedule.len().max(2) - 1;
    let points = schedule
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let g = model.generate(n, k, seed ^ (i as u64) << 32);
            let start = Instant::now();
            let value = measure_fn.compute(&g);
            CurvePoint {
                progress: i as f64 / last as f64,
                edges: g.m(),
                threshold: i as f64, // density parameter stand-in
                value,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();
    MeasureCurve {
        measure: measure_fn,
        n,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;

    fn records(n: usize) -> Vec<SparseVector> {
        GaussianSpec {
            separation: 3.0,
            spread: 0.8,
            ..GaussianSpec::new("t", n, 6, 3)
        }
        .generate(61)
        .records
    }

    #[test]
    fn triangle_curve_is_monotone_nondecreasing() {
        let recs = records(60);
        let curve = measure_series(&recs, MeasureKind::Triangles, Similarity::Cosine, None);
        for w in curve.points.windows(2) {
            assert!(
                w[1].value >= w[0].value,
                "triangles cannot decrease as edges are added"
            );
        }
        // Last point is the complete graph: C(60, 3).
        let last = curve.points.last().expect("non-empty");
        assert_eq!(last.value, 60.0 * 59.0 * 58.0 / 6.0);
    }

    #[test]
    fn progress_spans_zero_to_one() {
        let recs = records(40);
        let curve = measure_series(&recs, MeasureKind::Triangles, Similarity::Cosine, None);
        assert_eq!(curve.points[0].progress, 0.0);
        assert!((curve.points.last().expect("non-empty").progress - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_decrease_along_series() {
        let recs = records(50);
        let curve = measure_series(&recs, MeasureKind::Triangles, Similarity::Cosine, None);
        for w in curve.points.windows(2) {
            assert!(w[0].threshold >= w[1].threshold);
        }
    }

    #[test]
    fn interp_endpoints_and_middle() {
        let pts = [(0.0, 0.0), (1.0, 10.0)];
        assert_eq!(interp(&pts, -1.0), 0.0);
        assert_eq!(interp(&pts, 2.0), 10.0);
        assert!((interp(&pts, 0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn model_series_runs_all_models() {
        let schedule = [50usize, 100, 200];
        for model in [
            GrowthModel::ErdosRenyi,
            GrowthModel::PreferentialAttachment,
            GrowthModel::Geometric,
        ] {
            let c = model_series(model, 50, MeasureKind::Triangles, &schedule, 3);
            assert_eq!(c.points.len(), 3);
            assert!(c.points.iter().all(|p| p.value.is_finite()));
        }
    }

    #[test]
    fn value_at_interpolates_curve() {
        let recs = records(40);
        let curve = measure_series(&recs, MeasureKind::Triangles, Similarity::Cosine, None);
        let mid = curve.value_at(0.5);
        let lo = curve.value_at(0.0);
        let hi = curve.value_at(1.0);
        assert!(lo <= mid && mid <= hi);
    }
}
