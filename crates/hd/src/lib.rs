//! One-stop facade over the PLASMA-HD workspace.
//!
//! PLASMA-HD (Probing the LAttice Structure and MAkeup of High-dimensional
//! Data) lets a user interactively probe the intrinsic connectivity and
//! clusterability of a high-dimensional dataset across the whole spectrum
//! of similarity thresholds. Applications (and the workspace `examples/`)
//! depend on this crate alone and reach every subsystem through a stable
//! module path:
//!
//! * [`data`] — sparse vectors, similarity measures, synthetic dataset
//!   generators, hashing, and statistics
//! * [`lsh`] — MinHash/SimHash sketches, banded candidate generation, and
//!   BayesLSH posterior inference (pruning + concentration)
//! * [`core`] — APSS probes, the (shareable, lock-striped, byte-bounded)
//!   knowledge cache with LRU eviction and registry-wide capacity limits,
//!   cumulative threshold curves, incremental estimates, and the
//!   interactive [`Session`](core::Session) driver
//! * [`graph`] — similarity-graph construction and structural measures
//!   (triangles, cores, components, communities, …)
//! * [`lam`] — lattice-structure mining and compression baselines
//! * [`growth`] — graph-growth sampling and forecasting
//! * [`parcoords`] — parallel-coordinates layout and rendering
//!
//! See `ARCHITECTURE.md` at the workspace root for how these crates map
//! onto the paper's sections and for the record → sketch → candidate →
//! decision → cue data flow.
//!
//! # Quick start
//!
//! The shortest useful loop — open a session, probe a threshold, let the
//! knowledge cache make the re-probe free:
//!
//! ```
//! use plasma_hd::core::{ApssConfig, Session};
//! use plasma_hd::data::datasets::gaussian::GaussianSpec;
//!
//! let ds = GaussianSpec::new("demo", 40, 6, 2).generate(7);
//! let mut session = Session::new(&ds, ApssConfig::default());
//!
//! let first = session.probe(0.8);           // pays for sketching
//! let again = session.probe(0.8);           // answered from the cache
//! assert_eq!(again.hashes_compared, 0);
//! assert_eq!(again.pairs, first.pairs);
//!
//! // The cache is shareable: further sessions over the same corpus skip
//! // sketching entirely and reuse every memoized pair comparison.
//! let cache = session.shared_cache().expect("probed above");
//! let mut colleague = Session::new(&ds, ApssConfig::default()).with_shared_cache(cache);
//! assert_eq!(colleague.probe(0.8).hashes_compared, 0);
//! ```
//!
//! For long-lived servers the cache is memory-boundable — byte caps with
//! LRU eviction per cache, count/byte limits across datasets — without
//! ever changing probe outputs:
//!
//! ```
//! use plasma_hd::core::cache::{CacheCapacity, CacheRegistry, RegistryCapacity};
//!
//! let registry = CacheRegistry::with_capacity(
//!     RegistryCapacity::unbounded().with_max_caches(64),
//!     CacheCapacity::bounded(64 << 20), // 64 MiB of memos per dataset
//! );
//! assert!(registry.is_empty());
//! ```

pub use plasma_core as core;
pub use plasma_data as data;
pub use plasma_graph as graph;
pub use plasma_growth as growth;
pub use plasma_lam as lam;
pub use plasma_lsh as lsh;
pub use plasma_parcoords as parcoords;
