//! One-stop facade over the PLASMA-HD workspace.
//!
//! Applications (and the `examples/`) depend on this crate alone and reach
//! every subsystem through a stable module path:
//!
//! * [`data`] — vectors, similarity measures, datasets, stats
//! * [`lsh`] — sketches, candidate generation, BayesLSH inference
//! * [`core`] — APSS probes, knowledge cache, sessions, cumulative curves
//! * [`graph`] — graph construction and structural measures
//! * [`lam`] — lattice-structure mining and compression baselines
//! * [`growth`] — graph-growth sampling and forecasting
//! * [`parcoords`] — parallel-coordinates layout and rendering

pub use plasma_core as core;
pub use plasma_data as data;
pub use plasma_graph as graph;
pub use plasma_growth as growth;
pub use plasma_lam as lam;
pub use plasma_lsh as lsh;
pub use plasma_parcoords as parcoords;
