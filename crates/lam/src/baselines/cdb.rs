//! CDB-Hyper-style compression: closed itemsets consumed greedily.
//!
//! Xiang et al.'s CDB (the paper's reference 109) starts from closed frequent
//! itemsets and greedily covers the database with overlapped
//! hyper-rectangles. Following the paper's comparison protocol, this
//! reproduction feeds the closed sets to the same LocalOptimal greedy
//! consumption LAM uses, giving an apples-to-apples cell-count ratio.

use std::time::Instant;

use crate::baselines::closed::{mine_closed, DEFAULT_BUDGET};
use crate::db::TransactionDb;
use crate::utility::Utility;

/// CDB configuration.
#[derive(Debug, Clone, Copy)]
pub struct CdbConfig {
    /// Absolute minimum support for the closed-set mining step.
    pub min_support: usize,
    /// Cap on consumed candidate sets.
    pub max_candidates: usize,
}

impl Default for CdbConfig {
    fn default() -> Self {
        Self {
            min_support: 2,
            max_candidates: 5_000,
        }
    }
}

/// Result of a CDB run.
#[derive(Debug, Clone)]
pub struct CdbResult {
    /// Cell-level compression ratio.
    pub cell_ratio: f64,
    /// Number of closed sets mined.
    pub mined: usize,
    /// Number of patterns consumed into the code table.
    pub consumed: usize,
    /// Seconds spent mining closed sets.
    pub mine_seconds: f64,
    /// Seconds spent compressing with them.
    pub compress_seconds: f64,
}

/// Runs CDB-style compression on a transaction database.
pub fn cdb(transactions: &[Vec<u32>], cfg: &CdbConfig) -> CdbResult {
    let t0 = Instant::now();
    let mined = mine_closed(transactions, cfg.min_support, DEFAULT_BUDGET);
    let mine_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut db = TransactionDb::new(transactions.to_vec());
    // Order candidates by Area utility, descending (LocalOptimal).
    let mut sets: Vec<(f64, Vec<u32>, Vec<u32>)> = mined
        .sets
        .into_iter()
        .filter(|s| s.items.len() >= 2)
        .map(|s| {
            let area = Utility::Area.score_fast(s.items.len(), s.tids.len(), 0.0);
            (area, s.items, s.tids)
        })
        .collect();
    sets.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite utilities"));
    sets.truncate(cfg.max_candidates);

    let mined_count = sets.len();
    let mut consumed = 0usize;
    for (_, items, tids) in sets {
        if db.consume(&items, &tids, 0) > 0 {
            consumed += 1;
        }
    }
    CdbResult {
        cell_ratio: db.compression_ratio(),
        mined: mined_count,
        consumed,
        mine_seconds,
        compress_seconds: t1.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::transactions::{CategoricalSpec, QuestSpec};

    #[test]
    fn cdb_compresses_structured_data() {
        let (txs, _) = CategoricalSpec::new("c", 300, 10).generate(3);
        let r = cdb(&txs, &CdbConfig::default());
        assert!(r.cell_ratio > 1.2, "ratio {}", r.cell_ratio);
        assert!(r.consumed > 0);
    }

    #[test]
    fn higher_support_mines_fewer_sets() {
        let txs = QuestSpec::new("q", 300, 150).generate(5);
        let low = cdb(
            &txs,
            &CdbConfig {
                min_support: 2,
                ..CdbConfig::default()
            },
        );
        let high = cdb(
            &txs,
            &CdbConfig {
                min_support: 20,
                ..CdbConfig::default()
            },
        );
        assert!(high.mined <= low.mined);
        // Greedy consumption is not monotone in the candidate pool, but
        // both runs must at least not inflate the data.
        assert!(high.cell_ratio >= 1.0);
        assert!(low.cell_ratio >= 1.0);
    }

    #[test]
    fn timings_split_mine_and_compress() {
        let txs = QuestSpec::new("q", 200, 120).generate(7);
        let r = cdb(&txs, &CdbConfig::default());
        assert!(r.mine_seconds >= 0.0);
        assert!(r.compress_seconds >= 0.0);
    }
}
