//! Closed frequent itemset mining (Eclat-style DFS with closure checks).
//!
//! A frequent itemset is *closed* when no superset has the same support.
//! The miner uses the vertical (tid-list) representation, extends prefixes
//! in item order, computes closures, and deduplicates by tid-set hash.
//! Work is budgeted: web-scale supports that would explode (the paper's
//! "execution abruptly halted" at σ=45) instead stop at the budget and
//! report truncation.

use plasma_data::hash::{FxHashMap, FxHashSet};

/// A closed itemset with its occurrence list.
#[derive(Debug, Clone)]
pub struct ClosedSet {
    /// Items, ascending.
    pub items: Vec<u32>,
    /// Transaction ids containing the itemset, ascending.
    pub tids: Vec<u32>,
}

impl ClosedSet {
    /// Support (occurrence count).
    pub fn support(&self) -> usize {
        self.tids.len()
    }
}

/// Result of a (possibly truncated) closed-set mining run.
#[derive(Debug, Clone)]
pub struct ClosedMineResult {
    /// The closed itemsets found (length ≥ 1).
    pub sets: Vec<ClosedSet>,
    /// True when the search budget ran out.
    pub truncated: bool,
}

/// Mines closed frequent itemsets with absolute support ≥ `min_support`.
///
/// `budget` caps DFS expansions.
pub fn mine_closed(transactions: &[Vec<u32>], min_support: usize, budget: u64) -> ClosedMineResult {
    let min_support = min_support.max(1);
    // Vertical representation of frequent items.
    let mut tidlists: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for (tid, t) in transactions.iter().enumerate() {
        for &it in t {
            tidlists.entry(it).or_default().push(tid as u32);
        }
    }
    let mut items: Vec<(u32, Vec<u32>)> = tidlists
        .into_iter()
        .filter(|(_, tl)| tl.len() >= min_support)
        .collect();
    items.sort_unstable_by_key(|(it, _)| *it);

    let mut out = Vec::new();
    let mut seen_tidsets: FxHashSet<u64> = FxHashSet::default();
    let mut budget_left = budget;
    let mut truncated = false;

    // DFS over prefix extensions.
    let item_ids: Vec<u32> = items.iter().map(|(it, _)| *it).collect();
    let item_tids: Vec<&Vec<u32>> = items.iter().map(|(_, tl)| tl).collect();

    fn tidset_hash(tids: &[u32]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &t in tids {
            h = (h ^ t as u64).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (tids.len() as u64)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        start: usize,
        prefix_tids: &[u32],
        prefix_items: &mut Vec<u32>,
        item_ids: &[u32],
        item_tids: &[&Vec<u32>],
        min_support: usize,
        out: &mut Vec<ClosedSet>,
        seen: &mut FxHashSet<u64>,
        budget: &mut u64,
        truncated: &mut bool,
    ) {
        for k in start..item_ids.len() {
            // Items already absorbed into the prefix by a closure step must
            // not be re-expanded.
            if prefix_items.contains(&item_ids[k]) {
                continue;
            }
            if *budget == 0 {
                *truncated = true;
                return;
            }
            *budget -= 1;
            let inter = intersect(prefix_tids, item_tids[k]);
            if inter.len() < min_support {
                continue;
            }
            // Closure: absorb every later item whose tidlist covers inter.
            let mut closure_items = vec![item_ids[k]];
            for j in (k + 1)..item_ids.len() {
                if prefix_items.contains(&item_ids[j]) {
                    continue;
                }
                if item_tids[j].len() >= inter.len() && is_superset(item_tids[j], &inter) {
                    closure_items.push(item_ids[j]);
                }
            }
            // Closedness against *earlier* items: if an earlier item also
            // covers inter, this set is a duplicate of one found earlier
            // (or will be subsumed); the tidset hash dedup handles it.
            let mut full_items = prefix_items.clone();
            full_items.extend_from_slice(&closure_items);
            full_items.sort_unstable();
            full_items.dedup();

            let h = tidset_hash(&inter);
            if seen.insert(h) {
                out.push(ClosedSet {
                    items: full_items.clone(),
                    tids: inter.clone(),
                });
            }

            prefix_items.extend_from_slice(&closure_items);
            // Recurse over items after k not already absorbed.
            let next = k + 1;
            if next < item_ids.len() {
                dfs(
                    next,
                    &inter,
                    prefix_items,
                    item_ids,
                    item_tids,
                    min_support,
                    out,
                    seen,
                    budget,
                    truncated,
                );
            }
            prefix_items.truncate(prefix_items.len() - closure_items.len());
            if *truncated {
                return;
            }
        }
    }

    let all_tids: Vec<u32> = (0..transactions.len() as u32).collect();
    let mut prefix_items = Vec::new();
    dfs(
        0,
        &all_tids,
        &mut prefix_items,
        &item_ids,
        &item_tids,
        min_support,
        &mut out,
        &mut seen_tidsets,
        &mut budget_left,
        &mut truncated,
    );

    ClosedMineResult {
        sets: out,
        truncated,
    }
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn is_superset(big: &[u32], small: &[u32]) -> bool {
    crate::db::contains_sorted(big, small)
}

/// Default DFS budget.
pub const DEFAULT_BUDGET: u64 = 5_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 4],
            vec![4, 5],
        ]
    }

    #[test]
    fn finds_expected_closed_sets() {
        let r = mine_closed(&toy(), 2, DEFAULT_BUDGET);
        assert!(!r.truncated);
        let find = |items: &[u32]| r.sets.iter().find(|s| s.items == items);
        // {1,2} support 3; {1,2,3} support 2; {1} support 4.
        assert_eq!(find(&[1, 2]).expect("closed").support(), 3);
        assert_eq!(find(&[1, 2, 3]).expect("closed").support(), 2);
        assert_eq!(find(&[1]).expect("closed").support(), 4);
        // {2} is NOT closed: every tx with 2 also has 1.
        assert!(find(&[2]).is_none());
        // {3} is not closed either (always with 1,2).
        assert!(find(&[3]).is_none());
    }

    #[test]
    fn support_threshold_respected() {
        let r = mine_closed(&toy(), 3, DEFAULT_BUDGET);
        assert!(r.sets.iter().all(|s| s.support() >= 3));
        assert!(r.sets.iter().any(|s| s.items == vec![1, 2]));
        assert!(!r.sets.iter().any(|s| s.items == vec![1, 2, 3]));
    }

    #[test]
    fn closed_count_on_known_dataset() {
        // All-distinct transactions: every transaction is its own closed
        // set at support 1 (plus item-level sets that happen to be closed).
        let txs = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let r = mine_closed(&txs, 1, DEFAULT_BUDGET);
        for t in &txs {
            assert!(
                r.sets.iter().any(|s| &s.items == t),
                "{t:?} should be closed"
            );
        }
    }

    #[test]
    fn budget_truncates_gracefully() {
        // Dense overlapping data with a tiny budget.
        let txs: Vec<Vec<u32>> = (0..20).map(|_| (0..15u32).collect()).collect();
        let r = mine_closed(&txs, 2, 3);
        assert!(r.truncated);
    }

    #[test]
    fn tidlists_are_sorted() {
        let r = mine_closed(&toy(), 2, DEFAULT_BUDGET);
        for s in &r.sets {
            for w in s.tids.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
