//! MDL code tables and greedy covering — the machinery shared by Krimp
//! and Slim.
//!
//! A code table maps patterns (plus all singletons) to Shannon-optimal
//! codes whose lengths derive from usage counts in the greedy cover of the
//! database. Total encoded size `L(D, CT) = L(D | CT) + L(CT)` is the MDL
//! objective both algorithms minimize; a parallel *cell* count (codes
//! used plus code-table cells) is kept for cross-method comparability
//! with LAM's cell accounting.

use plasma_data::hash::FxHashMap;

/// A code-table pattern.
#[derive(Debug, Clone)]
pub struct CtPattern {
    /// Items, ascending.
    pub items: Vec<u32>,
    /// Support in the database (for cover ordering).
    pub support: u32,
}

/// A code table: patterns in *standard cover order* (longer first, then
/// higher support, then lexicographic), with singletons implicit.
#[derive(Debug, Clone, Default)]
pub struct CodeTable {
    /// Non-singleton patterns, maintained in standard cover order.
    pub patterns: Vec<CtPattern>,
}

/// Result of covering a database with a code table.
#[derive(Debug, Clone)]
pub struct CoverResult {
    /// Usage count per pattern (parallel to `CodeTable::patterns`).
    pub pattern_usage: Vec<u64>,
    /// Usage count per singleton item.
    pub singleton_usage: FxHashMap<u32, u64>,
    /// Total codes emitted.
    pub total_codes: u64,
    /// Encoded size in bits, `L(D | CT) + L(CT)`.
    pub total_bits: f64,
    /// Cell count: codes emitted + code-table cells (LAM-comparable).
    pub total_cells: u64,
}

impl CodeTable {
    /// Creates an empty (singleton-only) code table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a pattern, keeping standard cover order; returns the index
    /// it landed at (so a rejected candidate can be removed precisely).
    pub fn insert(&mut self, p: CtPattern) -> usize {
        let pos = self
            .patterns
            .partition_point(|q| cover_order(q, &p) != std::cmp::Ordering::Greater);
        self.patterns.insert(pos, p);
        pos
    }

    /// Removes the pattern at `idx`.
    pub fn remove(&mut self, idx: usize) -> CtPattern {
        self.patterns.remove(idx)
    }

    /// Covers the whole database and computes encoded sizes.
    pub fn cover(&self, transactions: &[Vec<u32>]) -> CoverResult {
        let mut pattern_usage = vec![0u64; self.patterns.len()];
        let mut singleton_usage: FxHashMap<u32, u64> = FxHashMap::default();
        let mut total_codes = 0u64;
        let mut remaining: Vec<u32> = Vec::new();
        for t in transactions {
            remaining.clear();
            remaining.extend_from_slice(t);
            for (pi, p) in self.patterns.iter().enumerate() {
                if p.items.len() > remaining.len() {
                    continue;
                }
                if crate::db::contains_sorted(&remaining, &p.items) {
                    remaining.retain(|it| p.items.binary_search(it).is_err());
                    pattern_usage[pi] += 1;
                    total_codes += 1;
                }
            }
            for &it in &remaining {
                *singleton_usage.entry(it).or_insert(0) += 1;
                total_codes += 1;
            }
        }

        // Shannon code lengths from usages (Laplace-smoothed so unused
        // codes stay finite).
        let smoothed_total: f64 =
            (total_codes as f64) + pattern_usage.len() as f64 + singleton_usage.len() as f64;
        let code_len = |usage: u64| -> f64 {
            let p = (usage as f64 + 1.0) / smoothed_total.max(2.0);
            -p.log2()
        };

        // L(D | CT).
        let mut bits = 0.0;
        for &u in &pattern_usage {
            bits += u as f64 * code_len(u);
        }
        for (_, &u) in singleton_usage.iter() {
            bits += u as f64 * code_len(u);
        }
        // L(CT): each pattern stored as its items in singleton codes plus
        // its own code; singletons store themselves.
        let mut ct_bits = 0.0;
        let mut ct_cells = 0u64;
        for (pi, p) in self.patterns.iter().enumerate() {
            for it in &p.items {
                let su = singleton_usage.get(it).copied().unwrap_or(0);
                ct_bits += code_len(su);
            }
            ct_bits += code_len(pattern_usage[pi]);
            ct_cells += p.items.len() as u64;
        }
        for (_, &u) in singleton_usage.iter() {
            ct_bits += 2.0 * code_len(u);
            ct_cells += 1;
        }

        CoverResult {
            pattern_usage,
            singleton_usage,
            total_codes,
            total_bits: bits + ct_bits,
            total_cells: total_codes + ct_cells,
        }
    }
}

/// Standard cover order: longer first, then higher support, then lex.
pub fn cover_order(a: &CtPattern, b: &CtPattern) -> std::cmp::Ordering {
    b.items
        .len()
        .cmp(&a.items.len())
        .then(b.support.cmp(&a.support))
        .then(a.items.cmp(&b.items))
}

/// Standard *candidate* order for Krimp: higher support first, then longer,
/// then lex.
pub fn candidate_order(a: &CtPattern, b: &CtPattern) -> std::cmp::Ordering {
    b.support
        .cmp(&a.support)
        .then(b.items.len().cmp(&a.items.len()))
        .then(a.items.cmp(&b.items))
}

/// Cell count of the raw database (for ratio denominators).
pub fn raw_cells(transactions: &[Vec<u32>]) -> u64 {
    transactions.iter().map(|t| t.len() as u64).sum()
}

/// Bits to encode the raw database with singleton codes only.
pub fn raw_bits(transactions: &[Vec<u32>]) -> f64 {
    CodeTable::new().cover(transactions).total_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3], vec![4, 5]]
    }

    #[test]
    fn singleton_cover_counts_all_items() {
        let ct = CodeTable::new();
        let r = ct.cover(&toy());
        assert_eq!(r.total_codes, 11);
        assert_eq!(r.singleton_usage[&1], 3);
        assert_eq!(r.singleton_usage[&4], 1);
    }

    #[test]
    fn pattern_reduces_codes_and_bits() {
        let mut ct = CodeTable::new();
        ct.insert(CtPattern {
            items: vec![1, 2, 3],
            support: 3,
        });
        let with = ct.cover(&toy());
        let without = CodeTable::new().cover(&toy());
        assert_eq!(with.pattern_usage[0], 3);
        assert_eq!(with.total_codes, 5); // 3 pattern codes + items 4, 5
        assert!(with.total_bits < without.total_bits);
        assert!(with.total_cells < without.total_cells + 3);
    }

    #[test]
    fn cover_order_prefers_longer() {
        let a = CtPattern {
            items: vec![1, 2, 3],
            support: 2,
        };
        let b = CtPattern {
            items: vec![4, 5],
            support: 10,
        };
        assert_eq!(cover_order(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn candidate_order_prefers_support() {
        let a = CtPattern {
            items: vec![1, 2, 3],
            support: 2,
        };
        let b = CtPattern {
            items: vec![4, 5],
            support: 10,
        };
        assert_eq!(candidate_order(&b, &a), std::cmp::Ordering::Less);
    }

    #[test]
    fn insert_maintains_order() {
        let mut ct = CodeTable::new();
        ct.insert(CtPattern {
            items: vec![4, 5],
            support: 10,
        });
        ct.insert(CtPattern {
            items: vec![1, 2, 3],
            support: 2,
        });
        assert_eq!(ct.patterns[0].items, vec![1, 2, 3]);
    }

    #[test]
    fn overlapping_patterns_cover_greedily() {
        let mut ct = CodeTable::new();
        ct.insert(CtPattern {
            items: vec![1, 2, 3],
            support: 3,
        });
        ct.insert(CtPattern {
            items: vec![2, 3],
            support: 3,
        });
        let r = ct.cover(&[vec![1, 2, 3]]);
        // The longer pattern wins; {2,3} goes unused.
        assert_eq!(r.pattern_usage, vec![1, 0]);
    }
}
