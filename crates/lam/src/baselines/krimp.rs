//! Krimp: greedy MDL code-table selection (Vreeken et al., the paper's reference 99).
//!
//! Candidates are frequent (closed) itemsets in *standard candidate order*;
//! each is accepted into the code table iff it shrinks the total encoded
//! size `L(D, CT)`. This faithfully reproduces the algorithm's structure —
//! including its cost profile: one full database cover per candidate,
//! which is exactly why LAM beats it by orders of magnitude in Fig. 4.7.

use std::time::Instant;

use crate::baselines::closed::{mine_closed, DEFAULT_BUDGET};
use crate::baselines::codetable::{candidate_order, raw_bits, raw_cells, CodeTable, CtPattern};

/// Krimp configuration.
#[derive(Debug, Clone, Copy)]
pub struct KrimpConfig {
    /// Absolute minimum support for candidate mining.
    pub min_support: usize,
    /// Cap on the number of candidates considered (keeps worst-case
    /// runtime bounded on web-scale inputs).
    pub max_candidates: usize,
}

impl Default for KrimpConfig {
    fn default() -> Self {
        Self {
            min_support: 2,
            max_candidates: 1_500,
        }
    }
}

/// Result of a Krimp run.
#[derive(Debug, Clone)]
pub struct KrimpResult {
    /// The selected code table.
    pub code_table: CodeTable,
    /// Bit-level compression ratio `raw_bits / encoded_bits`.
    pub bit_ratio: f64,
    /// Cell-level compression ratio (LAM-comparable).
    pub cell_ratio: f64,
    /// Candidates considered / accepted.
    pub candidates: usize,
    /// Accepted candidates.
    pub accepted: usize,
    /// Total seconds (mining + selection).
    pub seconds: f64,
}

/// Runs Krimp on a transaction database.
pub fn krimp(transactions: &[Vec<u32>], cfg: &KrimpConfig) -> KrimpResult {
    let start = Instant::now();
    let mined = mine_closed(transactions, cfg.min_support, DEFAULT_BUDGET);
    let mut candidates: Vec<CtPattern> = mined
        .sets
        .into_iter()
        .filter(|s| s.items.len() >= 2)
        .map(|s| CtPattern {
            support: s.support() as u32,
            items: s.items,
        })
        .collect();
    candidates.sort_unstable_by(candidate_order);
    candidates.truncate(cfg.max_candidates);

    let mut ct = CodeTable::new();
    let mut best = ct.cover(transactions).total_bits;
    let mut accepted = 0usize;
    let n_candidates = candidates.len();
    for cand in candidates {
        let pos = ct.insert(cand);
        let size = ct.cover(transactions).total_bits;
        if size < best {
            best = size;
            accepted += 1;
        } else {
            ct.remove(pos);
        }
    }

    let final_cover = ct.cover(transactions);
    let seconds = start.elapsed().as_secs_f64();
    KrimpResult {
        bit_ratio: raw_bits(transactions) / final_cover.total_bits.max(1e-9),
        cell_ratio: raw_cells(transactions) as f64 / final_cover.total_cells.max(1) as f64,
        code_table: ct,
        candidates: n_candidates,
        accepted,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::transactions::{CategoricalSpec, QuestSpec};

    #[test]
    fn krimp_compresses_structured_data() {
        let (txs, _) = CategoricalSpec::new("c", 300, 10).generate(3);
        let r = krimp(&txs, &KrimpConfig::default());
        assert!(r.bit_ratio > 1.2, "bit ratio {}", r.bit_ratio);
        assert!(r.cell_ratio > 1.2, "cell ratio {}", r.cell_ratio);
        assert!(r.accepted > 0);
    }

    #[test]
    fn krimp_on_quest_data() {
        let txs = QuestSpec::new("q", 250, 150).generate(5);
        let r = krimp(
            &txs,
            &KrimpConfig {
                min_support: 3,
                max_candidates: 500,
            },
        );
        assert!(r.bit_ratio >= 1.0, "ratio {}", r.bit_ratio);
    }

    #[test]
    fn rejected_candidates_leave_table_unchanged() {
        // Random data: almost everything should be rejected, and the code
        // table should stay small.
        use rand::Rng;
        let mut rng = plasma_data::rng::seeded(17);
        let txs: Vec<Vec<u32>> = (0..150)
            .map(|_| {
                let mut t: Vec<u32> = (0..8).map(|_| rng.gen_range(0..2_000u32)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let r = krimp(&txs, &KrimpConfig::default());
        assert!(
            r.code_table.patterns.len() <= r.candidates,
            "table cannot exceed candidates"
        );
        assert!(r.bit_ratio < 1.3);
    }
}
