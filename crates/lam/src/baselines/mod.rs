//! Comparison algorithms for the Chapter 4 evaluation.
//!
//! * [`closed`] — closed frequent itemset mining (Eclat-style, budgeted),
//!   the preprocessing step Krimp/CDB depend on and the Fig. 4.10/4.11
//!   baseline.
//! * [`codetable`] — the shared cover/encoding machinery (MDL code tables).
//! * [`krimp`] — Krimp: greedy MDL code-table selection over frequent
//!   itemset candidates.
//! * [`slim`] — Slim: iterative code-table growth by merging co-used
//!   patterns (no candidate pre-mining).
//! * [`cdb`] — CDB-Hyper-style: closed itemsets consumed with the same
//!   LocalOptimal greedy LAM uses (the paper's own comparison protocol:
//!   "for closed itemset mining and CDB we implement a compression scheme
//!   that … applies the same LocalOptimal greedy heuristic").

pub mod cdb;
pub mod closed;
pub mod codetable;
pub mod krimp;
pub mod slim;
