//! Slim: code-table growth without candidate pre-mining (Smets & Vreeken,
//! the paper's reference 90).
//!
//! Instead of mining frequent itemsets first, Slim repeatedly considers
//! *merging co-used code-table elements* (pairs whose codes appear
//! together in many covers), estimates the MDL gain, and accepts the best
//! merge when the actual encoded size drops. This reproduction keeps the
//! structure with a bounded candidate pool per iteration.

use std::time::Instant;

use plasma_data::hash::FxHashMap;

use crate::baselines::codetable::{raw_bits, raw_cells, CodeTable, CtPattern};

/// Slim configuration.
#[derive(Debug, Clone, Copy)]
pub struct SlimConfig {
    /// Maximum accepted merges (iterations).
    pub max_iters: usize,
    /// Co-usage candidate pairs evaluated per iteration.
    pub candidates_per_iter: usize,
}

impl Default for SlimConfig {
    fn default() -> Self {
        Self {
            max_iters: 200,
            candidates_per_iter: 12,
        }
    }
}

/// Result of a Slim run.
#[derive(Debug, Clone)]
pub struct SlimResult {
    /// The grown code table.
    pub code_table: CodeTable,
    /// Bit-level compression ratio.
    pub bit_ratio: f64,
    /// Cell-level compression ratio (LAM-comparable).
    pub cell_ratio: f64,
    /// Accepted merges.
    pub merges: usize,
    /// Total seconds.
    pub seconds: f64,
}

/// A cover "element": either a table pattern or a singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Element {
    Pattern(usize),
    Singleton(u32),
}

/// Runs Slim on a transaction database.
pub fn slim(transactions: &[Vec<u32>], cfg: &SlimConfig) -> SlimResult {
    let start = Instant::now();
    let mut ct = CodeTable::new();
    let mut best = ct.cover(transactions).total_bits;
    let mut merges = 0usize;

    for _ in 0..cfg.max_iters {
        // Count pairwise co-usage of elements across transaction covers.
        let mut co_usage: FxHashMap<(Element, Element), u32> = FxHashMap::default();
        let mut elems: Vec<Element> = Vec::new();
        let mut remaining: Vec<u32> = Vec::new();
        for t in transactions {
            remaining.clear();
            remaining.extend_from_slice(t);
            elems.clear();
            for (pi, p) in ct.patterns.iter().enumerate() {
                if crate::db::contains_sorted(&remaining, &p.items) {
                    remaining.retain(|it| p.items.binary_search(it).is_err());
                    elems.push(Element::Pattern(pi));
                }
            }
            for &it in &remaining {
                elems.push(Element::Singleton(it));
            }
            // Bound the per-transaction pair enumeration.
            let cap = elems.len().min(24);
            for a in 0..cap {
                for b in (a + 1)..cap {
                    let key = if elems[a] <= elems[b] {
                        (elems[a], elems[b])
                    } else {
                        (elems[b], elems[a])
                    };
                    *co_usage.entry(key).or_insert(0) += 1;
                }
            }
        }

        // Top candidate merges by co-usage × merged length (gain
        // estimate).
        let mut scored: Vec<((Element, Element), u64)> = co_usage
            .into_iter()
            .filter(|(_, c)| *c >= 2)
            .map(|(k, c)| {
                let len = element_len(&ct, k.0) + element_len(&ct, k.1);
                (k, c as u64 * len as u64)
            })
            .collect();
        scored.sort_unstable_by_key(|&(_, gain)| std::cmp::Reverse(gain));
        scored.truncate(cfg.candidates_per_iter);
        if scored.is_empty() {
            break;
        }

        let mut improved = false;
        for ((a, b), _) in scored {
            let merged = merge_items(&ct, a, b);
            if merged.len() < 2 || ct.patterns.iter().any(|p| p.items == merged) {
                continue;
            }
            let support = transactions
                .iter()
                .filter(|t| crate::db::contains_sorted(t, &merged))
                .count() as u32;
            if support < 2 {
                continue;
            }
            let pos = ct.insert(CtPattern {
                items: merged,
                support,
            });
            let size = ct.cover(transactions).total_bits;
            if size < best {
                best = size;
                merges += 1;
                improved = true;
                break; // re-derive co-usage with the new table
            }
            ct.remove(pos);
        }
        if !improved {
            break;
        }
    }

    let final_cover = ct.cover(transactions);
    SlimResult {
        bit_ratio: raw_bits(transactions) / final_cover.total_bits.max(1e-9),
        cell_ratio: raw_cells(transactions) as f64 / final_cover.total_cells.max(1) as f64,
        code_table: ct,
        merges,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn element_len(ct: &CodeTable, e: Element) -> usize {
    match e {
        Element::Pattern(i) => ct.patterns[i].items.len(),
        Element::Singleton(_) => 1,
    }
}

fn merge_items(ct: &CodeTable, a: Element, b: Element) -> Vec<u32> {
    let mut items = Vec::new();
    for e in [a, b] {
        match e {
            Element::Pattern(i) => items.extend_from_slice(&ct.patterns[i].items),
            Element::Singleton(it) => items.push(it),
        }
    }
    items.sort_unstable();
    items.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::transactions::CategoricalSpec;

    #[test]
    fn slim_compresses_structured_data() {
        let (txs, _) = CategoricalSpec::new("c", 250, 8).generate(9);
        let r = slim(&txs, &SlimConfig::default());
        assert!(r.bit_ratio > 1.1, "bit ratio {}", r.bit_ratio);
        assert!(r.merges > 0);
    }

    #[test]
    fn slim_grows_patterns_beyond_pairs() {
        // Highly repetitive data: merges should chain into longer patterns.
        let txs: Vec<Vec<u32>> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    vec![1, 2, 3, 4, 5]
                } else {
                    vec![6, 7, 8]
                }
            })
            .collect();
        let r = slim(&txs, &SlimConfig::default());
        let max_len = r
            .code_table
            .patterns
            .iter()
            .map(|p| p.items.len())
            .max()
            .unwrap_or(0);
        assert!(max_len >= 3, "expected chained merges, max len {max_len}");
        assert!(r.bit_ratio > 1.5, "ratio {}", r.bit_ratio);
    }

    #[test]
    fn slim_stops_on_random_data() {
        use rand::Rng;
        let mut rng = plasma_data::rng::seeded(23);
        let txs: Vec<Vec<u32>> = (0..120)
            .map(|_| {
                let mut t: Vec<u32> = (0..6).map(|_| rng.gen_range(0..3_000u32)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let r = slim(&txs, &SlimConfig::default());
        assert!(r.merges < 10, "random data should admit few merges");
    }
}
