//! Compressed-analytics classification (§4.4.6, Fig. 4.9).
//!
//! **LAM-CBA**: split the training data by class, run LAM per split, keep
//! the discriminative patterns (those much more frequent in their own
//! class than elsewhere), and classify a test instance by the fraction of
//! each class's pattern set it contains — falling back to the majority
//! class when no pattern applies, as in CBA.
//!
//! **Krimp classifier**: one code table per class; a test instance is
//! assigned to the class whose table encodes it most cheaply.

use plasma_data::hash::FxHashMap;

use crate::baselines::codetable::CodeTable;
use crate::baselines::krimp::{krimp, KrimpConfig};
use crate::db::{contains_sorted, TransactionDb};
use crate::miner::{Lam, LamConfig};

/// A trained LAM-CBA classifier.
pub struct LamClassifier {
    /// Per-class discriminative patterns (original-item space, sorted).
    class_patterns: Vec<Vec<Vec<u32>>>,
    /// Majority (default) class.
    default_class: u32,
    n_classes: usize,
}

impl LamClassifier {
    /// Trains on labeled transactions.
    pub fn train(transactions: &[Vec<u32>], labels: &[u32], cfg: &LamConfig) -> Self {
        assert_eq!(transactions.len(), labels.len());
        let n_classes = labels.iter().copied().max().map_or(1, |m| m as usize + 1);
        // Split by class.
        let mut splits: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n_classes];
        let mut class_counts = vec![0usize; n_classes];
        for (t, &l) in transactions.iter().zip(labels) {
            splits[l as usize].push(t.clone());
            class_counts[l as usize] += 1;
        }
        let default_class = (0..n_classes).max_by_key(|&c| class_counts[c]).unwrap_or(0) as u32;

        // Mine patterns per class and expand pointer items back to
        // original items so patterns apply to raw test instances.
        let mut raw_patterns: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n_classes);
        for split in &splits {
            if split.is_empty() {
                raw_patterns.push(Vec::new());
                continue;
            }
            let mut db = TransactionDb::new(split.clone());
            Lam::new(*cfg).run(&mut db);
            let expanded: Vec<Vec<u32>> = db
                .patterns()
                .iter()
                .map(|p| crate::stats::expand_items(&db, &p.items))
                .filter(|items| items.len() >= 2)
                .collect();
            raw_patterns.push(expanded);
        }

        // Discriminative pruning: a pattern survives iff its support rate
        // in its own class clearly exceeds its rate elsewhere.
        let mut class_patterns: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n_classes);
        for (c, pats) in raw_patterns.iter().enumerate() {
            let own: &[Vec<u32>] = &splits[c];
            let keep: Vec<Vec<u32>> = pats
                .iter()
                .filter(|p| {
                    let own_rate = support_rate(own, p);
                    let other_rate: f64 = {
                        let mut total = 0.0;
                        let mut n = 0usize;
                        for (oc, split) in splits.iter().enumerate() {
                            if oc != c && !split.is_empty() {
                                total += support_rate(split, p) * split.len() as f64;
                                n += split.len();
                            }
                        }
                        if n == 0 {
                            0.0
                        } else {
                            total / n as f64
                        }
                    };
                    own_rate > other_rate * 1.5 + 0.01
                })
                .cloned()
                .collect();
            class_patterns.push(keep);
        }

        Self {
            class_patterns,
            default_class,
            n_classes,
        }
    }

    /// Classifies one instance: the class whose pattern set the instance
    /// matches the largest fraction of.
    pub fn classify(&self, instance: &[u32]) -> u32 {
        let mut sorted = instance.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut best = self.default_class;
        let mut best_score = 0.0f64;
        for (c, pats) in self.class_patterns.iter().enumerate() {
            if pats.is_empty() {
                continue;
            }
            let hits = pats.iter().filter(|p| contains_sorted(&sorted, p)).count();
            let score = hits as f64 / pats.len() as f64;
            if score > best_score {
                best_score = score;
                best = c as u32;
            }
        }
        best
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Patterns kept for a class after discriminative pruning.
    pub fn patterns_for(&self, class: u32) -> &[Vec<u32>] {
        &self.class_patterns[class as usize]
    }
}

fn support_rate(split: &[Vec<u32>], pattern: &[u32]) -> f64 {
    if split.is_empty() {
        return 0.0;
    }
    let hits = split.iter().filter(|t| contains_sorted(t, pattern)).count();
    hits as f64 / split.len() as f64
}

/// A trained Krimp classifier: one code table per class.
pub struct KrimpClassifier {
    tables: Vec<(CodeTable, FxHashMap<u32, u64>, u64)>,
    default_class: u32,
}

impl KrimpClassifier {
    /// Trains per-class Krimp code tables.
    pub fn train(transactions: &[Vec<u32>], labels: &[u32], cfg: &KrimpConfig) -> Self {
        let n_classes = labels.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut splits: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n_classes];
        for (t, &l) in transactions.iter().zip(labels) {
            splits[l as usize].push(t.clone());
        }
        let default_class = (0..n_classes).max_by_key(|&c| splits[c].len()).unwrap_or(0) as u32;
        let tables = splits
            .iter()
            .map(|split| {
                if split.is_empty() {
                    return (CodeTable::new(), FxHashMap::default(), 1);
                }
                let r = krimp(split, cfg);
                let cover = r.code_table.cover(split);
                (
                    r.code_table,
                    cover.singleton_usage,
                    cover.total_codes.max(1),
                )
            })
            .collect();
        Self {
            tables,
            default_class,
        }
    }

    /// Classifies by cheapest encoding.
    pub fn classify(&self, instance: &[u32]) -> u32 {
        let mut sorted = instance.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut best = self.default_class;
        let mut best_bits = f64::INFINITY;
        for (c, (ct, singles, total)) in self.tables.iter().enumerate() {
            let cover = ct.cover(&[sorted.clone()]);
            // Bits for this instance under the class's usage distribution.
            let smoothed = *total as f64 + singles.len() as f64 + ct.patterns.len() as f64;
            let mut bits = 0.0;
            for (pi, &u) in cover.pattern_usage.iter().enumerate() {
                if u > 0 {
                    // Approximate the class usage of this pattern by its
                    // training support.
                    let usage = ct.patterns[pi].support as f64;
                    bits += u as f64 * -((usage + 1.0) / smoothed).log2();
                }
            }
            for (it, &u) in cover.singleton_usage.iter() {
                let usage = singles.get(it).copied().unwrap_or(0) as f64;
                bits += u as f64 * -((usage + 1.0) / smoothed).log2();
            }
            if bits < best_bits {
                best_bits = bits;
                best = c as u32;
            }
        }
        best
    }
}

/// K-fold cross-validated accuracy of a train/classify pair.
pub fn cross_validate(
    transactions: &[Vec<u32>],
    labels: &[u32],
    folds: usize,
    mut train_and_classify: impl FnMut(&[Vec<u32>], &[u32], &[Vec<u32>]) -> Vec<u32>,
) -> f64 {
    let n = transactions.len();
    let folds = folds.clamp(2, n.max(2));
    let mut correct = 0usize;
    let mut total = 0usize;
    for f in 0..folds {
        let test_idx: Vec<usize> = (0..n).filter(|i| i % folds == f).collect();
        let train_idx: Vec<usize> = (0..n).filter(|i| i % folds != f).collect();
        let train_tx: Vec<Vec<u32>> = train_idx.iter().map(|&i| transactions[i].clone()).collect();
        let train_lb: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_tx: Vec<Vec<u32>> = test_idx.iter().map(|&i| transactions[i].clone()).collect();
        let preds = train_and_classify(&train_tx, &train_lb, &test_tx);
        for (k, &i) in test_idx.iter().enumerate() {
            if preds[k] == labels[i] {
                correct += 1;
            }
            total += 1;
        }
    }
    correct as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::transactions::CategoricalSpec;

    fn labeled_data() -> (Vec<Vec<u32>>, Vec<u32>) {
        CategoricalSpec {
            coherence: 0.85,
            classes: 2,
            ..CategoricalSpec::new("c", 300, 12)
        }
        .generate(5)
    }

    #[test]
    fn lam_classifier_beats_majority_baseline() {
        let (txs, labels) = labeled_data();
        let acc = cross_validate(&txs, &labels, 5, |tr, lb, te| {
            let clf = LamClassifier::train(tr, lb, &LamConfig::default());
            te.iter().map(|t| clf.classify(t)).collect()
        });
        // Majority baseline ~0.5 on balanced 2-class data.
        assert!(acc > 0.7, "LAM-CBA accuracy {acc}");
    }

    #[test]
    fn krimp_classifier_beats_majority_baseline() {
        let (txs, labels) = labeled_data();
        let acc = cross_validate(&txs, &labels, 5, |tr, lb, te| {
            let clf = KrimpClassifier::train(tr, lb, &KrimpConfig::default());
            te.iter().map(|t| clf.classify(t)).collect()
        });
        assert!(acc > 0.7, "Krimp accuracy {acc}");
    }

    #[test]
    fn classifier_handles_unseen_instances() {
        let (txs, labels) = labeled_data();
        let clf = LamClassifier::train(&txs, &labels, &LamConfig::default());
        // An instance matching no pattern → default class, no panic.
        let pred = clf.classify(&[9_999, 10_000]);
        assert!(pred < clf.n_classes() as u32);
    }

    #[test]
    fn discriminative_pruning_keeps_class_specific_patterns() {
        let (txs, labels) = labeled_data();
        let clf = LamClassifier::train(&txs, &labels, &LamConfig::default());
        let total: usize = (0..2).map(|c| clf.patterns_for(c).len()).sum();
        assert!(total > 0, "pruning must keep some discriminative patterns");
    }

    #[test]
    fn cross_validate_on_perfect_predictor_is_one() {
        let txs = vec![vec![1], vec![2], vec![1], vec![2]];
        let labels = vec![0, 1, 0, 1];
        let acc = cross_validate(&txs, &labels, 2, |_, _, te| {
            te.iter().map(|t| if t[0] == 1 { 0 } else { 1 }).collect()
        });
        assert_eq!(acc, 1.0);
    }
}
