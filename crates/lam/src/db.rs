//! The mutable transaction database and its compression cost model.
//!
//! LAM rewrites transactions in place: when a pattern is consumed, its
//! items are removed from each covered transaction and replaced by a
//! single *pointer item*. Pointer items live above `pattern_base` in the
//! item id space, so later passes can mine patterns-of-patterns, exactly
//! as the paper's iterative framework intends.
//!
//! The cost model is cell counting (one cell per item, pointer, or code
//! table entry), the integer analogue of the paper's bit accounting:
//! `ratio = cells(original) / (cells(rewritten) + cells(code table))`.

/// A pattern in the code table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The items (may include pointer items from earlier passes).
    pub items: Vec<u32>,
    /// Number of transactions the pattern was removed from.
    pub occurrences: u32,
    /// The pass (iteration) that produced the pattern.
    pub pass: u32,
}

impl Pattern {
    /// Cells this pattern saves: each occurrence replaces `len` items by
    /// one pointer, and the code table stores the items once.
    pub fn saved_cells(&self) -> i64 {
        let len = self.items.len() as i64;
        let occ = self.occurrences as i64;
        occ * (len - 1) - len
    }
}

/// A rewritable transaction database.
#[derive(Debug, Clone)]
pub struct TransactionDb {
    /// Transactions: sorted item lists (items and pointer items mixed).
    transactions: Vec<Vec<u32>>,
    /// First pointer-item id; original items are all below this.
    pattern_base: u32,
    /// Code table, indexed by `item_id - pattern_base`.
    patterns: Vec<Pattern>,
    /// Cell count of the original database.
    original_cells: u64,
}

impl TransactionDb {
    /// Wraps raw transactions. Item lists are sorted and deduplicated.
    pub fn new(mut transactions: Vec<Vec<u32>>) -> Self {
        let mut max_item = 0u32;
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&m) = t.last() {
                max_item = max_item.max(m);
            }
        }
        let original_cells = transactions.iter().map(|t| t.len() as u64).sum();
        Self {
            transactions,
            pattern_base: max_item + 1,
            patterns: Vec::new(),
            original_cells,
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// A transaction's current (possibly rewritten) item list.
    pub fn transaction(&self, id: usize) -> &[u32] {
        &self.transactions[id]
    }

    /// All transactions (read-only).
    pub fn transactions(&self) -> &[Vec<u32>] {
        &self.transactions
    }

    /// First pointer-item id.
    pub fn pattern_base(&self) -> u32 {
        self.pattern_base
    }

    /// The code table.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Cell count of the original database.
    pub fn original_cells(&self) -> u64 {
        self.original_cells
    }

    /// Current cell count: rewritten transactions plus the code table.
    pub fn compressed_cells(&self) -> u64 {
        let tx: u64 = self.transactions.iter().map(|t| t.len() as u64).sum();
        let ct: u64 = self.patterns.iter().map(|p| p.items.len() as u64).sum();
        tx + ct
    }

    /// Compression ratio (≥ small positive; > 1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        let c = self.compressed_cells();
        if c == 0 {
            1.0
        } else {
            self.original_cells as f64 / c as f64
        }
    }

    /// Consumes a pattern: removes `items` from every listed transaction
    /// that still fully contains them, appending a pointer item instead.
    ///
    /// The actual utility is re-checked first (Algorithm 4 recomputes
    /// utility "and discarded if it is not fruitful"): a pattern must
    /// still cover at least two transactions to save cells, otherwise
    /// nothing is rewritten and 0 is returned.
    pub fn consume(&mut self, items: &[u32], candidate_txs: &[u32], pass: u32) -> u32 {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items sorted");
        if items.len() < 2 {
            return 0;
        }
        let covered: Vec<u32> = candidate_txs
            .iter()
            .copied()
            .filter(|&tid| contains_sorted(&self.transactions[tid as usize], items))
            .collect();
        if covered.len() < 2 {
            return 0;
        }
        let pointer = self.pattern_base + self.patterns.len() as u32;
        for &tid in &covered {
            let t = &mut self.transactions[tid as usize];
            t.retain(|it| items.binary_search(it).is_err());
            // Insert the pointer keeping the list sorted.
            if let Err(pos) = t.binary_search(&pointer) {
                t.insert(pos, pointer);
            }
        }
        self.patterns.push(Pattern {
            items: items.to_vec(),
            occurrences: covered.len() as u32,
            pass,
        });
        covered.len() as u32
    }

    /// Replaces a transaction's item list (PLAM merge path). The list is
    /// sorted/deduplicated defensively.
    pub(crate) fn replace_transaction(&mut self, id: usize, mut items: Vec<u32>) {
        items.sort_unstable();
        items.dedup();
        self.transactions[id] = items;
    }

    /// Appends a pattern to the code table directly (PLAM merge path) and
    /// returns its pointer item id.
    pub(crate) fn append_pattern(&mut self, pattern: Pattern) -> u32 {
        let pointer = self.pattern_base + self.patterns.len() as u32;
        self.patterns.push(pattern);
        pointer
    }

    /// Pointer id the next appended pattern will receive.
    pub(crate) fn next_pointer_id(&self) -> u32 {
        self.pattern_base + self.patterns.len() as u32
    }

    /// Expands a transaction back to original items (recursively resolving
    /// pointer items). Used to verify losslessness.
    pub fn expand(&self, id: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack: Vec<u32> = self.transactions[id].clone();
        while let Some(item) = stack.pop() {
            if item >= self.pattern_base {
                let p = &self.patterns[(item - self.pattern_base) as usize];
                stack.extend_from_slice(&p.items);
            } else {
                out.push(item);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// True when sorted `needle` is a subset of sorted `haystack`.
pub fn contains_sorted(haystack: &[u32], needle: &[u32]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut hi = 0usize;
    for &x in needle {
        // Advance haystack; both sorted.
        loop {
            if hi >= haystack.len() {
                return false;
            }
            match haystack[hi].cmp(&x) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(vec![
            vec![1, 2, 3, 9],
            vec![1, 2, 3],
            vec![1, 2, 3, 7],
            vec![4, 5],
        ])
    }

    #[test]
    fn cell_accounting_before_compression() {
        let d = db();
        assert_eq!(d.original_cells(), 13); // 4 + 3 + 4 + 2
        assert_eq!(d.compressed_cells(), 13);
        assert!((d.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consume_rewrites_and_compresses() {
        let mut d = db();
        let n = d.consume(&[1, 2, 3], &[0, 1, 2, 3], 0);
        assert_eq!(n, 3); // tx 3 does not contain the pattern
                          // Cells: tx = [ptr,9]=2, [ptr]=1, [ptr,7]=2, [4,5]=2 → 7; CT = 3.
        assert_eq!(d.compressed_cells(), 10);
        assert!(d.compression_ratio() > 1.0);
        assert_eq!(d.patterns().len(), 1);
        assert_eq!(d.patterns()[0].occurrences, 3);
    }

    #[test]
    fn consume_rejects_single_coverage_without_rewriting() {
        let mut d = db();
        // Only tx 0 contains item 9 → coverage 1 → not fruitful.
        let n = d.consume(&[1, 2, 3, 9], &[0, 1, 2], 0);
        assert_eq!(n, 0);
        assert_eq!(d.transaction(0), &[1, 2, 3, 9]);
        assert!(d.patterns().is_empty());
    }

    #[test]
    fn expansion_is_lossless() {
        let mut d = db();
        let originals: Vec<Vec<u32>> = (0..d.len()).map(|i| d.transaction(i).to_vec()).collect();
        d.consume(&[1, 2, 3], &[0, 1, 2], 0);
        for (i, orig) in originals.iter().enumerate() {
            assert_eq!(&d.expand(i), orig, "transaction {i} corrupted");
        }
    }

    #[test]
    fn nested_patterns_expand_recursively() {
        let mut d = db();
        d.consume(&[1, 2], &[0, 1, 2], 0);
        let ptr = d.pattern_base();
        // Second pattern includes the first pattern's pointer.
        d.consume(&[3, ptr], &[0, 1, 2], 1);
        assert!(d.expand(0).starts_with(&[1, 2, 3]));
        assert_eq!(d.expand(1), vec![1, 2, 3]);
    }

    #[test]
    fn unit_patterns_rejected() {
        let mut d = db();
        assert_eq!(d.consume(&[1], &[0], 0), 0);
        assert!(d.patterns().is_empty());
    }

    #[test]
    fn contains_sorted_cases() {
        assert!(contains_sorted(&[1, 2, 3, 5], &[2, 5]));
        assert!(!contains_sorted(&[1, 2, 3], &[4]));
        assert!(!contains_sorted(&[2], &[1, 2]));
        assert!(contains_sorted(&[1], &[]));
    }

    #[test]
    fn pattern_saved_cells() {
        let p = Pattern {
            items: vec![1, 2, 3],
            occurrences: 4,
            pass: 0,
        };
        // 4 occurrences × (3−1) saved − 3 stored = 5.
        assert_eq!(p.saved_cells(), 5);
    }
}
