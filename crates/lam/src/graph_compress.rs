//! Graph compressibility across similarity thresholds (§4.6, Fig. 4.14).
//!
//! A similarity graph at threshold `t` is viewed as a transactional
//! matrix (each node's adjacency list is a transaction); LAM's compression
//! ratio on it measures clusterability. Sweeping `t` yields the ratio
//! curve whose knees / phase shifts flag "regions of further interest to a
//! domain expert". All thresholds reuse one sorted pair list, so the sweep
//! costs one `O(n²)` similarity pass plus one LAM run per threshold.

use plasma_data::similarity::Similarity;
use plasma_data::vector::SparseVector;

use crate::db::TransactionDb;
use crate::miner::{Lam, LamConfig};

/// One point of the compressibility curve.
#[derive(Debug, Clone, Copy)]
pub struct CompressPoint {
    /// Similarity threshold.
    pub threshold: f64,
    /// Edges in the similarity graph at this threshold.
    pub edges: usize,
    /// LAM compression ratio of the graph's adjacency representation.
    pub ratio: f64,
}

/// Converts adjacency lists to LAM transactions, skipping empty lists
/// (isolated nodes carry no compressible structure).
pub fn adjacency_to_transactions(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    adj.iter()
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut t = l.clone();
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect()
}

/// Compressibility of one adjacency structure.
pub fn compress_adjacency(adj: &[Vec<u32>], cfg: &LamConfig) -> f64 {
    let txs = adjacency_to_transactions(adj);
    if txs.is_empty() {
        return 1.0;
    }
    let mut db = TransactionDb::new(txs);
    Lam::new(*cfg).run(&mut db).final_ratio
}

/// Sweeps LAM compressibility over similarity thresholds.
pub fn compression_curve(
    records: &[SparseVector],
    measure: Similarity,
    thresholds: &[f64],
    cfg: &LamConfig,
) -> Vec<CompressPoint> {
    // One exact similarity pass, sorted descending.
    let n = records.len();
    let mut pairs: Vec<(f64, u32, u32)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let s = measure.compute(&records[i], &records[j]);
            pairs.push((s, i as u32, j as u32));
        }
    }
    pairs.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite similarities"));

    let mut sorted_thresholds: Vec<f64> = thresholds.to_vec();
    sorted_thresholds.sort_by(|a, b| b.partial_cmp(a).expect("finite thresholds"));

    let mut out = Vec::with_capacity(sorted_thresholds.len());
    let mut cut = 0usize;
    for &t in &sorted_thresholds {
        while cut < pairs.len() && pairs[cut].0 >= t {
            cut += 1;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(_, i, j) in &pairs[..cut] {
            adj[i as usize].push(j);
            adj[j as usize].push(i);
        }
        out.push(CompressPoint {
            threshold: t,
            edges: cut,
            ratio: compress_adjacency(&adj, cfg),
        });
    }
    out.reverse(); // ascending thresholds
    out
}

/// Thresholds at which the ratio curve changes slope the most — the
/// "phase shifts / inflection points" §4.6 reads off Fig. 4.14.
pub fn inflection_points(curve: &[CompressPoint], top_k: usize) -> Vec<f64> {
    if curve.len() < 3 {
        return Vec::new();
    }
    let mut scored: Vec<(f64, f64)> = curve
        .windows(3)
        .map(|w| {
            let d1 = (w[1].ratio - w[0].ratio) / (w[1].threshold - w[0].threshold).abs().max(1e-9);
            let d2 = (w[2].ratio - w[1].ratio) / (w[2].threshold - w[1].threshold).abs().max(1e-9);
            ((d2 - d1).abs(), w[1].threshold)
        })
        .collect();
    scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite curvature"));
    scored.into_iter().take(top_k).map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::gaussian::GaussianSpec;

    #[test]
    fn adjacency_conversion_drops_isolated() {
        let adj = vec![vec![1, 2], vec![0], vec![0], vec![]];
        let txs = adjacency_to_transactions(&adj);
        assert_eq!(txs.len(), 3);
    }

    #[test]
    fn clustered_graph_compresses_better_than_random() {
        // Two disjoint bicliques vs a degree-matched random graph.
        let mut clustered: Vec<Vec<u32>> = Vec::new();
        for i in 0..10u32 {
            clustered.push((10..20).collect()); // left side of biclique A
            let _ = i;
        }
        for _ in 10..20u32 {
            clustered.push((0..10).collect());
        }
        use rand::Rng;
        let mut rng = plasma_data::rng::seeded(3);
        let random: Vec<Vec<u32>> = (0..20)
            .map(|_| {
                let mut l: Vec<u32> = (0..10).map(|_| rng.gen_range(0..60u32)).collect();
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let cfg = LamConfig::default();
        let rc = compress_adjacency(&clustered, &cfg);
        let rr = compress_adjacency(&random, &cfg);
        assert!(
            rc > rr + 0.5,
            "bicliques {rc} should compress far better than random {rr}"
        );
    }

    #[test]
    fn curve_is_always_at_least_one() {
        let ds = GaussianSpec {
            separation: 4.0,
            spread: 0.7,
            ..GaussianSpec::new("t", 80, 8, 3)
        }
        .generate(9);
        let curve = compression_curve(
            &ds.records,
            Similarity::Cosine,
            &[0.3, 0.5, 0.7, 0.9],
            &LamConfig::default(),
        );
        assert_eq!(curve.len(), 4);
        for p in &curve {
            assert!(p.ratio >= 0.99, "ratio {} at t={}", p.ratio, p.threshold);
        }
        // Ascending thresholds, descending edge counts.
        for w in curve.windows(2) {
            assert!(w[0].threshold < w[1].threshold);
            assert!(w[0].edges >= w[1].edges);
        }
    }

    #[test]
    fn inflection_points_found_on_kinked_curve() {
        let curve = vec![
            CompressPoint {
                threshold: 0.2,
                edges: 100,
                ratio: 1.0,
            },
            CompressPoint {
                threshold: 0.4,
                edges: 80,
                ratio: 1.1,
            },
            CompressPoint {
                threshold: 0.6,
                edges: 60,
                ratio: 2.5,
            },
            CompressPoint {
                threshold: 0.8,
                edges: 20,
                ratio: 2.6,
            },
        ];
        let pts = inflection_points(&curve, 1);
        assert_eq!(pts.len(), 1);
        assert!(pts[0] == 0.4 || pts[0] == 0.6);
    }
}
