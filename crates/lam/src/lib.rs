//! LAM — the Localized Approximate Miner (Ch. 4).
//!
//! A parameter-free, `O(|D| log |D|)` itemset miner whose goal is *useful
//! patterns that compress*: min-hash **localization** groups similar
//! transactions into small partitions (Algorithm 3), and a trie-based
//! **mine/consume** phase extracts high-utility patterns greedily within
//! each partition (Algorithms 4–6), rewriting the database in place. Used
//! by PLASMA-HD as a scalable graph-compressibility estimator (§4.6).
//!
//! * [`db`] — the mutable transaction database with the cell-count cost
//!   model all compression ratios are measured in.
//! * [`localize`] — Phase 1: min-hash matrix, lexicographic sort, prefix
//!   grouping.
//! * [`trie`] — the partition trie and potential-itemset generation.
//! * [`miner`] — Phase 2 plus the multi-pass LAM driver.
//! * [`utility`] — the Area and Relative-Closedness utility functions.
//! * [`plam`] — the multi-threaded variant (partitions mined in parallel).
//! * [`baselines`] — closed itemset mining, Krimp, Slim, and CDB-style
//!   tile covering, for the Ch. 4 comparisons.
//! * [`classify`] — compressed-analytics classification (§4.4.6).
//! * [`graph_compress`] — similarity-graph compressibility across
//!   thresholds (§4.6, Fig. 4.14).

pub mod baselines;
pub mod classify;
pub mod db;
pub mod graph_compress;
pub mod localize;
pub mod miner;
pub mod plam;
pub mod stats;
pub mod trie;
pub mod utility;

pub use db::TransactionDb;
pub use miner::{Lam, LamConfig, LamResult};
pub use utility::Utility;
