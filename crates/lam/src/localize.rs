//! Phase 1: Localization (Algorithm 3).
//!
//! Each transaction gets `k` min-hashes (one per min-wise independent
//! permutation); the `n × k` matrix is sorted lexicographically, and
//! contiguous runs sharing a hash prefix become partitions. Runs larger
//! than `threshold` extend the prefix column by column; a run that is
//! still too large after all `k` columns is passed through whole, exactly
//! like the pseudocode. Probability of two transactions agreeing on one
//! hash equals their Jaccard similarity, so partitions are blobs of
//! mutually similar transactions — which is what makes the local mining
//! phase find globally useful patterns.

use plasma_data::hash::keyed_hash;

/// Localization parameters.
#[derive(Debug, Clone, Copy)]
pub struct LocalizeConfig {
    /// Min-hashes per transaction. The paper uses 16 ("more provided
    /// little compression benefit").
    pub k: usize,
    /// Maximum partition size before the prefix is extended (the paper's
    /// "record chunk size", 1000 in §4.6).
    pub threshold: usize,
    /// Hash seed; vary per pass for the probabilistic shuffle.
    pub seed: u64,
}

impl Default for LocalizeConfig {
    fn default() -> Self {
        Self {
            k: 16,
            threshold: 512,
            seed: 0xF00D,
        }
    }
}

/// Output: transaction ids grouped into partitions.
#[derive(Debug, Clone)]
pub struct Partitions {
    /// Each inner vector lists transaction ids of one partition.
    pub groups: Vec<Vec<u32>>,
}

impl Partitions {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no partitions exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total transactions across partitions.
    pub fn total(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }
}

/// Runs localization over the database's current transactions.
pub fn localize(transactions: &[Vec<u32>], cfg: &LocalizeConfig) -> Partitions {
    let n = transactions.len();
    if n == 0 {
        return Partitions { groups: Vec::new() };
    }
    let k = cfg.k.max(1);
    // Min-hash matrix, row-major.
    let mut matrix: Vec<u64> = Vec::with_capacity(n * k);
    for t in transactions {
        for h in 0..k {
            let key = cfg.seed ^ (h as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
            let min = t
                .iter()
                .map(|&item| keyed_hash(key, item))
                .min()
                .unwrap_or(u64::MAX);
            matrix.push(min);
        }
    }
    // Lexicographic sort of row indices.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = &matrix[a as usize * k..(a as usize + 1) * k];
        let rb = &matrix[b as usize * k..(b as usize + 1) * k];
        ra.cmp(rb)
    });

    // Prefix grouping.
    let row = |i: usize| &matrix[order[i] as usize * k..(order[i] as usize + 1) * k];
    let mut groups = Vec::new();
    let mut start = 0usize;
    while start < n {
        let mut end = n;
        let mut j = 0usize;
        while end - start > cfg.threshold && j < k {
            // Narrow to the run matching `start`'s hash in column j.
            let target = row(start)[j];
            let mut e = start + 1;
            while e < end && row(e)[j] == target {
                e += 1;
            }
            end = e;
            j += 1;
        }
        groups.push(order[start..end].to_vec());
        start = end;
    }
    Partitions { groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_transactions() -> Vec<Vec<u32>> {
        // Three families of transactions with heavy intra-family overlap.
        let mut txs = Vec::new();
        for f in 0..3u32 {
            let base: Vec<u32> = (f * 100..f * 100 + 20).collect();
            for v in 0..15u32 {
                let mut t = base.clone();
                t.push(f * 100 + 50 + v); // one unique item each
                txs.push(t);
            }
        }
        txs
    }

    #[test]
    fn partitions_cover_all_transactions_once() {
        let txs = clustered_transactions();
        let parts = localize(&txs, &LocalizeConfig::default());
        assert_eq!(parts.total(), txs.len());
        let mut seen = vec![false; txs.len()];
        for g in &parts.groups {
            for &id in g {
                assert!(!seen[id as usize], "transaction {id} in two partitions");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn similar_transactions_land_together() {
        let txs = clustered_transactions();
        let parts = localize(
            &txs,
            &LocalizeConfig {
                threshold: 20,
                ..LocalizeConfig::default()
            },
        );
        // Count partition pairs from the same family vs different families.
        let family = |id: u32| id / 15;
        let mut same = 0u32;
        let mut diff = 0u32;
        for g in &parts.groups {
            for a in 0..g.len() {
                for b in (a + 1)..g.len() {
                    if family(g[a]) == family(g[b]) {
                        same += 1;
                    } else {
                        diff += 1;
                    }
                }
            }
        }
        assert!(
            same > diff * 5,
            "localization should group families: same={same} diff={diff}"
        );
    }

    #[test]
    fn threshold_bounds_partition_size_mostly() {
        let txs = clustered_transactions();
        let parts = localize(
            &txs,
            &LocalizeConfig {
                threshold: 10,
                ..LocalizeConfig::default()
            },
        );
        // Identical-prefix overflows aside, partitions should be small.
        let oversize = parts.groups.iter().filter(|g| g.len() > 16).count();
        assert!(oversize <= 1, "too many oversized partitions");
    }

    #[test]
    fn empty_input() {
        let parts = localize(&[], &LocalizeConfig::default());
        assert!(parts.is_empty());
    }

    #[test]
    fn different_seeds_shuffle_partitions() {
        let txs = clustered_transactions();
        let a = localize(
            &txs,
            &LocalizeConfig {
                seed: 1,
                threshold: 8,
                ..LocalizeConfig::default()
            },
        );
        let b = localize(
            &txs,
            &LocalizeConfig {
                seed: 2,
                threshold: 8,
                ..LocalizeConfig::default()
            },
        );
        assert_ne!(a.groups, b.groups, "seeds must reshuffle grouping");
    }
}
