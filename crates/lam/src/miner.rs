//! The LAM driver (Algorithm 2) and per-partition mine/consume
//! (Algorithm 4).
//!
//! Each pass: localize the (current, possibly rewritten) database, then
//! mine every partition — build the trie, generate potential itemsets,
//! sort them by utility, and consume greedily (LocalOptimal). Consumed
//! patterns enter the code table and their occurrences are replaced by
//! pointer items, so later passes (and later patterns within a pass) see
//! the compressed database.

use std::time::Instant;

use crate::db::TransactionDb;
use crate::localize::{localize, LocalizeConfig, Partitions};
use crate::trie::Trie;
use crate::utility::Utility;

/// LAM configuration.
#[derive(Debug, Clone, Copy)]
pub struct LamConfig {
    /// Number of passes (the paper's `NumberOfPasses`; "LAM5" = 5).
    pub passes: u32,
    /// Utility function for ranking potential itemsets.
    pub utility: Utility,
    /// Localization parameters.
    pub localize: LocalizeConfig,
}

impl Default for LamConfig {
    fn default() -> Self {
        Self {
            passes: 5,
            utility: Utility::Area,
            localize: LocalizeConfig::default(),
        }
    }
}

/// Timing and outcome of a LAM run.
#[derive(Debug, Clone)]
pub struct LamResult {
    /// Compression ratio after every pass (Fig. 4.12's per-pass curve).
    pub ratio_per_pass: Vec<f64>,
    /// Final compression ratio.
    pub final_ratio: f64,
    /// Number of patterns in the code table.
    pub patterns: usize,
    /// Seconds in the localization phase (all passes).
    pub localize_seconds: f64,
    /// Seconds in the mine/consume phase (all passes).
    pub mine_seconds: f64,
}

/// The Localized Approximate Miner.
pub struct Lam {
    cfg: LamConfig,
}

impl Lam {
    /// Creates a miner with the given configuration.
    pub fn new(cfg: LamConfig) -> Self {
        Self { cfg }
    }

    /// Convenience: default configuration with `passes` passes.
    pub fn with_passes(passes: u32) -> Self {
        Self::new(LamConfig {
            passes,
            ..LamConfig::default()
        })
    }

    /// Runs LAM over the database in place, returning timing and ratios.
    pub fn run(&self, db: &mut TransactionDb) -> LamResult {
        let mut ratio_per_pass = Vec::with_capacity(self.cfg.passes as usize);
        let mut localize_seconds = 0.0;
        let mut mine_seconds = 0.0;
        for pass in 0..self.cfg.passes {
            let t0 = Instant::now();
            let parts = self.localize_pass(db, pass);
            localize_seconds += t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            for group in &parts.groups {
                mine_partition(db, group, self.cfg.utility, pass);
            }
            mine_seconds += t1.elapsed().as_secs_f64();
            ratio_per_pass.push(db.compression_ratio());
        }
        LamResult {
            final_ratio: db.compression_ratio(),
            patterns: db.patterns().len(),
            ratio_per_pass,
            localize_seconds,
            mine_seconds,
        }
    }

    fn localize_pass(&self, db: &TransactionDb, pass: u32) -> Partitions {
        let cfg = LocalizeConfig {
            // Vary the seed per pass: "multiple iterations afford a
            // probabilistic shuffling" (§4.4.1).
            seed: self
                .cfg
                .localize
                .seed
                .wrapping_add((pass as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.cfg.localize
        };
        localize(db.transactions(), &cfg)
    }
}

/// Mines one partition and consumes its patterns (Algorithm 4).
pub fn mine_partition(db: &mut TransactionDb, group: &[u32], utility: Utility, pass: u32) {
    if group.len() < 2 {
        return;
    }
    let pairs: Vec<(u32, &[u32])> = group
        .iter()
        .map(|&id| (id, db.transaction(id as usize)))
        .collect();
    let mut trie = Trie::build_from_pairs(&pairs);
    let tx_len = |id: u32| db.transaction(id as usize).len();
    let mut potentials = trie.potential_itemsets(tx_len);
    drop(pairs);

    // Sort by utility, descending (Algorithm 4 line 9).
    let mut scored: Vec<(f64, usize)> = potentials
        .iter()
        .enumerate()
        .map(|(idx, p)| {
            let mean_len = p.tx_len_sum as f64 / p.transactions.len().max(1) as f64;
            (
                utility.score_fast(p.items.len(), p.transactions.len(), mean_len),
                idx,
            )
        })
        .collect();
    scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite utilities"));

    for (score, idx) in scored {
        if score <= 0.0 {
            continue;
        }
        let p = &mut potentials[idx];
        let items = std::mem::take(&mut p.items);
        db.consume(&items, &p.transactions, pass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma_data::datasets::transactions::{CategoricalSpec, QuestSpec};

    #[test]
    fn lam_compresses_patterned_data() {
        let txs = QuestSpec::new("q", 600, 300).generate(5);
        let mut db = TransactionDb::new(txs);
        let result = Lam::with_passes(5).run(&mut db);
        assert!(
            result.final_ratio > 1.1,
            "Quest data must compress: ratio {}",
            result.final_ratio
        );
        assert!(result.patterns > 0);
    }

    #[test]
    fn ratios_nondecreasing_across_passes() {
        let (txs, _) = CategoricalSpec::new("c", 500, 15).generate(7);
        let mut db = TransactionDb::new(txs);
        let result = Lam::with_passes(5).run(&mut db);
        assert_eq!(result.ratio_per_pass.len(), 5);
        for w in result.ratio_per_pass.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "consuming patterns never hurts the ratio: {:?}",
                result.ratio_per_pass
            );
        }
    }

    #[test]
    fn compression_is_lossless() {
        let txs = QuestSpec::new("q", 200, 150).generate(9);
        let originals = txs.clone();
        let mut db = TransactionDb::new(txs);
        Lam::with_passes(3).run(&mut db);
        for (i, orig) in originals.iter().enumerate() {
            let mut o = orig.clone();
            o.sort_unstable();
            o.dedup();
            assert_eq!(db.expand(i), o, "transaction {i} corrupted");
        }
    }

    #[test]
    fn random_data_barely_compresses() {
        // Uniform random transactions have no repeated structure.
        use rand::Rng;
        let mut rng = plasma_data::rng::seeded(13);
        let txs: Vec<Vec<u32>> = (0..300)
            .map(|_| {
                let mut t: Vec<u32> = (0..12).map(|_| rng.gen_range(0..5_000u32)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let mut db = TransactionDb::new(txs);
        let result = Lam::with_passes(5).run(&mut db);
        assert!(
            result.final_ratio < 1.15,
            "random data should not compress well: {}",
            result.final_ratio
        );
    }

    #[test]
    fn rc_utility_also_compresses() {
        let (txs, _) = CategoricalSpec::new("c", 400, 12).generate(3);
        let mut db = TransactionDb::new(txs);
        let cfg = LamConfig {
            utility: Utility::RelativeClosedness,
            ..LamConfig::default()
        };
        let result = Lam::new(cfg).run(&mut db);
        assert!(result.final_ratio > 1.1, "RC ratio {}", result.final_ratio);
    }

    #[test]
    fn timing_phases_recorded() {
        let txs = QuestSpec::new("q", 300, 200).generate(1);
        let mut db = TransactionDb::new(txs);
        let result = Lam::with_passes(2).run(&mut db);
        assert!(result.localize_seconds > 0.0);
        assert!(result.mine_seconds > 0.0);
    }
}
